//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the serde API subset the workspace uses, built around a concrete
//! JSON-like [`Value`] data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert `self` into a [`Value`];
//! * [`Deserialize`] / [`de::DeserializeOwned`] — rebuild `Self` from a
//!   [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the companion
//!   `serde_derive` proc-macro crate (named-field structs, newtype/tuple
//!   structs, and unit-variant enums, with `#[serde(default)]` support).
//!
//! The `serde_json` stand-in renders [`Value`]s to JSON text and parses them
//! back, so `serde_json::to_string` / `from_str` round-trips behave like the
//! real pair for the types this workspace defines.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers, like serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::F64(a), Number::F64(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// The serialized data model: a JSON value tree.
///
/// Object fields keep insertion order so rendered output is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a field of an object (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// A (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization-side re-exports, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization (this model is always owned).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::{Deserialize, Error};
}

/// Serialization-side re-exports, mirroring `serde::ser`.
pub mod ser {
    pub use super::{Error, Serialize};
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json serializes non-finite floats as null; accept the
            // round-trip back as NaN.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, as serde_json's
        // `preserve_order`-less map rendering effectively is for tests.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3.5f64).to_value(), Value::Number(Number::F64(3.5)));
    }

    #[test]
    fn array_round_trip() {
        let a: [u64; 3] = [1, 2, 3];
        let v = a.to_value();
        assert_eq!(<[u64; 3]>::from_value(&v).unwrap(), a);
        assert!(<[u64; 2]>::from_value(&v).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let t = (String::from("x"), 7usize);
        let v = t.to_value();
        assert_eq!(<(String, usize)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn number_coercions() {
        assert_eq!(u64::from_value(&Value::Number(Number::U64(9))).unwrap(), 9);
        assert_eq!(
            f64::from_value(&Value::Number(Number::U64(9))).unwrap(),
            9.0
        );
        assert!(u8::from_value(&Value::Number(Number::U64(300))).is_err());
        assert_eq!(
            i64::from_value(&Value::Number(Number::I64(-2))).unwrap(),
            -2
        );
    }

    #[test]
    fn value_get() {
        let v = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(v.get("k"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }
}

//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API subset this
//! workspace uses: [`Criterion::bench_function`], benchmark groups with
//! throughput annotations, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark self-calibrates: a short warm-up estimates per-iteration
//! cost, then iterations are batched to fill a fixed measurement window and
//! the mean time per iteration is printed. Window sizes can be tuned via the
//! `CRITERION_WARMUP_MS` / `CRITERION_MEASURE_MS` environment variables
//! (e.g. set both to `1` for a smoke run).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// Measurement state for one benchmark.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup: env_ms("CRITERION_WARMUP_MS", 60),
            measure: env_ms("CRITERION_MEASURE_MS", 240),
            result_ns: 0.0,
            iters: 0,
        }
    }

    /// Times `f`, batching iterations to fill the measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Pick a batch count that roughly fills the measurement window.
        let target = (self.measure.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.result_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Mean nanoseconds per iteration from the last [`Bencher::iter`] run.
    pub fn mean_ns(&self) -> f64 {
        self.result_ns
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function_name/parameter` style id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id that is just the parameter (most common in this workspace).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a group; reported as elements/sec.
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        println!(
            "bench: {id:<44} {:>12}/iter ({} iters)",
            format_time(b.mean_ns()),
            b.iters
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream-compat no-op.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs a benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        self.report(id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let full = format!("{}/{id}", self.name);
        let rate = match &self.throughput {
            Some(Throughput::Elements(n)) if b.mean_ns() > 0.0 => {
                format!("  {:.1} Melem/s", *n as f64 / b.mean_ns() * 1_000.0)
            }
            Some(Throughput::Bytes(n)) if b.mean_ns() > 0.0 => {
                format!("  {:.1} MB/s", *n as f64 / b.mean_ns() * 1_000.0)
            }
            _ => String::new(),
        };
        println!(
            "bench: {full:<44} {:>12}/iter ({} iters){rate}",
            format_time(b.mean_ns()),
            b.iters
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "2");
        let mut b = Bencher::new();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns() > 0.0);
        assert!(b.iters > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
        assert_eq!(
            BenchmarkId::new("enumerate", "(4,2,2)").id,
            "enumerate/(4,2,2)"
        );
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` stand-in's [`Value`] model to JSON text and parses
//! JSON text back. Mirrors upstream in the one behavior this workspace relies
//! on: non-finite floats serialize as `null`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a concrete type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) => {
            if f.is_finite() {
                // `{:?}` keeps round-trip precision and always includes a
                // decimal point or exponent for non-integral values.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                // Match upstream serde_json: Infinity/NaN have no JSON
                // representation and serialize as null.
                out.push_str("null");
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error {
            msg: format!("trailing characters at byte {pos}"),
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error {
            msg: "unexpected end of input".into(),
        }),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error {
                            msg: format!("expected `,` or `]` at byte {pos}"),
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error {
                        msg: format!("expected `:` at byte {pos}"),
                    });
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => {
                        return Err(Error {
                            msg: format!("expected `,` or `}}` at byte {pos}"),
                        })
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(Error {
            msg: format!("unexpected byte `{}` at {pos}", *c as char),
        }),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error {
            msg: format!("invalid literal at byte {pos}"),
        })
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error {
            msg: format!("expected string at byte {pos}"),
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(Error {
                    msg: "unterminated string".into(),
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error {
                                msg: "truncated \\u escape".into(),
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error {
                            msg: format!("invalid \\u escape `{hex}`"),
                        })?;
                        // Surrogate pairs are not produced by our printer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(Error {
                            msg: format!("invalid escape at byte {pos}"),
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do by char boundaries).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| Error {
                    msg: "invalid UTF-8".into(),
                })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if !is_float {
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U64(u)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::F64(f)))
        .map_err(|_| Error {
            msg: format!("invalid number `{text}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u64], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}

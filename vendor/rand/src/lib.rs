//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the `rand 0.8` API the workspace actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++, the same
//! family `rand 0.8`'s `SmallRng` uses on 64-bit targets), uniform
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! It is *not* a drop-in numerical replacement for upstream `rand` (stream
//! values differ), but every consumer in this workspace only requires a
//! deterministic, well-distributed generator seeded from a `u64`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the `rand_core::RngCore` subset.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly samplable between two endpoints; the blanket
/// [`SampleRange`] impls below are generic over this, which (as in upstream
/// `rand`) lets integer literals in `gen_range(0..n)` infer their type from
/// the call site.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[start, end)` (`inclusive = false`) or `[start, end]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    let v = uniform_u128_below(rng, span);
                    (start as u128).wrapping_add(v) as $t
                } else {
                    assert!(start < end, "gen_range: empty range");
                    let span = (end as u128).wrapping_sub(start as u128);
                    let v = uniform_u128_below(rng, span);
                    (start as u128).wrapping_add(v) as $t
                }
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, bound)` using 64-bit rejection sampling (Lemire-style
/// threshold, widened to u128 so every integer width shares one path).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound64 = bound as u64;
        // Rejection sampling: draw until below the largest multiple of bound.
        let zone = u64::MAX - (u64::MAX % bound64 + 1) % bound64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % bound64) as u128;
            }
        }
    } else {
        // Only reachable for 128-bit-wide spans, which never occur here, but
        // keep it correct: compose two 64-bit draws.
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < bound * (u128::MAX / bound) {
                return v % bound;
            }
        }
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self {
        assert!(start < end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = start + unit * (end - start);
        // Guard against rounding up to an excluded endpoint.
        if !inclusive && v >= end {
            start
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self {
        assert!(start < end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = start + unit * (end - start);
        if !inclusive && v >= end {
            start
        } else {
            v
        }
    }
}

/// The user-facing generator trait: `gen_range`, `gen_bool`, `gen`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++: the small, fast generator family `rand 0.8` uses for
    /// `SmallRng` on 64-bit platforms. State seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: `shuffle` and `choose`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SmallRng::seed_from_u64(13);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

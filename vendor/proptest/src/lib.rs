//! Offline stand-in for `proptest`.
//!
//! Provides generate-only property testing (random cases, deterministic
//! seeds, **no shrinking**) over the API subset this workspace uses:
//! [`Strategy`] with `prop_flat_map`/`prop_map`, range and [`Just`]
//! strategies, [`any`], `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::sample::select`, and the [`proptest!`] test macro with
//! `prop_assert!`/`prop_assert_eq!` and `#![proptest_config(...)]`.
//!
//! Failing cases report the case number and seed in the panic message; there
//! is no persistence/regression-file machinery.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies while generating a case.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds a deterministic per-case RNG.
    pub fn for_case(base_seed: u64, case: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(base_seed ^ case.wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value generator. Unlike upstream proptest there is no value tree or
/// shrinking: `generate` draws a single concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T` (used as `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice among several boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Uniform choice among a tuple of strategies sharing one value type (backs
/// `prop_oneof!`). Keeping the arms as generic tuple fields — rather than
/// boxing them — lets the compiler unify literal types across arms, exactly
/// as upstream's `TupleUnion` does.
pub struct TupleUnion<T>(pub T);

macro_rules! impl_tuple_union {
    ($(($n:expr => $($s:ident/$idx:tt),+))*) => {$(
        impl<Head: Strategy, $($s: Strategy<Value = Head::Value>),+> Strategy
            for TupleUnion<(Head, $($s,)+)>
        {
            type Value = Head::Value;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                match rng.gen_range(0..$n) {
                    0usize => self.0 .0.generate(rng),
                    $($idx => self.0 .$idx.generate(rng),)+
                    _ => unreachable!(),
                }
            }
        }
    )*};
}

impl<Head: Strategy> Strategy for TupleUnion<(Head,)> {
    type Value = Head::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.0 .0.generate(rng)
    }
}

impl_tuple_union! {
    (2 => B/1)
    (3 => B/1, C/2)
    (4 => B/1, C/2, D/3)
    (5 => B/1, C/2, D/3, E/4)
    (6 => B/1, C/2, D/3, E/4, F/5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length. The `From` impls
    /// are over `usize` ranges only, so bare literals in `vec(s, 1..6)` infer
    /// `usize` (mirroring upstream's `Into<SizeRange>` signature).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty length range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection::vec: empty length range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with an element strategy and a length range.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `vec(element_strategy, 1..6)`: vectors with lengths in the range.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.min..=self.len.max_inclusive);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// `select(vec)`: a uniformly random element of `vec` per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs a non-empty vec");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

/// Test-runner configuration (`#![proptest_config(...)]`).
pub mod test_runner {
    /// The subset of upstream `ProptestConfig` we honor.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
        /// Base RNG seed; each case derives its own stream from this.
        pub seed: u64,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                seed: 0x5EED_CAFE_F00D_0001,
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a property holds; failure panics with the stringified condition.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::TupleUnion(($($strategy,)+))
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::Config::default(); $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases as u64 {
                let mut __proptest_rng = $crate::TestRng::for_case(config.seed, case);
                $(let $parm = $crate::Strategy::generate(
                    &$strategy, &mut __proptest_rng);)+
                let run = move || -> () { $body };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{} failed (seed {:#x})",
                        config.cases, config.seed
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn flat_map_uses_inner_value() {
        let s = (1usize..5).prop_flat_map(|n| (n..n + 1));
        let mut rng = crate::TestRng::for_case(2, 0);
        let v = s.generate(&mut rng);
        assert!((1..5).contains(&v));
    }

    #[test]
    fn oneof_picks_only_listed_values() {
        let s = prop_oneof![Just(1u32), Just(7u32)];
        let mut rng = crate::TestRng::for_case(3, 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 7);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = crate::collection::vec(0u64..10, 2usize..5);
        let mut rng = crate::TestRng::for_case(4, 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..5, 5u64..10), flag in any::<bool>()) {
            prop_assert!(a < 5);
            prop_assert!((5..10).contains(&b));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn select_yields_members(x in crate::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&x));
        }
    }
}

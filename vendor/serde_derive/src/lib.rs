//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` stand-in.
//!
//! The build environment has no crates.io access, so this proc-macro parses
//! the derive input with the bare `proc_macro` API (no `syn`/`quote`) and
//! emits impls of the stand-in's `Serialize`/`Deserialize` traits, which are
//! `Value`-based rather than visitor-based.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * named-field structs, honoring `#[serde(default)]` and defaulting missing
//!   `Option<…>` fields;
//! * newtype and tuple structs;
//! * enums with unit variants only (serialized as their name string).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]` present, or the field type is `Option<…>`.
    default_when_missing: bool,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives the stand-in `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\"))")
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the stand-in `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = if f.default_when_missing {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"missing field `{}` in {}\"))",
                            f.name, name
                        )
                    };
                    format!(
                        "{0}: match v.get(\"{0}\") {{\n\
                             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => {1},\n\
                         }}",
                        f.name, missing
                    )
                })
                .collect();
            format!(
                "if v.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(",\n")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match v.as_str() {{\n\
                     ::std::option::Option::Some(s) => match s {{\n\
                         {},\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::std::option::Option::None => ::std::result::Result::Err(\
                         ::serde::Error::custom(\"expected string for enum {name}\")),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match ident_at(&tokens, i) {
        Some(k @ ("struct" | "enum")) => {
            i += 1;
            k.to_string()
        }
        _ => panic!("serde_derive: expected `struct` or `enum`"),
    };
    let name = match ident_at(&tokens, i) {
        Some(n) => {
            i += 1;
            n.to_string()
        }
        None => panic!("serde_derive: expected type name"),
    };
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic types (deriving `{name}`)");
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            _ => panic!("serde_derive: unsupported struct body for `{name}`"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name))
            }
            _ => panic!("serde_derive: expected enum body for `{name}`"),
        }
    };

    Input { name, shape }
}

/// Advances past any number of `#[…]` attributes (doc comments included).
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        } else {
            panic!("serde_derive: malformed attribute");
        }
    }
}

/// Like [`skip_attrs`], but reports whether one was `#[serde(default)]`.
fn skip_attrs_detect_default(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                has_default |= is_serde_default(g.stream());
                *i += 1;
            }
            _ => panic!("serde_derive: malformed attribute"),
        }
    }
    has_default
}

/// Recognizes the token stream of a `serde(default)` attribute body.
fn is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(arg) if arg.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(ident_at(tokens, *i), Some("pub")) {
        *i += 1;
        // `pub(crate)` and friends.
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(TokenTree::Ident(_)) => {
            // `Ident::to_string` allocates; do it once here.
            if let Some(TokenTree::Ident(id)) = tokens.get(i) {
                // Leak-free: return a owned comparison via Box? Simpler:
                // compare through a thread-local is overkill — just allocate.
                let s = id.to_string();
                // SAFETY-free hack avoided: store in a Box::leak would leak.
                // Instead, expose common keywords by interning below.
                return Some(intern(&s));
            }
            None
        }
        _ => None,
    }
}

/// Interns the handful of identifiers we compare against; other identifiers
/// are returned as leaked strings (bounded by the number of distinct idents
/// in derive inputs, compile-time only).
fn intern(s: &str) -> &'static str {
    match s {
        "struct" => "struct",
        "enum" => "enum",
        "pub" => "pub",
        "Option" => "Option",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

/// Parses `name: Type, …` named fields, skipping types (angle-bracket aware).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let has_default_attr = skip_attrs_detect_default(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // The field type: note whether it is `Option<…>` and skip to the
        // comma separating fields (commas inside `<…>` belong to the type).
        let is_option = matches!(ident_at(&tokens, i), Some("Option"));
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        // Consume the trailing comma, if any.
        if i < tokens.len() {
            i += 1;
        }
        fields.push(Field {
            name,
            default_when_missing: has_default_attr || is_option,
        });
    }
    fields
}

/// Counts tuple-struct fields: comma-separated types at angle depth 0.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        // Trailing comma.
        count -= 1;
    }
    count
}

/// Parses unit-only enum variants; panics on data-carrying variants.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                panic!("serde_derive: expected variant name in `{enum_name}`, found {other:?}")
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive stand-in supports unit enum variants only; \
                 `{enum_name}::{name}` carries data"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip an explicit discriminant up to the comma.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
            }
            _ => {}
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(name);
    }
    variants
}

//! # smt-symbiosis — umbrella crate
//!
//! Re-exports the three layers of the reproduction of *Symbiotic
//! Jobscheduling for a Simultaneous Multithreading Processor* (ASPLOS 2000):
//!
//! * [`smtsim`] — the cycle-level SMT processor simulator,
//! * [`workloads`] — synthetic SPEC95/NPB benchmark models,
//! * [`sos`] — the SOS scheduler, predictors, and experiment runners
//!   (the `sos-core` crate).
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `sos-bench` crate for the per-table/figure reproduction harness.

pub use smtsim;
pub use sos_core as sos;
pub use workloads;

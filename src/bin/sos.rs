//! `sos` — command-line driver for the symbiotic jobscheduling reproduction.
//!
//! ```text
//! sos schedules <X> <Y> <Z>          count (and list, if small) the distinct schedules
//! sos run <label> [scale] [pred]     evaluate an experiment, e.g. `sos run "Jsb(6,3,3)"`
//! sos solo [smt]                     print every benchmark model's solo profile
//! sos opensys <smt> [jobs] [scale]   compare SOS vs naive on an open system
//! ```

use smt_symbiosis::sos::enumerate::{count_distinct, enumerate_all};
use smt_symbiosis::sos::opensys::{
    arrival_trace, calibrate_benchmarks, run_open_system_on_trace, OpenSystemConfig, SchedulerKind,
};
use smt_symbiosis::sos::sos::{SosConfig, SosScheduler};
use smt_symbiosis::sos::{ExperimentSpec, PredictorKind};
use smt_symbiosis::workloads::Benchmark;
use smtsim::{MachineConfig, Processor, StreamId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("schedules") => cmd_schedules(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("solo") => cmd_solo(&args[1..]),
        Some("opensys") => cmd_opensys(&args[1..]),
        Some("help") | None => {
            usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            usage();
            2
        }
    };
    std::process::exit(code);
}

fn usage() {
    eprintln!("usage:");
    eprintln!("  sos schedules <X> <Y> <Z>");
    eprintln!("  sos run <label> [cycle_scale] [predictor]");
    eprintln!("  sos solo [smt]");
    eprintln!("  sos opensys <smt> [num_jobs] [cycle_scale]");
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> Result<T, String> {
    args.get(i)
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}: {}", args[i]))
}

fn cmd_schedules(args: &[String]) -> i32 {
    let (x, y, z) = match (
        parse::<usize>(args, 0, "X"),
        parse::<usize>(args, 1, "Y"),
        parse::<usize>(args, 2, "Z"),
    ) {
        (Ok(x), Ok(y), Ok(z)) => (x, y, z),
        (a, b, c) => {
            for e in [a.err(), b.err(), c.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return 2;
        }
    };
    if !(z >= 1 && z <= y && y <= x && (z == y || z == 1)) {
        eprintln!("need 1 <= Z <= Y <= X with Z == Y (swap-all) or Z == 1 (swap-one)");
        return 2;
    }
    let n = count_distinct(x, y, z);
    println!("{n} distinct schedules for {x} jobs, {y} contexts, swap {z}");
    if n <= 36 {
        for s in enumerate_all(x, y, z) {
            println!("  {}", s.paper_notation());
        }
    }
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(label) = args.first() else {
        eprintln!("missing experiment label, e.g. \"Jsb(6,3,3)\"");
        return 2;
    };
    let spec: ExperimentSpec = match label.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let scale: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    let predictor = args
        .get(2)
        .map(|p| PredictorKind::parse(p).unwrap_or(PredictorKind::Score))
        .unwrap_or(PredictorKind::Score);
    let cfg = SosConfig {
        cycle_scale: scale,
        predictor,
        ..SosConfig::default()
    };

    eprintln!("running {spec} at 1/{scale} paper scale ...");
    let report = SosScheduler::evaluate_experiment(&spec, &cfg);
    println!(
        "{spec}: {} candidate schedules sampled",
        report.candidates.len()
    );
    for (n, ws) in report.candidates.iter().zip(&report.symbios_ws) {
        println!("  {n:<28} WS {ws:.3}");
    }
    println!(
        "best {:.3}  avg {:.3}  worst {:.3}",
        report.best_ws(),
        report.average_ws(),
        report.worst_ws()
    );
    let ws = report.ws_with(predictor);
    println!(
        "{} picks WS {ws:.3} ({:+.1}% vs avg)",
        predictor.name(),
        100.0 * (ws / report.average_ws() - 1.0)
    );
    0
}

fn cmd_solo(args: &[String]) -> i32 {
    let smt: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(1);
    println!("{:<8} {:>6} {:>8} {:>9}", "bench", "IPC", "dl1%", "br-mis%");
    for b in Benchmark::ALL {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(smt));
        let mut s = b.stream(StreamId(0), 42);
        let _ = cpu.run_timeslice(&mut [&mut *s], 100_000);
        let st = cpu.run_timeslice(&mut [&mut *s], 200_000);
        println!(
            "{:<8} {:>6.3} {:>8.2} {:>9.2}",
            b.name(),
            st.total_ipc(),
            st.cache.dl1_hit_pct(),
            st.branches.mispredict_pct()
        );
    }
    0
}

fn cmd_opensys(args: &[String]) -> i32 {
    let smt: usize = match parse(args, 0, "smt level") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let num_jobs: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let scale: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let mut cfg = OpenSystemConfig::scaled(smt);
    cfg.mean_job_cycles = 2_000_000_000 / scale.max(1);
    cfg.mean_interarrival =
        (cfg.mean_job_cycles as f64 / (0.90 * OpenSystemConfig::estimated_ws(smt))) as u64;
    cfg.timeslice = 5_000_000 / scale.max(1);
    cfg.num_jobs = num_jobs;

    eprintln!("open system: SMT {smt}, {num_jobs} jobs, 1/{scale} scale ...");
    let solo = calibrate_benchmarks(smt, 10 * cfg.timeslice, cfg.seed);
    let trace = arrival_trace(&cfg, &solo);
    let naive = run_open_system_on_trace(SchedulerKind::Naive, &cfg, &trace);
    let sos = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);
    println!(
        "naive: mean response {:>12.0} cycles (N≈{:.1})",
        naive.mean_response(),
        naive.mean_population
    );
    println!(
        "SOS:   mean response {:>12.0} cycles (N≈{:.1}, {} resamples)",
        sos.mean_response(),
        sos.mean_population,
        sos.resamples
    );
    println!(
        "improvement: {:.1}%",
        100.0 * (naive.mean_response() - sos.mean_response()) / naive.mean_response()
    );
    0
}

//! Hierarchical symbiosis (§7): when jobs are multithreaded and the compiler
//! can adapt to the number of contexts, the scheduler gains a second degree
//! of freedom — how many hardware contexts to give each parallel job.
//!
//! This example reproduces the paper's inline study: EP and ARRAY sharing a
//! 3-context machine (who deserves the extra context?), and then the full
//! Figure 4 flow at SMT level 2.
//!
//! Run with: `cargo run --release --example hierarchical`

use smt_symbiosis::sos::hier::{allocations, evaluate_hierarchical_mix};
use smt_symbiosis::sos::sos::SosConfig;
use smt_symbiosis::workloads::jobmix::SyncStyle;
use smt_symbiosis::workloads::{Benchmark, JobSpec};

fn main() {
    let cfg = SosConfig {
        cycle_scale: 2_000,
        ..SosConfig::default()
    };

    // The paper's §7 example: multithreaded ARRAY and EP on an SMT level 3
    // machine. The scheduler may give 2 contexts to ARRAY and 1 to EP, or
    // vice versa.
    let mix = vec![
        JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight),
        JobSpec::parallel(Benchmark::Ep, 2, SyncStyle::None),
    ];
    println!("context allocations considered for ARRAY + EP:");
    for alloc in allocations(&mix) {
        println!("  ARRAY gets {}, EP gets {}", alloc[0], alloc[1]);
    }

    let report = evaluate_hierarchical_mix(&mix, 3, 3, &cfg);
    println!("\n(allocation, schedule) outcomes on a 3-context machine:");
    for o in &report.outcomes {
        println!(
            "  ARRAY:{} EP:{}  schedule {:<12} WS {:.3}",
            o.threads_per_job[0], o.threads_per_job[1], o.notation, o.ws
        );
    }
    let pick = &report.outcomes[report.score_pick];
    println!(
        "\npredicted pick: ARRAY:{} EP:{} (WS {:.3}); best {:.3}, average {:.3}, worst {:.3}",
        pick.threads_per_job[0],
        pick.threads_per_job[1],
        pick.ws,
        report.best_ws(),
        report.average_ws(),
        report.worst_ws()
    );

    // The full Figure 4 flow at SMT level 2 (CG, mt_ARRAY, EP).
    let fig4 = smt_symbiosis::sos::hier::evaluate_hierarchical(2, 3, &cfg);
    println!(
        "\nFigure 4 @ SMT 2: picked WS {:.3} — {:+.1}% over average, {:+.1}% over worst",
        fig4.picked_ws(),
        fig4.improvement_over_average(),
        fig4.improvement_over_worst()
    );
}

//! Open system: jobs arrive with exponential interarrival times and leave
//! when done; compare SOS against the naive arrival-order scheduler on the
//! same arrival trace (§9 of the paper).
//!
//! Run with: `cargo run --release --example open_system`

use smt_symbiosis::sos::opensys::{
    arrival_trace, calibrate_benchmarks, run_open_system_on_trace, OpenSystemConfig, SchedulerKind,
};

fn main() {
    let mut cfg = OpenSystemConfig::scaled(3); // SMT level 3
    cfg.num_jobs = 40;

    println!(
        "SMT {}, mean job length {} cycles, mean interarrival {} cycles, {} jobs",
        cfg.smt, cfg.mean_job_cycles, cfg.mean_interarrival, cfg.num_jobs
    );

    let solo = calibrate_benchmarks(cfg.smt, 30_000, cfg.seed);
    let trace = arrival_trace(&cfg, &solo);
    println!("first arrivals:");
    for a in trace.iter().take(5) {
        println!(
            "  t={:>9}  {:<7} {:>9} instructions",
            a.arrival,
            a.benchmark.name(),
            a.instructions
        );
    }

    let naive = run_open_system_on_trace(SchedulerKind::Naive, &cfg, &trace);
    let sos = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);

    println!("\nmean response time:");
    println!("  naive {:>12.0} cycles", naive.mean_response());
    println!("  SOS   {:>12.0} cycles", sos.mean_response());
    println!(
        "  improvement: {:.1}%",
        100.0 * (naive.mean_response() - sos.mean_response()) / naive.mean_response()
    );
}

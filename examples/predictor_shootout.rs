//! Predictor shootout: run the paper's Jsb(6,3,3) protocol and rank the ten
//! dynamic predictors by the weighted speedup of the schedule they pick.
//!
//! Run with: `cargo run --release --example predictor_shootout`

use smt_symbiosis::sos::sos::{SosConfig, SosScheduler};
use smt_symbiosis::sos::ExperimentSpec;

fn main() {
    let spec: ExperimentSpec = "Jsb(6,3,3)".parse().expect("valid label");
    let cfg = SosConfig {
        cycle_scale: 2_000,
        ..SosConfig::default()
    };

    println!("evaluating {spec} (all 10 schedules, sample then symbios) ...");
    let report = SosScheduler::evaluate_experiment(&spec, &cfg);

    println!("\nschedules by symbios weighted speedup:");
    let mut by_ws: Vec<(usize, f64)> = report.symbios_ws.iter().copied().enumerate().collect();
    by_ws.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (i, ws) in &by_ws {
        println!("  {:<9} WS {:.3}", report.candidates[*i], ws);
    }

    println!("\npredictors ranked by the WS of their pick:");
    let mut picks = report.picks.clone();
    picks.sort_by(|a, b| report.symbios_ws[b.1].total_cmp(&report.symbios_ws[a.1]));
    for (p, idx) in picks {
        println!(
            "  {:<10} picked {:<9} WS {:.3}",
            p.name(),
            report.candidates[idx],
            report.symbios_ws[idx]
        );
    }
    println!(
        "\nbest {:.3}, average {:.3}, worst {:.3}",
        report.best_ws(),
        report.average_ws(),
        report.worst_ws()
    );
}

//! Quickstart: simulate two jobs coscheduled on an SMT processor and measure
//! their weighted speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use smt_symbiosis::sos::job::JobPool;
use smt_symbiosis::sos::runner::Runner;
use smt_symbiosis::sos::schedule::Schedule;
use smt_symbiosis::workloads::{Benchmark, JobSpec};
use smtsim::MachineConfig;

fn main() {
    // Four jobs from the paper's Table 1: two FP codes, two integer codes.
    let pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Fp),
            JobSpec::single(Benchmark::Mg),
            JobSpec::single(Benchmark::Gcc),
            JobSpec::single(Benchmark::Is),
        ],
        42,
    );

    // A 2-context (SMT level 2) Alpha-21264-like machine, 5k-cycle timeslice.
    let mut runner = Runner::new(MachineConfig::alpha21264_like(2), pool, 5_000);

    // Measure each job's solo IPC — the denominator of weighted speedup.
    let solo = runner.calibrate_solo(50_000, 50_000);
    println!("solo IPCs:");
    for i in 0..solo.len() {
        println!("  {:<4} {:.3}", runner.pool().label(i), solo.rate(i));
    }

    // Jsb(4,2,2) has exactly three possible schedules. Try them all.
    println!("\nweighted speedup of every schedule (40 rotations each):");
    for order in [vec![0, 1, 2, 3], vec![0, 2, 1, 3], vec![0, 3, 1, 2]] {
        let schedule = Schedule::new(order, 2, 2);
        let rotations = runner.run_schedule(&schedule, 40);
        let cycles: u64 = rotations.iter().map(|r| r.cycles()).sum();
        let mut committed = vec![0u64; 4];
        for rot in &rotations {
            for (t, c) in rot.committed_per_thread(4).iter().enumerate() {
                committed[t] += c;
            }
        }
        let ws = smt_symbiosis::sos::ws::weighted_speedup(&committed, cycles, &solo);
        println!("  {:<8} WS(t) = {ws:.3}", schedule.paper_notation());
    }
    println!("\nWS > 1 means the coschedule beats time-sharing the jobs one at a time.");
}

//! Phased workloads and drift-triggered resampling.
//!
//! §9 of the paper notes that SPEC/NPB profiles are so stable that periodic
//! resampling rarely pays off, but "other workloads will experience more
//! phased behavior". This example first shows a strongly phased job's IPC
//! swinging between personalities, then runs a small open system where half
//! the jobs are phased and compares SOS with and without the execution-drift
//! resampling trigger.
//!
//! Run with: `cargo run --release --example phased_workloads`

use smt_symbiosis::sos::opensys::{
    arrival_trace, calibrate_benchmarks, run_open_system_on_trace, OpenSystemConfig, SchedulerKind,
};
use smt_symbiosis::workloads::phased::fp_int_alternator;
use smtsim::{MachineConfig, Processor, StreamId};

fn main() {
    // Part 1: watch one phased job oscillate.
    let mut cpu = Processor::new(MachineConfig::alpha21264_like(1));
    let mut job = fp_int_alternator(40_000, StreamId(0), 7);
    println!("per-timeslice IPC and FP share of a phased job (phase length 40k instrs):");
    for slice in 0..8 {
        let stats = cpu.run_timeslice(&mut [&mut job], 20_000);
        let (fp_pct, _) = stats.fp_int_mix_pct();
        println!(
            "  slice {slice}: IPC {:.2}  fp {:>5.1}%  (phase {})",
            stats.total_ipc(),
            fp_pct,
            job.active_phase()
        );
    }

    // Part 2: does drift-triggered resampling help when jobs shift phases?
    let mut cfg = OpenSystemConfig::scaled(3);
    cfg.mean_job_cycles = 400_000;
    cfg.mean_interarrival = 140_000;
    cfg.timeslice = 2_500;
    cfg.num_jobs = 30;
    cfg.phased_fraction = 0.5;

    let solo = calibrate_benchmarks(cfg.smt, 20_000, cfg.seed);
    let trace = arrival_trace(&cfg, &solo);

    cfg.drift_threshold = None;
    let timer_only = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);
    cfg.drift_threshold = Some(0.30);
    let with_drift = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);

    println!("\nopen system, 50% phased jobs, SMT 3:");
    println!(
        "  timer-only resampling: mean response {:>10.0} cycles ({} resamples)",
        timer_only.mean_response(),
        timer_only.resamples
    );
    println!(
        "  with drift trigger:    mean response {:>10.0} cycles ({} resamples)",
        with_drift.mean_response(),
        with_drift.resamples
    );
}

//! The public processor façade.

use crate::config::MachineConfig;
use crate::observe::Observer;
use crate::pipeline::Engine;
use crate::stats::TimesliceStats;
use crate::trace::InstructionSource;

/// An SMT processor: hardware contexts plus the shared microarchitecture.
///
/// The processor persists its caches, TLBs, and branch-predictor tables
/// across timeslices, so the memory system stays warm for jobs that remain
/// resident — the effect warmstart scheduling (§8 of the paper) exploits.
/// The pipeline itself (queues, renaming registers, in-flight windows) is
/// drained at every timeslice boundary, modeling the context-switch flush.
///
/// # Example
///
/// ```
/// use smtsim::{MachineConfig, Processor};
/// use smtsim::trace::{Fetch, Instr, InstructionSource, StreamId};
///
/// struct Ones { pc: u64 }
/// impl InstructionSource for Ones {
///     fn next_instr(&mut self) -> Fetch {
///         self.pc += 4;
///         Fetch::Instr(Instr::int_alu(self.pc, 1))
///     }
///     fn id(&self) -> StreamId { StreamId(0) }
/// }
///
/// let mut cpu = Processor::new(MachineConfig::alpha21264_like(2));
/// let mut job = Ones { pc: 0 };
/// let stats = cpu.run_timeslice(&mut [&mut job], 1_000);
/// assert!(stats.total_ipc() > 0.0);
/// ```
pub struct Processor {
    engine: Engine,
}

impl Processor {
    /// Builds a processor for the given machine configuration.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent
    /// (see [`MachineConfig::validate`]).
    pub fn new(cfg: MachineConfig) -> Self {
        Processor {
            engine: Engine::new(cfg),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.engine.config()
    }

    /// Number of hardware contexts (the SMT level).
    pub fn contexts(&self) -> usize {
        self.engine.config().contexts
    }

    /// Runs one timeslice: `threads[i]` executes on hardware context `i` for
    /// `cycles` cycles, and the hardware counters for the slice are returned.
    ///
    /// # Panics
    /// Panics if `threads` is empty or longer than the number of contexts.
    pub fn run_timeslice(
        &mut self,
        threads: &mut [&mut dyn InstructionSource],
        cycles: u64,
    ) -> TimesliceStats {
        self.engine.run_timeslice(threads, cycles)
    }

    /// Invalidates caches and TLBs, forcing cold starts (for the cache
    /// cold-start experiments of §8).
    pub fn flush_memory_state(&mut self) {
        self.engine.flush_memory_state()
    }

    /// Registers a telemetry [`Observer`] receiving timeslice, conflict, and
    /// occupancy events (see [`crate::observe`]). Replaces any previous
    /// observer. With no observer registered the probes cost one branch per
    /// simulated cycle.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.engine.set_observer(observer)
    }

    /// Removes and drops the current observer, if any.
    pub fn clear_observer(&mut self) {
        self.engine.clear_observer()
    }

    /// Whether an observer is currently registered.
    pub fn has_observer(&self) -> bool {
        self.engine.has_observer()
    }

    /// Sets the cycle interval between stage-occupancy samples delivered to
    /// the observer (default
    /// [`crate::pipeline::DEFAULT_OCCUPANCY_INTERVAL`]).
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn set_occupancy_interval(&mut self, interval: u64) {
        self.engine.set_occupancy_interval(interval)
    }
}

impl std::fmt::Debug for Processor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("contexts", &self.engine.config().contexts)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Fetch, Instr, StreamId};

    struct Alu {
        pc: u64,
    }
    impl InstructionSource for Alu {
        fn next_instr(&mut self) -> Fetch {
            self.pc = (self.pc + 4) % 4096;
            Fetch::Instr(Instr::int_alu(self.pc, 0))
        }
        fn id(&self) -> StreamId {
            StreamId(0)
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let p = Processor::new(MachineConfig::alpha21264_like(3));
        assert!(format!("{p:?}").contains("contexts"));
        assert_eq!(p.contexts(), 3);
    }

    #[test]
    fn observer_sees_consistent_event_stream() {
        use crate::counters::Resource;
        use crate::observe::{Observer, StageOccupancy};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Record {
            starts: usize,
            ends: usize,
            conflict_events: u64,
            occupancy_samples: u64,
            max_inflight: usize,
        }

        struct Probe(Rc<RefCell<Record>>);
        impl Observer for Probe {
            fn timeslice_start(&mut self, threads: usize, cycles: u64) {
                assert_eq!(threads, 1);
                assert_eq!(cycles, 2_000);
                self.0.borrow_mut().starts += 1;
            }
            fn timeslice_end(&mut self, stats: &TimesliceStats) {
                assert_eq!(stats.cycles, 2_000);
                self.0.borrow_mut().ends += 1;
            }
            fn conflict_cycle(&mut self, cycle: u64, _resource: Resource) {
                assert!(cycle < 2_000);
                self.0.borrow_mut().conflict_events += 1;
            }
            fn stage_occupancy(&mut self, occ: &StageOccupancy) {
                let mut r = self.0.borrow_mut();
                r.occupancy_samples += 1;
                r.max_inflight = r.max_inflight.max(occ.inflight);
            }
        }

        let record = Rc::new(RefCell::new(Record::default()));
        let mut p = Processor::new(MachineConfig::alpha21264_like(2));
        p.set_observer(Box::new(Probe(Rc::clone(&record))));
        p.set_occupancy_interval(100);
        assert!(p.has_observer());

        let mut job = Alu { pc: 0 };
        let stats = p.run_timeslice(&mut [&mut job], 2_000);

        let r = record.borrow();
        assert_eq!(r.starts, 1);
        assert_eq!(r.ends, 1);
        // One conflict event per (cycle, resource) flag: totals must agree
        // with the hardware conflict counters.
        let counter_sum: u64 = Resource::ALL.iter().map(|&x| stats.conflicts.get(x)).sum();
        assert_eq!(r.conflict_events, counter_sum);
        // Samples at cycles 0, 100, ..., 1900.
        assert_eq!(r.occupancy_samples, 20);
        assert!(r.max_inflight > 0, "pipeline never held an instruction");
        drop(r);

        p.clear_observer();
        assert!(!p.has_observer());
        // With the observer gone the run still works and stats still flow.
        let mut job = Alu { pc: 0 };
        let stats = p.run_timeslice(&mut [&mut job], 2_000);
        assert!(stats.total_committed() > 0);
        assert_eq!(record.borrow().starts, 1, "cleared observer got events");
    }

    #[test]
    fn flush_forces_icache_cold_start() {
        let mut p = Processor::new(MachineConfig::alpha21264_like(1));
        let mut job = Alu { pc: 0 };
        let _ = p.run_timeslice(&mut [&mut job], 1_000);
        // Re-run the same small PC region: warm.
        let mut job2 = Alu { pc: 0 };
        let warm = p.run_timeslice(&mut [&mut job2], 1_000);
        p.flush_memory_state();
        let mut job3 = Alu { pc: 0 };
        let cold = p.run_timeslice(&mut [&mut job3], 1_000);
        assert!(cold.cache.il1_misses >= warm.cache.il1_misses);
    }
}

//! The public processor façade.

use crate::config::MachineConfig;
use crate::pipeline::Engine;
use crate::stats::TimesliceStats;
use crate::trace::InstructionSource;

/// An SMT processor: hardware contexts plus the shared microarchitecture.
///
/// The processor persists its caches, TLBs, and branch-predictor tables
/// across timeslices, so the memory system stays warm for jobs that remain
/// resident — the effect warmstart scheduling (§8 of the paper) exploits.
/// The pipeline itself (queues, renaming registers, in-flight windows) is
/// drained at every timeslice boundary, modeling the context-switch flush.
///
/// # Example
///
/// ```
/// use smtsim::{MachineConfig, Processor};
/// use smtsim::trace::{Fetch, Instr, InstructionSource, StreamId};
///
/// struct Ones { pc: u64 }
/// impl InstructionSource for Ones {
///     fn next_instr(&mut self) -> Fetch {
///         self.pc += 4;
///         Fetch::Instr(Instr::int_alu(self.pc, 1))
///     }
///     fn id(&self) -> StreamId { StreamId(0) }
/// }
///
/// let mut cpu = Processor::new(MachineConfig::alpha21264_like(2));
/// let mut job = Ones { pc: 0 };
/// let stats = cpu.run_timeslice(&mut [&mut job], 1_000);
/// assert!(stats.total_ipc() > 0.0);
/// ```
pub struct Processor {
    engine: Engine,
}

impl Processor {
    /// Builds a processor for the given machine configuration.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent
    /// (see [`MachineConfig::validate`]).
    pub fn new(cfg: MachineConfig) -> Self {
        Processor {
            engine: Engine::new(cfg),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        self.engine.config()
    }

    /// Number of hardware contexts (the SMT level).
    pub fn contexts(&self) -> usize {
        self.engine.config().contexts
    }

    /// Runs one timeslice: `threads[i]` executes on hardware context `i` for
    /// `cycles` cycles, and the hardware counters for the slice are returned.
    ///
    /// # Panics
    /// Panics if `threads` is empty or longer than the number of contexts.
    pub fn run_timeslice(
        &mut self,
        threads: &mut [&mut dyn InstructionSource],
        cycles: u64,
    ) -> TimesliceStats {
        self.engine.run_timeslice(threads, cycles)
    }

    /// Invalidates caches and TLBs, forcing cold starts (for the cache
    /// cold-start experiments of §8).
    pub fn flush_memory_state(&mut self) {
        self.engine.flush_memory_state()
    }
}

impl std::fmt::Debug for Processor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("contexts", &self.engine.config().contexts)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Fetch, Instr, StreamId};

    struct Alu {
        pc: u64,
    }
    impl InstructionSource for Alu {
        fn next_instr(&mut self) -> Fetch {
            self.pc = (self.pc + 4) % 4096;
            Fetch::Instr(Instr::int_alu(self.pc, 0))
        }
        fn id(&self) -> StreamId {
            StreamId(0)
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let p = Processor::new(MachineConfig::alpha21264_like(3));
        assert!(format!("{p:?}").contains("contexts"));
        assert_eq!(p.contexts(), 3);
    }

    #[test]
    fn flush_forces_icache_cold_start() {
        let mut p = Processor::new(MachineConfig::alpha21264_like(1));
        let mut job = Alu { pc: 0 };
        let _ = p.run_timeslice(&mut [&mut job], 1_000);
        // Re-run the same small PC region: warm.
        let mut job2 = Alu { pc: 0 };
        let warm = p.run_timeslice(&mut [&mut job2], 1_000);
        p.flush_memory_state();
        let mut job3 = Alu { pc: 0 };
        let cold = p.run_timeslice(&mut [&mut job3], 1_000);
        assert!(cold.cache.il1_misses >= warm.cache.il1_misses);
    }
}

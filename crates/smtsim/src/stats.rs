//! Execution statistics reported per timeslice.

use crate::branch::BranchStats;
use crate::cache::CacheStats;
use crate::counters::ConflictCounters;
use crate::tlb::TlbStats;
use crate::trace::{InstrClass, StreamId};
use serde::{Deserialize, Serialize};

/// Hit rate in percent from reference and miss counts; 100.0 when there were
/// no references (a stream that never touched the cache never missed).
///
/// The one source of truth for hit-rate arithmetic — [`ThreadStats`] and
/// [`CacheStats`](crate::cache::CacheStats) both delegate here.
pub fn hit_pct(refs: u64, misses: u64) -> f64 {
    debug_assert!(misses <= refs, "misses ({misses}) exceed refs ({refs})");
    if refs == 0 {
        100.0
    } else {
        100.0 * (refs - misses) as f64 / refs as f64
    }
}

/// Per-thread execution counts for one timeslice.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// The stream (job thread) that ran on this context.
    pub stream: StreamId,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions completed (committed).
    pub committed: u64,
    /// Committed instructions per class, indexed by [`InstrClass::ALL`] order.
    pub class_counts: [u64; 8],
    /// Cycles this thread spent reported blocked by its source (e.g. at a
    /// barrier whose siblings are not scheduled).
    pub blocked_cycles: u64,
    /// L1 data-cache references issued by this thread.
    pub dl1_refs: u64,
    /// L1 data-cache misses suffered by this thread.
    pub dl1_misses: u64,
    /// Instruction-cache line fetches for this thread.
    pub il1_refs: u64,
    /// Instruction-cache misses for this thread.
    pub il1_misses: u64,
}

impl ThreadStats {
    /// Committed IPC over an interval of `cycles`.
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.committed as f64 / cycles as f64
        }
    }

    /// Committed instructions of one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        let idx = InstrClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.class_counts[idx]
    }

    /// Committed floating-point arithmetic instructions.
    pub fn fp_ops(&self) -> u64 {
        self.class_count(InstrClass::FpAdd)
            + self.class_count(InstrClass::FpMul)
            + self.class_count(InstrClass::FpDiv)
    }

    /// Committed integer arithmetic instructions.
    pub fn int_ops(&self) -> u64 {
        self.class_count(InstrClass::IntAlu) + self.class_count(InstrClass::IntMul)
    }

    /// This thread's own L1 data-cache hit rate in percent (100 when the
    /// thread made no references).
    pub fn dl1_hit_pct(&self) -> f64 {
        hit_pct(self.dl1_refs, self.dl1_misses)
    }
}

/// Everything the hardware counters report about one timeslice.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimesliceStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Per-context thread statistics, in the order threads were attached.
    pub threads: Vec<ThreadStats>,
    /// Cycles-with-conflict per shared resource.
    pub conflicts: ConflictCounters,
    /// Cache reference/miss counts.
    pub cache: CacheStats,
    /// Data TLB counts.
    pub dtlb: TlbStats,
    /// Instruction TLB counts.
    pub itlb: TlbStats,
    /// Branch predictor counts.
    pub branches: BranchStats,
}

impl TimesliceStats {
    /// Total committed instructions across all threads.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Aggregate committed IPC.
    pub fn total_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.cycles as f64
        }
    }

    /// Statistics for the thread running stream `id`, if it ran here.
    pub fn thread(&self, id: StreamId) -> Option<&ThreadStats> {
        self.threads.iter().find(|t| t.stream == id)
    }

    /// Committed FP and integer *arithmetic* instructions in percent of all
    /// committed instructions (the Diversity predictor's inputs). Returns
    /// `(fp_pct, int_pct)`.
    ///
    /// The denominator is every committed instruction, but loads, stores, and
    /// branches belong to neither numerator — so `fp_pct + int_pct` is the
    /// arithmetic fraction of the mix and is strictly below 100 whenever any
    /// memory or control instruction committed. Callers must not assume the
    /// two percentages are complementary. Both are 0 when nothing committed.
    pub fn fp_int_mix_pct(&self) -> (f64, f64) {
        let total = self.total_committed();
        if total == 0 {
            return (0.0, 0.0);
        }
        let fp: u64 = self.threads.iter().map(ThreadStats::fp_ops).sum();
        let int: u64 = self.threads.iter().map(ThreadStats::int_ops).sum();
        (
            100.0 * fp as f64 / total as f64,
            100.0 * int as f64 / total as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(committed: u64, fp: u64, int: u64) -> ThreadStats {
        let mut t = ThreadStats {
            stream: StreamId(0),
            committed,
            ..Default::default()
        };
        t.class_counts[2] = fp; // FpAdd
        t.class_counts[0] = int; // IntAlu
        t
    }

    #[test]
    fn ipc_math() {
        let t = thread(500, 0, 0);
        assert!((t.ipc(1000) - 0.5).abs() < 1e-12);
        assert_eq!(t.ipc(0), 0.0);
    }

    #[test]
    fn mix_pct() {
        let s = TimesliceStats {
            cycles: 100,
            threads: vec![thread(100, 30, 50), thread(100, 10, 20)],
            ..Default::default()
        };
        let (fp, int) = s.fp_int_mix_pct();
        assert!((fp - 20.0).abs() < 1e-9);
        assert!((int - 35.0).abs() < 1e-9);
    }

    #[test]
    fn mix_pct_excludes_memory_and_control_ops() {
        // 100 committed: 30 FpAdd, 50 IntAlu, and 20 loads/branches. The
        // misc ops dilute both percentages; they do not sum to 100.
        let mut t = thread(100, 30, 50);
        t.class_counts[5] = 12; // Load
        t.class_counts[7] = 8; // Branch
        let s = TimesliceStats {
            cycles: 100,
            threads: vec![t],
            ..Default::default()
        };
        let (fp, int) = s.fp_int_mix_pct();
        assert!((fp - 30.0).abs() < 1e-9);
        assert!((int - 50.0).abs() < 1e-9);
        assert!(fp + int < 100.0);
    }

    #[test]
    fn mix_pct_zero_when_nothing_committed() {
        let s = TimesliceStats {
            cycles: 100,
            threads: vec![thread(0, 0, 0)],
            ..Default::default()
        };
        assert_eq!(s.fp_int_mix_pct(), (0.0, 0.0));
    }

    #[test]
    fn hit_pct_shared_helper() {
        assert_eq!(hit_pct(0, 0), 100.0);
        assert!((hit_pct(200, 50) - 75.0).abs() < 1e-9);
        // The two public call sites must agree with the helper (they used to
        // be independent copies that could drift apart).
        let t = ThreadStats {
            dl1_refs: 8,
            dl1_misses: 2,
            ..Default::default()
        };
        let c = crate::cache::CacheStats {
            dl1_refs: 8,
            dl1_misses: 2,
            ..Default::default()
        };
        assert_eq!(t.dl1_hit_pct(), hit_pct(8, 2));
        assert_eq!(c.dl1_hit_pct(), hit_pct(8, 2));
    }

    #[test]
    fn total_ipc() {
        let s = TimesliceStats {
            cycles: 100,
            threads: vec![thread(120, 0, 0), thread(80, 0, 0)],
            ..Default::default()
        };
        assert!((s.total_ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn thread_lookup() {
        let mut a = thread(1, 0, 0);
        a.stream = StreamId(9);
        let s = TimesliceStats {
            cycles: 1,
            threads: vec![a],
            ..Default::default()
        };
        assert!(s.thread(StreamId(9)).is_some());
        assert!(s.thread(StreamId(1)).is_none());
    }

    #[test]
    fn per_thread_dl1_hit_pct() {
        let t = ThreadStats {
            dl1_refs: 200,
            dl1_misses: 50,
            ..Default::default()
        };
        assert!((t.dl1_hit_pct() - 75.0).abs() < 1e-9);
        assert_eq!(ThreadStats::default().dl1_hit_pct(), 100.0);
    }

    #[test]
    fn fp_and_int_op_classification() {
        let mut t = ThreadStats::default();
        for (i, _) in InstrClass::ALL.iter().enumerate() {
            t.class_counts[i] = 1;
        }
        assert_eq!(t.fp_ops(), 3);
        assert_eq!(t.int_ops(), 2);
    }
}

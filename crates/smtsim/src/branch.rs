//! Shared gshare branch predictor with per-thread global history.
//!
//! The pattern history table (2-bit saturating counters) is shared among all
//! hardware contexts, as branch prediction tables are on real SMT designs;
//! coscheduled threads therefore alias into — and perturb — each other's
//! entries. Per-thread history registers keep each thread's own correlation
//! intact.

use crate::config::BranchConfig;
use serde::{Deserialize, Serialize};

/// Prediction/misprediction counts for one timeslice.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub predicted: u64,
    /// Mispredictions.
    pub mispredicted: u64,
}

impl BranchStats {
    /// Misprediction rate in percent; 0 when no branches were seen.
    pub fn mispredict_pct(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            100.0 * self.mispredicted as f64 / self.predicted as f64
        }
    }
}

/// A gshare predictor: shared 2-bit counter table indexed by
/// `pc ^ per_thread_history`.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    table: Vec<u8>,
    index_mask: u64,
    history_mask: u64,
    history: Vec<u64>,
    penalty: u64,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Builds a predictor for `contexts` hardware threads.
    ///
    /// # Panics
    /// Panics if `cfg.table_bits` is 0 or greater than 24.
    pub fn new(cfg: BranchConfig, contexts: usize) -> Self {
        assert!(
            cfg.table_bits > 0 && cfg.table_bits <= 24,
            "table_bits out of range"
        );
        let size = 1usize << cfg.table_bits;
        BranchPredictor {
            // Initialize to weakly taken.
            table: vec![2; size],
            index_mask: (size as u64) - 1,
            history_mask: (1u64 << cfg.history_bits.min(63)) - 1,
            history: vec![0; contexts],
            penalty: cfg.mispredict_penalty,
            stats: BranchStats::default(),
        }
    }

    /// Cycles of fetch stall charged on a misprediction (beyond waiting for
    /// the branch to resolve).
    #[inline]
    pub fn mispredict_penalty(&self) -> u64 {
        self.penalty
    }

    #[inline]
    fn index(&self, ctx: usize, pc: u64) -> usize {
        (((pc >> 2) ^ self.history[ctx]) & self.index_mask) as usize
    }

    /// Predicts and immediately trains on the architectural outcome `taken`.
    /// Returns `true` if the branch was mispredicted.
    ///
    /// (The simulator does not fetch wrong paths, so prediction and update can
    /// be folded into one call; the misprediction cost is applied by the
    /// pipeline when the branch resolves.)
    pub fn predict_and_update(&mut self, ctx: usize, pc: u64, taken: bool) -> bool {
        let idx = self.index(ctx, pc);
        let counter = self.table[idx];
        let prediction = counter >= 2;
        self.stats.predicted += 1;
        let mispredicted = prediction != taken;
        if mispredicted {
            self.stats.mispredicted += 1;
        }
        // 2-bit saturating update.
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        // Per-thread history update.
        self.history[ctx] = ((self.history[ctx] << 1) | u64::from(taken)) & self.history_mask;
        mispredicted
    }

    /// Takes and resets the per-timeslice counters.
    pub fn take_stats(&mut self) -> BranchStats {
        std::mem::take(&mut self.stats)
    }

    /// Clears per-thread history (called when a context is re-assigned to a
    /// different job at a timeslice boundary). Table contents persist — the
    /// warm predictor state is part of the shared microarchitecture.
    pub fn reset_history(&mut self, ctx: usize) {
        self.history[ctx] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(contexts: usize) -> BranchPredictor {
        BranchPredictor::new(
            BranchConfig {
                table_bits: 10,
                history_bits: 8,
                mispredict_penalty: 7,
            },
            contexts,
        )
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = predictor(1);
        // After warm-up, an always-taken branch is always predicted correctly.
        for _ in 0..4 {
            p.predict_and_update(0, 0x1000, true);
        }
        let before = p.take_stats();
        assert!(before.predicted >= 4);
        for _ in 0..100 {
            assert!(!p.predict_and_update(0, 0x1000, true));
        }
        assert_eq!(p.take_stats().mispredicted, 0);
    }

    #[test]
    fn learns_a_pattern_through_history() {
        let mut p = predictor(1);
        // Alternating T/N branch: gshare with history resolves it after warm-up.
        let pattern = [true, false];
        for i in 0..64 {
            p.predict_and_update(0, 0x2000, pattern[i % 2]);
        }
        p.take_stats();
        let mut wrong = 0;
        for i in 0..64 {
            if p.predict_and_update(0, 0x2000, pattern[i % 2]) {
                wrong += 1;
            }
        }
        assert!(
            wrong <= 2,
            "gshare should capture an alternating pattern, got {wrong} wrong"
        );
    }

    #[test]
    fn threads_share_the_table() {
        // Thread 1 hammering a conflicting entry degrades thread 0's accuracy
        // relative to running alone — the SMT interference channel.
        let mut alone = predictor(2);
        for _ in 0..200 {
            alone.predict_and_update(0, 0x40, true);
        }
        alone.take_stats();
        for _ in 0..100 {
            alone.predict_and_update(0, 0x40, true);
        }
        let alone_miss = alone.take_stats().mispredicted;

        let mut shared = predictor(2);
        for _ in 0..200 {
            shared.predict_and_update(0, 0x40, true);
        }
        shared.take_stats();
        // Ctx 0's steady-state history is 0xFF (always taken), so it indexes
        // (0x40 >> 2) ^ 0xFF = 0xEF. Ctx 1 trains not-taken, keeping its
        // history at 0, so pc 0x3BC (0x3BC >> 2 = 0xEF) aliases exactly.
        for _ in 0..100 {
            shared.predict_and_update(0, 0x40, true);
            shared.predict_and_update(1, 0x3BC, false);
        }
        let shared_miss = shared.take_stats().mispredicted;
        assert!(
            shared_miss >= alone_miss,
            "interference should not reduce mispredictions"
        );
        assert!(shared_miss > 0, "aliasing thread must cause some damage");
    }

    #[test]
    fn mispredict_pct() {
        let s = BranchStats {
            predicted: 200,
            mispredicted: 10,
        };
        assert!((s.mispredict_pct() - 5.0).abs() < 1e-9);
        assert_eq!(BranchStats::default().mispredict_pct(), 0.0);
    }

    #[test]
    fn reset_history_only_clears_history() {
        let mut p = predictor(1);
        for _ in 0..10 {
            p.predict_and_update(0, 0x30, true);
        }
        p.reset_history(0);
        // Table still warm: immediately correct on the trained branch
        // (history 0 was also the state during training for a 1-site loop,
        // so prediction remains taken).
        assert!(!p.predict_and_update(0, 0x30, true));
    }
}

//! Observer probes for the pipeline engine.
//!
//! An [`Observer`] registered on a [`crate::Processor`] (or directly on the
//! [`crate::pipeline::Engine`]) receives structured callbacks as the
//! simulation runs:
//!
//! * **timeslice boundaries** — one `timeslice_start`/`timeslice_end` pair
//!   per [`crate::pipeline::Engine::run_timeslice`] call, with the finished
//!   slice's [`TimesliceStats`];
//! * **resource-conflict cycles** — one `conflict_cycle` per cycle in which a
//!   shared resource ([`Resource`]) turned work away;
//! * **stage occupancy** — a [`StageOccupancy`] snapshot of the
//!   fetch/dispatch/issue/commit structures, sampled every
//!   `occupancy_interval` cycles.
//!
//! Every method has a no-op default, so observers implement only what they
//! need. The engine holds the observer behind `Option<Box<dyn Observer>>`
//! and tests `is_some()` once per cycle; with no observer registered the
//! probes cost one predicted branch per cycle (see the
//! `observer_overhead` benchmark in the `sos-bench` crate).
//!
//! Observers that aggregate state across timeslices (e.g. a telemetry sink)
//! conventionally hold a shared handle (`Arc<Mutex<…>>` or a global
//! recorder) rather than relying on retrieving the box from the engine.

use crate::counters::Resource;
use crate::stats::TimesliceStats;

/// A point-in-time snapshot of pipeline-stage occupancy.
///
/// All fields count instructions (or registers) resident in the structure at
/// the sampled cycle, summed over hardware contexts where per-thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageOccupancy {
    /// Cycle (within the current timeslice) at which the sample was taken.
    pub cycle: u64,
    /// Decoded instructions awaiting dispatch (fetch-stage output buffers).
    pub decode: usize,
    /// Entries in the shared integer issue queue (dispatch-stage output).
    pub int_queue: usize,
    /// Entries in the shared floating-point issue queue.
    pub fp_queue: usize,
    /// Integer renaming registers in use.
    pub int_regs_in_use: usize,
    /// Floating-point renaming registers in use.
    pub fp_regs_in_use: usize,
    /// Instructions in flight between dispatch and commit, all threads.
    pub inflight: usize,
}

impl StageOccupancy {
    /// Total pre-issue occupancy (decode buffers plus both issue queues):
    /// the aggregate ICOUNT pressure on the front end.
    pub fn preissue(&self) -> usize {
        self.decode + self.int_queue + self.fp_queue
    }
}

/// Receives pipeline events as the engine simulates.
///
/// All methods default to no-ops. Implementations should be cheap: probes
/// run inside the cycle loop (conflict events) or at sampled cycles
/// (occupancy), and a slow observer slows the simulation accordingly.
pub trait Observer {
    /// A timeslice is starting: `threads` instruction streams will run for
    /// `cycles` cycles on a cold pipeline.
    fn timeslice_start(&mut self, threads: usize, cycles: u64) {
        let _ = (threads, cycles);
    }

    /// The timeslice finished with the given hardware counters.
    fn timeslice_end(&mut self, stats: &TimesliceStats) {
        let _ = stats;
    }

    /// Shared resource `resource` turned away at least one ready instruction
    /// during `cycle` (the paper's per-cycle conflict accounting: at most one
    /// event per resource per cycle).
    fn conflict_cycle(&mut self, cycle: u64, resource: Resource) {
        let _ = (cycle, resource);
    }

    /// A sampled occupancy snapshot (every `occupancy_interval` cycles).
    fn stage_occupancy(&mut self, occupancy: &StageOccupancy) {
        let _ = occupancy;
    }
}

/// An observer that ignores every event.
///
/// Registering `NopObserver` exercises the full probe call path (useful for
/// overhead measurement); registering no observer at all skips probes behind
/// a single branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopObserver;

impl Observer for NopObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_methods_are_callable_noops() {
        let mut obs = NopObserver;
        obs.timeslice_start(2, 100);
        obs.conflict_cycle(3, Resource::IntQueue);
        obs.stage_occupancy(&StageOccupancy::default());
        obs.timeslice_end(&TimesliceStats {
            cycles: 100,
            ..Default::default()
        });
    }

    #[test]
    fn preissue_sums_front_end_structures() {
        let occ = StageOccupancy {
            decode: 3,
            int_queue: 5,
            fp_queue: 2,
            ..Default::default()
        };
        assert_eq!(occ.preissue(), 10);
    }
}

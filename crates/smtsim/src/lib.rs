//! # smtsim — a cycle-level simultaneous multithreading (SMT) processor simulator
//!
//! This crate is the hardware substrate for the reproduction of *Symbiotic
//! Jobscheduling for a Simultaneous Multithreading Processor* (Snavely &
//! Tullsen, ASPLOS 2000). It models an out-of-order superscalar processor in
//! the spirit of SMTSIM: an Alpha-21264-derived core with modest additions for
//! simultaneous multithreading.
//!
//! The model includes, per cycle:
//!
//! * **ICOUNT.2.8 fetch** — up to 8 instructions per cycle from up to 2
//!   threads, preferring the threads with the fewest in-flight instructions,
//!   with instruction-cache and I-TLB access ([`fetch`]).
//! * **Register renaming** from shared integer and floating-point renaming
//!   pools ([`rename`]).
//! * **Dispatch** into shared integer and floating-point instruction queues
//!   ([`queue`]).
//! * **Issue** to shared functional units — integer ALUs, floating-point
//!   units, and load/store ports ([`fu`]).
//! * A shared **cache hierarchy** (L1I, L1D, unified L2, memory) and **TLBs**
//!   ([`cache`], [`tlb`]).
//! * A shared **gshare branch predictor** with per-thread history, so threads
//!   interfere in the prediction tables as they do on real SMT hardware
//!   ([`branch`]).
//! * **Hardware performance counters** for every shared resource: the
//!   per-cycle conflict counters the SOS scheduler's predictors consume
//!   ([`counters`]).
//!
//! Threads are fed by [`trace::InstructionSource`] implementations (see the
//! `workloads` crate). The processor persists cache, TLB, and branch-predictor
//! state across timeslices, so cache warm-up and cold-start effects across
//! context switches are modeled — the effects §8 of the paper studies.
//!
//! ## Example
//!
//! ```
//! use smtsim::{MachineConfig, Processor};
//! use smtsim::trace::{Fetch, Instr, InstructionSource, StreamId};
//!
//! /// A trivial stream of independent integer ALU instructions.
//! struct AluStream { pc: u64 }
//! impl InstructionSource for AluStream {
//!     fn next_instr(&mut self) -> Fetch {
//!         self.pc += 4;
//!         Fetch::Instr(Instr::int_alu(self.pc, 0))
//!     }
//!     fn id(&self) -> StreamId { StreamId(7) }
//! }
//!
//! let mut cpu = Processor::new(MachineConfig::alpha21264_like(2));
//! let mut a = AluStream { pc: 0 };
//! let mut b = AluStream { pc: 1 << 40 };
//! let stats = cpu.run_timeslice(&mut [&mut a, &mut b], 10_000);
//! assert!(stats.total_committed() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod context;
pub mod counters;
pub mod fastsim;
pub mod fetch;
pub mod fu;
pub mod invariants;
pub mod observe;
pub mod pipeline;
pub mod processor;
pub mod queue;
pub mod rename;
pub mod stats;
pub mod tlb;
pub mod trace;

pub use config::{BranchConfig, CacheConfig, FetchPolicy, Latencies, MachineConfig};
pub use counters::ConflictCounters;
pub use fastsim::{FastSim, FastSimCounters, FastSimEvent, FastSimPolicy};
pub use invariants::InvariantViolation;
pub use observe::{NopObserver, Observer, StageOccupancy};
pub use processor::Processor;
pub use stats::{ThreadStats, TimesliceStats};
pub use trace::{Fetch, Instr, InstrClass, InstructionSource, StreamId};

//! Functional-unit pools: integer units, floating-point units, load/store
//! ports.
//!
//! Most operations are fully pipelined (a unit accepts a new instruction
//! every cycle); long operations like floating-point divide occupy their unit
//! for several cycles (`occupancy > 1`), as on the 21264. A cycle on which a
//! ready instruction finds every unit of its pool busy is a conflict on that
//! pool — one of the events the paper's predictors read from the hardware
//! counters.

use crate::trace::InstrClass;

/// Which functional-unit pool an instruction class issues to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FuKind {
    /// Integer ALUs / multiplier.
    Int,
    /// Floating-point units.
    Fp,
    /// Load/store ports.
    Ls,
}

impl FuKind {
    /// Pool required by an instruction class.
    #[inline]
    pub fn for_class(class: InstrClass) -> FuKind {
        match class {
            InstrClass::IntAlu | InstrClass::IntMul | InstrClass::Branch => FuKind::Int,
            InstrClass::FpAdd | InstrClass::FpMul | InstrClass::FpDiv => FuKind::Fp,
            InstrClass::Load | InstrClass::Store => FuKind::Ls,
        }
    }
}

/// Issue-slot bookkeeping for the three pools.
///
/// Each unit tracks the cycle until which it is occupied; fully-pipelined
/// operations occupy a unit for one cycle, long operations for several.
#[derive(Clone, Debug)]
pub struct FuPools {
    int_busy: Vec<u64>,
    fp_busy: Vec<u64>,
    ls_busy: Vec<u64>,
}

impl FuPools {
    /// Builds the pools with the given widths, all units idle.
    pub fn new(int_units: usize, fp_units: usize, ls_ports: usize) -> Self {
        FuPools {
            int_busy: vec![0; int_units],
            fp_busy: vec![0; fp_units],
            ls_busy: vec![0; ls_ports],
        }
    }

    /// Attempts to claim a unit of the pool `class` needs at cycle `now`,
    /// occupying it through `now + occupancy`. Returns `false` (a conflict)
    /// if every unit of the pool is busy.
    #[inline]
    pub fn try_issue(&mut self, class: InstrClass, now: u64, occupancy: u64) -> bool {
        let pool = match FuKind::for_class(class) {
            FuKind::Int => &mut self.int_busy,
            FuKind::Fp => &mut self.fp_busy,
            FuKind::Ls => &mut self.ls_busy,
        };
        for busy_until in pool.iter_mut() {
            if *busy_until <= now {
                *busy_until = now + occupancy.max(1);
                return true;
            }
        }
        false
    }

    /// Units of `kind` free at cycle `now`.
    pub fn free(&self, kind: FuKind, now: u64) -> usize {
        let pool = match kind {
            FuKind::Int => &self.int_busy,
            FuKind::Fp => &self.fp_busy,
            FuKind::Ls => &self.ls_busy,
        };
        pool.iter().filter(|&&b| b <= now).count()
    }

    /// Marks every unit idle (timeslice-boundary reset).
    pub fn reset(&mut self) {
        for p in [&mut self.int_busy, &mut self.fp_busy, &mut self.ls_busy] {
            p.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_to_pool_mapping() {
        assert_eq!(FuKind::for_class(InstrClass::IntAlu), FuKind::Int);
        assert_eq!(FuKind::for_class(InstrClass::IntMul), FuKind::Int);
        assert_eq!(FuKind::for_class(InstrClass::Branch), FuKind::Int);
        assert_eq!(FuKind::for_class(InstrClass::FpDiv), FuKind::Fp);
        assert_eq!(FuKind::for_class(InstrClass::Load), FuKind::Ls);
        assert_eq!(FuKind::for_class(InstrClass::Store), FuKind::Ls);
    }

    #[test]
    fn pipelined_units_free_next_cycle() {
        let mut fu = FuPools::new(2, 1, 1);
        assert!(fu.try_issue(InstrClass::IntAlu, 10, 1));
        assert!(fu.try_issue(InstrClass::Branch, 10, 1));
        assert!(
            !fu.try_issue(InstrClass::IntMul, 10, 1),
            "third int op must conflict"
        );
        assert!(
            fu.try_issue(InstrClass::IntAlu, 11, 1),
            "pipelined unit accepts next cycle"
        );
    }

    #[test]
    fn long_occupancy_blocks_for_its_duration() {
        let mut fu = FuPools::new(1, 1, 1);
        assert!(fu.try_issue(InstrClass::FpDiv, 0, 12));
        for c in 1..12 {
            assert!(
                !fu.try_issue(InstrClass::FpAdd, c, 1),
                "fp unit busy at cycle {c}"
            );
        }
        assert!(fu.try_issue(InstrClass::FpAdd, 12, 1));
    }

    #[test]
    fn free_counts_and_reset() {
        let mut fu = FuPools::new(4, 2, 2);
        fu.try_issue(InstrClass::Load, 0, 1);
        assert_eq!(fu.free(FuKind::Ls, 0), 1);
        fu.try_issue(InstrClass::FpDiv, 0, 20);
        fu.reset();
        assert_eq!(fu.free(FuKind::Fp, 0), 2);
        assert_eq!(fu.free(FuKind::Int, 0), 4);
    }
}

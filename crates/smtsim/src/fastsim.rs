//! Phase-aware sampled fast simulation.
//!
//! The detailed pipeline model is the throughput ceiling of everything built
//! on top of it. This module recovers 1–2 orders of magnitude the way live
//! sampled simulators (Pac-Sim and friends) do: watch the per-timeslice
//! hardware-counter stream for *stable phases*, and once a coschedule's
//! behaviour has settled, stop simulating it in detail — synthesize its
//! counters by scaling the last detailed window and fast-forward the
//! instruction streams past the work the synthesized slice credits them with.
//!
//! The unit of phase tracking is the **tuple** (the set of streams
//! coscheduled on the machine), because symbiosis is a property of the
//! combination: the same job behaves differently against different partners.
//! For every tuple the detector keeps a sliding window of its last
//! [`FastSimPolicy::stable_window`] detailed slices. When the window's
//! [`PhaseSignature`]s (IPC, cache-miss mix, conflict rate, FP/integer
//! balance) agree within [`FastSimPolicy::stability_threshold`], the tuple's
//! phase is *locked* and subsequent slices are extrapolated.
//!
//! Extrapolation is bounded by a per-phase **confidence tracker**: a freshly
//! locked phase is only trusted for a few slices before a detailed re-sample
//! window is forced. A re-sample window is
//! [`FastSimPolicy::resample_warmup`] cache **warm-up** slices followed by
//! one judged slice: during an extrapolation run the detailed machine state
//! (caches, TLBs, branch tables) goes stale while the streams skip forward,
//! so the first detailed slice after a run always shows a cold-start
//! signature — it is executed and reported like any detailed slice, but
//! excluded from the drift judgment. Both warm-up and judged slices refresh
//! the reference window, so the reference *slides* along with the slow
//! phase modulation of real workloads instead of comparing the present
//! against an ever-staler past; over a modulation period the lag error of a
//! sliding reference integrates out of the aggregate counters, which is
//! what keeps long fast runs unbiased. Every judged slice that agrees with the
//! reference window raises confidence (lengthening the extrapolation run),
//! and one that deviates beyond [`FastSimPolicy::drift_tolerance`] forces a
//! fallback to full detail — the window is discarded and the phase must
//! re-lock from scratch. Invariant checking lives inside the detailed
//! pipeline, so every detailed window (including re-samples) is still fully
//! checked.
//!
//! Everything here is deterministic: synthesized counters use integer
//! scaling of the reference window, so a fast run is byte-reproducible for a
//! fixed seed, and a run with fast-sim disabled is untouched (the engine
//! never calls into this module).

use crate::counters::ConflictCounters;
use crate::stats::{ThreadStats, TimesliceStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the fast-forward simulation mode.
///
/// `Default` gives the tuning the accuracy harness validates (±2% on the
/// fig5/fig6 scenarios); [`FastSimPolicy::with_threshold`] is the knob the
/// driver flags expose.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FastSimPolicy {
    /// Maximum relative spread of the phase signature across the stability
    /// window for a phase to lock (and, with [`Self::drift_tolerance`], the
    /// re-sample agreement band).
    pub stability_threshold: f64,
    /// Detailed slices a tuple must hold a stable signature for before its
    /// phase locks; also the length of the reference window counters are
    /// synthesized from.
    pub stable_window: usize,
    /// Extrapolated slices allowed between detailed re-sample slices at full
    /// confidence. A freshly locked phase is allowed
    /// `initial_confidence × max_extrapolated`.
    pub max_extrapolated: usize,
    /// Relative deviation between a re-sample slice and the reference window
    /// beyond which the phase is declared drifted and the tuple falls back
    /// to full detail.
    pub drift_tolerance: f64,
    /// Confidence assigned when a phase locks (fraction of
    /// [`Self::max_extrapolated`] granted).
    pub initial_confidence: f64,
    /// Confidence gained per agreeing re-sample (capped at 1.0).
    pub confidence_step: f64,
    /// Detailed cache warm-up slices run (but not judged) at the start of
    /// each re-sample window, so the judged slice measures the phase rather
    /// than the cold shared state left behind by the skip-forward. Zero
    /// judges the first post-run slice directly (not recommended: stale
    /// caches make it a guaranteed fallback).
    #[serde(default)]
    pub resample_warmup: usize,
}

impl Default for FastSimPolicy {
    fn default() -> Self {
        FastSimPolicy {
            stability_threshold: 0.10,
            stable_window: 4,
            max_extrapolated: 96,
            drift_tolerance: 0.15,
            initial_confidence: 0.25,
            confidence_step: 0.25,
            resample_warmup: 1,
        }
    }
}

impl FastSimPolicy {
    /// The default policy with a specific stability threshold (the
    /// `--fast-threshold` flag). Drift tolerance scales with it so a tighter
    /// lock also re-samples more aggressively.
    pub fn with_threshold(threshold: f64) -> Self {
        FastSimPolicy {
            stability_threshold: threshold,
            drift_tolerance: threshold * 1.5,
            ..Default::default()
        }
    }

    /// A short human-readable form for reports and bench records.
    pub fn describe(&self) -> String {
        format!(
            "threshold={} window={} max_extrap={} drift_tol={}",
            self.stability_threshold,
            self.stable_window,
            self.max_extrapolated,
            self.drift_tolerance
        )
    }

    fn validate(&self) {
        assert!(
            self.stability_threshold > 0.0
                && self.drift_tolerance > 0.0
                && self.stable_window >= 2
                && self.max_extrapolated >= 1
                && (0.0..=1.0).contains(&self.initial_confidence)
                && self.confidence_step > 0.0,
            "bad fast-sim policy: {self:?}"
        );
    }
}

/// The behavioural fingerprint of one detailed timeslice — the components
/// §9's phase argument cares about: throughput, memory behaviour, resource
/// pressure, and instruction mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSignature {
    /// Aggregate committed IPC.
    pub ipc: f64,
    /// L1 data-cache miss rate (misses per reference, 0..1).
    pub dl1_miss_rate: f64,
    /// L2 misses per cycle. Misses-per-reference would be the obvious
    /// choice, but L2 reference counts per timeslice are small enough that
    /// a per-ref rate is statistically unstable slice-to-slice; per-cycle
    /// measures the same memory pressure robustly.
    pub l2_mpc: f64,
    /// Fraction of cycles with at least one shared-resource conflict (the
    /// sum over resources, so it can exceed 1; only deltas matter).
    pub conflict_rate: f64,
    /// FP share of committed arithmetic (0..1).
    pub fp_share: f64,
}

impl PhaseSignature {
    /// Extracts the signature of one detailed slice.
    pub fn of(stats: &TimesliceStats) -> Self {
        let rate = |miss: u64, refs: u64| {
            if refs == 0 {
                0.0
            } else {
                miss as f64 / refs as f64
            }
        };
        let conflict_cycles: u64 = crate::counters::Resource::ALL
            .iter()
            .map(|&r| stats.conflicts.get(r))
            .sum();
        let (fp_pct, int_pct) = stats.fp_int_mix_pct();
        let arith = fp_pct + int_pct;
        PhaseSignature {
            ipc: stats.total_ipc(),
            dl1_miss_rate: rate(stats.cache.dl1_misses, stats.cache.dl1_refs),
            l2_mpc: rate(stats.cache.l2_misses, stats.cycles),
            conflict_rate: rate(conflict_cycles, stats.cycles),
            fp_share: if arith <= 0.0 { 0.0 } else { fp_pct / arith },
        }
    }

    /// The largest normalized component deviation between two signatures.
    /// IPC deviates relatively; the rate components (already 0..1-ish)
    /// deviate absolutely, so an all-hits phase and a cold phase compare
    /// sanely even when one rate is zero.
    pub fn deviation(&self, other: &PhaseSignature) -> f64 {
        let rel = if self.ipc.max(other.ipc) <= 1e-12 {
            0.0
        } else {
            (self.ipc - other.ipc).abs() / self.ipc.max(other.ipc)
        };
        rel.max((self.dl1_miss_rate - other.dl1_miss_rate).abs())
            .max((self.l2_mpc - other.l2_mpc).abs())
            .max((self.conflict_rate - other.conflict_rate).abs())
            .max((self.fp_share - other.fp_share).abs())
    }
}

/// What a call to [`FastSim::observe_detailed`] concluded (telemetry hooks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FastSimEvent {
    /// The tuple's signature held stable across the window: phase locked,
    /// extrapolation begins.
    PhaseLocked {
        /// Confidence granted to the fresh lock.
        confidence: f64,
    },
    /// A scheduled re-sample agreed with the reference window; confidence
    /// rose.
    ResampleOk {
        /// Deviation the re-sample showed.
        deviation: f64,
        /// Confidence after the raise.
        confidence: f64,
    },
    /// A re-sample drifted moderately (between tolerance and
    /// [`HARD_DRIFT_FACTOR`]×tolerance): slow modulation, not a phase
    /// change. The phase stays locked on the slid reference window but
    /// confidence resets, shortening the next extrapolation run.
    Resync {
        /// Deviation the re-sample showed.
        deviation: f64,
        /// Confidence after the reset.
        confidence: f64,
    },
    /// A re-sample deviated far beyond tolerance: the phase is dropped and
    /// the tuple runs fully detailed until it re-locks.
    Fallback {
        /// Deviation that broke the phase.
        deviation: f64,
    },
}

/// Judged deviations beyond `drift_tolerance` but within
/// `HARD_DRIFT_FACTOR × drift_tolerance` are slow drift (resync, stay
/// locked); beyond it they are an abrupt phase change (fallback, unlock).
/// Slow modulation is the common case in real workloads, and unlocking on
/// it wastes a full relock window every run for no accuracy gain — the
/// reference window already tracks the drift.
pub const HARD_DRIFT_FACTOR: f64 = 2.0;

/// Lifetime counters of a [`FastSim`] (exported through the metrics hub).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastSimCounters {
    /// Timeslices executed in the detailed pipeline model.
    pub detailed_slices: u64,
    /// Timeslices synthesized by extrapolation.
    pub extrapolated_slices: u64,
    /// Machine cycles covered by detailed execution.
    pub detailed_cycles: u64,
    /// Machine cycles covered by extrapolation.
    pub extrapolated_cycles: u64,
    /// Phase locks (detail → extrapolation transitions).
    pub phase_locks: u64,
    /// Drift-forced fallbacks (extrapolation → detail transitions).
    pub fallbacks: u64,
    /// Detailed re-sample slices that confirmed a locked phase.
    pub resamples_ok: u64,
    /// Moderate-drift re-samples that re-synced the reference window
    /// without unlocking the phase.
    #[serde(default)]
    pub resyncs: u64,
}

impl FastSimCounters {
    /// Fraction of covered cycles that were extrapolated (0..1).
    pub fn extrapolated_fraction(&self) -> f64 {
        let total = self.detailed_cycles + self.extrapolated_cycles;
        if total == 0 {
            0.0
        } else {
            self.extrapolated_cycles as f64 / total as f64
        }
    }
}

/// Per-tuple phase state.
#[derive(Default)]
struct TupleState {
    /// Reference window: the most recent detailed slices of this tuple.
    window: Vec<TimesliceStats>,
    locked: bool,
    confidence: f64,
    /// Extrapolated slices since the last detailed slice of this tuple.
    run: usize,
    /// An extrapolation run just ended: a re-sample window (warm-up slices
    /// then one judged slice) is in progress, so extrapolation is paused.
    resampling: bool,
    /// Warm-up slices still owed before the judged slice of the current
    /// re-sample window.
    warmup_left: usize,
}

impl TupleState {
    /// Mean signature over the reference window (uses summed counters, not
    /// the mean of signatures, so a long slice weighs more).
    fn reference_signature(&self) -> PhaseSignature {
        let mut sum = TimesliceStats::default();
        for s in &self.window {
            accumulate(&mut sum, s);
        }
        PhaseSignature::of(&sum)
    }
}

/// Bound on distinct tuples tracked. Rotations over a live set of `x` jobs
/// produce at most `x` distinct windows between mix changes, so production
/// engines sit far below this; the cap only guards against a pathological
/// driver never calling [`FastSim::invalidate`].
const MAX_TRACKED_TUPLES: usize = 4096;

/// The phase detector + extrapolator (one per engine / runner).
///
/// Protocol per timeslice, for tuple key `k` (the sorted stream ids of the
/// coschedule):
///
/// 1. [`try_extrapolate`](Self::try_extrapolate) — `Some(stats)` means the
///    slice was synthesized; advance streams by the per-thread committed
///    counts and skip the detailed model.
/// 2. On `None`, run the detailed model and feed the result to
///    [`observe_detailed`](Self::observe_detailed).
///
/// Call [`invalidate`](Self::invalidate) on every mix change (arrival,
/// departure, migration): phase behaviour is a property of the *machine
/// state*, and a new mix shifts the shared caches under every tuple.
pub struct FastSim {
    policy: FastSimPolicy,
    tuples: HashMap<Vec<u64>, TupleState>,
    counters: FastSimCounters,
}

impl FastSim {
    /// Builds a detector with the given policy.
    ///
    /// # Panics
    /// Panics if the policy is ill-formed (non-positive thresholds, window
    /// below 2, confidence outside \[0, 1\]).
    pub fn new(policy: FastSimPolicy) -> Self {
        policy.validate();
        FastSim {
            policy,
            tuples: HashMap::new(),
            counters: FastSimCounters::default(),
        }
    }

    /// The policy this detector runs.
    pub fn policy(&self) -> &FastSimPolicy {
        &self.policy
    }

    /// Lifetime counters.
    pub fn counters(&self) -> &FastSimCounters {
        &self.counters
    }

    /// Synthesizes a `cycles`-long slice for tuple `key` if its phase is
    /// locked and its confidence allows another extrapolated slice.
    /// Returns `None` when the slice must run detailed (unknown tuple,
    /// unlocked phase, or a due re-sample).
    ///
    /// The synthesized counters are the reference window's counters scaled
    /// to `cycles` with pure integer arithmetic (floor division), so
    /// conservation inequalities (`committed ≤ fetched`,
    /// `misses ≤ refs`, `conflict ≤ cycles`) survive scaling and the
    /// result is byte-deterministic.
    pub fn try_extrapolate(&mut self, key: &[u64], cycles: u64) -> Option<TimesliceStats> {
        let st = self.tuples.get_mut(key)?;
        if !st.locked || st.resampling || st.window.is_empty() || cycles == 0 {
            return None;
        }
        let allowed = ((st.confidence * self.policy.max_extrapolated as f64) as usize).max(1);
        if st.run >= allowed {
            // Run exhausted: force a detailed re-sample window (warm-up
            // slices to refill the shared state, then one judged slice).
            st.resampling = true;
            st.warmup_left = self.policy.resample_warmup;
            return None;
        }
        let stats = synthesize(&st.window, cycles);
        st.run += 1;
        self.counters.extrapolated_slices += 1;
        self.counters.extrapolated_cycles += cycles;
        Some(stats)
    }

    /// Feeds one detailed slice of tuple `key` into the detector and
    /// advances the phase state machine. Returns the transition event, if
    /// any (for telemetry).
    pub fn observe_detailed(
        &mut self,
        key: &[u64],
        stats: &TimesliceStats,
    ) -> Option<FastSimEvent> {
        self.counters.detailed_slices += 1;
        self.counters.detailed_cycles += stats.cycles;
        if stats.cycles == 0 {
            return None;
        }
        if self.tuples.len() >= MAX_TRACKED_TUPLES && !self.tuples.contains_key(key) {
            self.tuples.clear();
        }
        let window_len = self.policy.stable_window;
        let st = self.tuples.entry(key.to_vec()).or_default();
        if st.locked {
            if st.resampling && st.warmup_left > 0 {
                // Cache warm-up slice: the detailed model just re-entered
                // state gone stale over the extrapolation run, so this
                // slice's signature carries a re-entry artifact. Report it
                // and let it refresh the reference window — the workload's
                // behaviour drifts slowly (phases are modulated, not
                // piecewise-constant) and the window must *track* it so the
                // judged slice is compared against the present, not the
                // pre-run past — but judge the next slice, not this one.
                st.warmup_left -= 1;
                if st.window.len() >= window_len {
                    st.window.remove(0);
                }
                st.window.push(stats.clone());
                return None;
            }
            st.resampling = false;
            // Scheduled re-sample: does the phase still hold?
            let deviation = st
                .reference_signature()
                .deviation(&PhaseSignature::of(stats));
            if std::env::var_os("FASTSIM_DEBUG").is_some() {
                eprintln!(
                    "judge: ref={:?}\n       got={:?} dev={deviation:.4}",
                    st.reference_signature(),
                    PhaseSignature::of(stats)
                );
            }
            st.run = 0;
            if deviation > self.policy.drift_tolerance * HARD_DRIFT_FACTOR {
                // Abrupt phase change: drop the phase, keep this slice as
                // the seed of the next lock attempt.
                st.locked = false;
                st.confidence = 0.0;
                st.window.clear();
                st.window.push(stats.clone());
                self.counters.fallbacks += 1;
                return Some(FastSimEvent::Fallback { deviation });
            }
            if st.window.len() >= window_len {
                st.window.remove(0);
            }
            st.window.push(stats.clone());
            if deviation > self.policy.drift_tolerance {
                // Slow drift: the slid window already tracks the present;
                // stay locked but trust the next run less (multiplicative
                // decrease against the additive increase of agreeing
                // re-samples, so sustained drift shortens runs quickly and
                // a one-off blip costs little).
                st.confidence = (st.confidence * 0.5).max(self.policy.initial_confidence);
                self.counters.resyncs += 1;
                return Some(FastSimEvent::Resync {
                    deviation,
                    confidence: st.confidence,
                });
            }
            st.confidence = (st.confidence + self.policy.confidence_step).min(1.0);
            self.counters.resamples_ok += 1;
            return Some(FastSimEvent::ResampleOk {
                deviation,
                confidence: st.confidence,
            });
        }
        if st.window.len() >= window_len {
            st.window.remove(0);
        }
        st.window.push(stats.clone());
        if st.window.len() == window_len
            && window_is_stable(&st.window, self.policy.stability_threshold)
        {
            st.locked = true;
            st.confidence = self.policy.initial_confidence;
            st.run = 0;
            self.counters.phase_locks += 1;
            return Some(FastSimEvent::PhaseLocked {
                confidence: st.confidence,
            });
        }
        None
    }

    /// Drops all tuple state (the heavy hammer — every phase must re-lock
    /// from scratch).
    pub fn invalidate(&mut self) {
        self.tuples.clear();
    }

    /// The measured response to a mix change (arrival, departure,
    /// migration): the shared machine state shifts under every tracked
    /// phase, but a locked phase usually survives it — same tuple, slightly
    /// different cache pressure. Every locked tuple must re-prove itself
    /// through a fresh re-sample window (warm-up + judged slice) before it
    /// may extrapolate again, so the judge resyncs or falls back on
    /// evidence instead of [`invalidate`] presuming the worst; unlocked
    /// partial windows are dropped (they would mix pre- and post-change
    /// slices into one reference).
    pub fn revalidate(&mut self) {
        self.tuples.retain(|_, st| st.locked);
        for st in self.tuples.values_mut() {
            st.resampling = true;
            st.warmup_left = self.policy.resample_warmup;
            st.run = 0;
        }
    }
}

/// Whether every pair of slices in the window agrees within `threshold`.
fn window_is_stable(window: &[TimesliceStats], threshold: f64) -> bool {
    let sigs: Vec<PhaseSignature> = window.iter().map(PhaseSignature::of).collect();
    sigs.windows(2).all(|w| w[0].deviation(&w[1]) <= threshold)
        && sigs
            .first()
            .zip(sigs.last())
            .is_some_and(|(a, b)| a.deviation(b) <= threshold)
}

/// `v × cycles / ref_cycles` in u128 to avoid overflow.
#[inline]
fn scale(v: u64, cycles: u64, ref_cycles: u64) -> u64 {
    ((v as u128 * cycles as u128) / ref_cycles as u128) as u64
}

/// Sums `s` into `acc` (counters only; the thread list is merged by id).
fn accumulate(acc: &mut TimesliceStats, s: &TimesliceStats) {
    acc.cycles += s.cycles;
    for t in &s.threads {
        match acc.threads.iter_mut().find(|a| a.stream == t.stream) {
            Some(a) => {
                a.fetched += t.fetched;
                a.committed += t.committed;
                for (ac, tc) in a.class_counts.iter_mut().zip(t.class_counts.iter()) {
                    *ac += tc;
                }
                a.blocked_cycles += t.blocked_cycles;
                a.dl1_refs += t.dl1_refs;
                a.dl1_misses += t.dl1_misses;
                a.il1_refs += t.il1_refs;
                a.il1_misses += t.il1_misses;
            }
            None => acc.threads.push(t.clone()),
        }
    }
    acc.conflicts.merge(&s.conflicts);
    acc.cache.merge(&s.cache);
    acc.dtlb.refs += s.dtlb.refs;
    acc.dtlb.misses += s.dtlb.misses;
    acc.itlb.refs += s.itlb.refs;
    acc.itlb.misses += s.itlb.misses;
    acc.branches.predicted += s.branches.predicted;
    acc.branches.mispredicted += s.branches.mispredicted;
}

/// Synthesizes a `cycles`-long slice by scaling the summed reference window.
fn synthesize(window: &[TimesliceStats], cycles: u64) -> TimesliceStats {
    let mut sum = TimesliceStats::default();
    for s in window {
        accumulate(&mut sum, s);
    }
    let rc = sum.cycles.max(1);
    let sc = |v: u64| scale(v, cycles, rc);
    TimesliceStats {
        cycles,
        threads: sum
            .threads
            .iter()
            .map(|t| ThreadStats {
                stream: t.stream,
                fetched: sc(t.fetched),
                committed: sc(t.committed),
                class_counts: {
                    let mut c = [0u64; 8];
                    for (o, &v) in c.iter_mut().zip(t.class_counts.iter()) {
                        *o = sc(v);
                    }
                    c
                },
                blocked_cycles: sc(t.blocked_cycles),
                dl1_refs: sc(t.dl1_refs),
                dl1_misses: sc(t.dl1_misses),
                il1_refs: sc(t.il1_refs),
                il1_misses: sc(t.il1_misses),
            })
            .collect(),
        conflicts: {
            let mut c = ConflictCounters::default();
            for &r in crate::counters::Resource::ALL.iter() {
                *c.get_mut(r) = sc(sum.conflicts.get(r));
            }
            c
        },
        cache: crate::cache::CacheStats {
            dl1_refs: sc(sum.cache.dl1_refs),
            dl1_misses: sc(sum.cache.dl1_misses),
            il1_refs: sc(sum.cache.il1_refs),
            il1_misses: sc(sum.cache.il1_misses),
            l2_refs: sc(sum.cache.l2_refs),
            l2_misses: sc(sum.cache.l2_misses),
        },
        dtlb: crate::tlb::TlbStats {
            refs: sc(sum.dtlb.refs),
            misses: sc(sum.dtlb.misses),
        },
        itlb: crate::tlb::TlbStats {
            refs: sc(sum.itlb.refs),
            misses: sc(sum.itlb.misses),
        },
        branches: crate::branch::BranchStats {
            predicted: sc(sum.branches.predicted),
            mispredicted: sc(sum.branches.mispredicted),
        },
    }
}

/// The canonical tuple key: sorted stream ids of a coschedule.
pub fn tuple_key<I: IntoIterator<Item = u64>>(ids: I) -> Vec<u64> {
    let mut k: Vec<u64> = ids.into_iter().collect();
    k.sort_unstable();
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StreamId;

    /// A detailed slice with the given IPC-ish committed count.
    fn slice(committed: u64, dl1_misses: u64) -> TimesliceStats {
        TimesliceStats {
            cycles: 1_000,
            threads: vec![ThreadStats {
                stream: StreamId(7),
                fetched: committed + 50,
                committed,
                class_counts: [
                    committed / 2,
                    0,
                    committed / 4,
                    0,
                    0,
                    committed / 8,
                    0,
                    committed / 8,
                ],
                blocked_cycles: 0,
                dl1_refs: 200,
                dl1_misses,
                il1_refs: 100,
                il1_misses: 5,
            }],
            ..Default::default()
        }
    }

    fn stable_policy() -> FastSimPolicy {
        FastSimPolicy::with_threshold(0.10)
    }

    #[test]
    fn locks_after_stable_window_and_extrapolates() {
        let mut fs = FastSim::new(stable_policy());
        let key = tuple_key([7u64]);
        for i in 0..4 {
            let ev = fs.observe_detailed(&key, &slice(1_500, 20));
            if i < 3 {
                assert_eq!(ev, None, "slice {i} must not lock yet");
            } else {
                assert!(matches!(ev, Some(FastSimEvent::PhaseLocked { .. })));
            }
        }
        let synth = fs.try_extrapolate(&key, 1_000).expect("locked phase");
        assert_eq!(synth.cycles, 1_000);
        // Scaled from a 4-slice window of identical slices: same per-slice counts.
        assert_eq!(synth.threads[0].committed, 1_500);
        assert_eq!(synth.threads[0].stream, StreamId(7));
        assert_eq!(fs.counters().phase_locks, 1);
        assert_eq!(fs.counters().extrapolated_slices, 1);
    }

    #[test]
    fn unstable_window_never_locks() {
        let mut fs = FastSim::new(stable_policy());
        let key = tuple_key([7u64]);
        for i in 0..12 {
            // IPC alternates 1.5 / 0.5: far outside a 10% band.
            let c = if i % 2 == 0 { 1_500 } else { 500 };
            assert_eq!(fs.observe_detailed(&key, &slice(c, 20)), None);
        }
        assert!(fs.try_extrapolate(&key, 1_000).is_none());
        assert_eq!(fs.counters().phase_locks, 0);
    }

    #[test]
    fn confidence_bounds_the_extrapolation_run() {
        let mut fs = FastSim::new(stable_policy());
        let key = tuple_key([7u64]);
        for _ in 0..4 {
            fs.observe_detailed(&key, &slice(1_500, 20));
        }
        // initial_confidence 0.25 × max_extrapolated 96 = 24 slices.
        let mut granted = 0;
        while fs.try_extrapolate(&key, 1_000).is_some() {
            granted += 1;
            assert!(granted <= 96, "extrapolation must pause for a re-sample");
        }
        assert_eq!(granted, 24);
        // The re-sample window opens with a cache warm-up slice (not
        // judged), then an agreeing judged slice raises confidence and
        // restarts the run.
        assert_eq!(fs.observe_detailed(&key, &slice(1_500, 20)), None);
        let ev = fs.observe_detailed(&key, &slice(1_500, 20));
        assert!(matches!(ev, Some(FastSimEvent::ResampleOk { .. })));
        let mut granted2 = 0;
        while fs.try_extrapolate(&key, 1_000).is_some() {
            granted2 += 1;
            assert!(granted2 <= 96);
        }
        assert!(granted2 > granted, "confidence must lengthen the run");
    }

    #[test]
    fn resample_warmup_slice_is_not_judged() {
        // The first detailed slice after an extrapolation run sees the
        // cold/stale shared state left behind by the skip-forward; even a
        // wildly deviating warm-up slice must not break the phase, and
        // extrapolation must stay paused until the judged slice agrees.
        let mut fs = FastSim::new(stable_policy());
        let key = tuple_key([7u64]);
        for _ in 0..4 {
            fs.observe_detailed(&key, &slice(1_500, 20));
        }
        while fs.try_extrapolate(&key, 1_000).is_some() {}
        // Warm-up slice with a cold-start signature (half IPC, miss storm).
        assert_eq!(fs.observe_detailed(&key, &slice(700, 180)), None);
        assert_eq!(fs.counters().fallbacks, 0, "warm-up must not be judged");
        assert!(
            fs.try_extrapolate(&key, 1_000).is_none(),
            "extrapolation stays paused until the judged slice"
        );
        // The judged slice agrees with the reference window: run resumes.
        let ev = fs.observe_detailed(&key, &slice(1_500, 20));
        assert!(
            matches!(ev, Some(FastSimEvent::ResampleOk { .. })),
            "{ev:?}"
        );
        assert!(fs.try_extrapolate(&key, 1_000).is_some());
    }

    #[test]
    fn drift_forces_fallback_and_relock() {
        let mut fs = FastSim::new(stable_policy());
        let key = tuple_key([7u64]);
        for _ in 0..4 {
            fs.observe_detailed(&key, &slice(1_500, 20));
        }
        assert!(fs.try_extrapolate(&key, 1_000).is_some());
        // The job changed phase: IPC halves.
        let ev = fs.observe_detailed(&key, &slice(600, 150));
        assert!(matches!(ev, Some(FastSimEvent::Fallback { .. })), "{ev:?}");
        assert_eq!(fs.counters().fallbacks, 1);
        assert!(
            fs.try_extrapolate(&key, 1_000).is_none(),
            "fallback must force full detail"
        );
        // The new phase can lock again after a fresh stable window.
        for _ in 0..3 {
            fs.observe_detailed(&key, &slice(600, 150));
        }
        assert!(fs.try_extrapolate(&key, 1_000).is_some());
        assert_eq!(fs.counters().phase_locks, 2);
    }

    #[test]
    fn invalidate_drops_all_phases() {
        let mut fs = FastSim::new(stable_policy());
        let key = tuple_key([7u64]);
        for _ in 0..4 {
            fs.observe_detailed(&key, &slice(1_500, 20));
        }
        assert!(fs.try_extrapolate(&key, 1_000).is_some());
        fs.invalidate();
        assert!(fs.try_extrapolate(&key, 1_000).is_none());
    }

    #[test]
    fn distinct_tuples_track_distinct_phases() {
        let mut fs = FastSim::new(stable_policy());
        let a = tuple_key([1u64, 2]);
        let b = tuple_key([3u64, 4]);
        for _ in 0..4 {
            fs.observe_detailed(&a, &slice(1_500, 20));
        }
        assert!(fs.try_extrapolate(&a, 1_000).is_some());
        assert!(fs.try_extrapolate(&b, 1_000).is_none(), "b never observed");
    }

    #[test]
    fn tuple_key_is_order_insensitive() {
        assert_eq!(tuple_key([3u64, 1, 2]), tuple_key([2u64, 3, 1]));
    }

    #[test]
    fn synthesized_counters_preserve_conservation() {
        // A window of unequal slices scaled to an odd cycle count must keep
        // committed ≤ fetched and misses ≤ refs (floor scaling is monotone).
        let window = vec![slice(1_500, 20), slice(1_400, 30), slice(1_450, 25)];
        let s = synthesize(&window, 777);
        let t = &s.threads[0];
        assert!(t.committed <= t.fetched);
        assert!(t.dl1_misses <= t.dl1_refs);
        assert!(s.cache.dl1_misses <= s.cache.dl1_refs);
        assert_eq!(s.cycles, 777);
        // Deterministic: same inputs, same bytes.
        assert_eq!(s, synthesize(&window, 777));
    }

    #[test]
    fn extrapolated_fraction_math() {
        let c = FastSimCounters {
            detailed_cycles: 25,
            extrapolated_cycles: 75,
            ..Default::default()
        };
        assert!((c.extrapolated_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(FastSimCounters::default().extrapolated_fraction(), 0.0);
    }

    #[test]
    fn policy_serde_round_trip() {
        let p = FastSimPolicy::with_threshold(0.07);
        let j = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<FastSimPolicy>(&j).unwrap(), p);
        assert!(p.describe().contains("threshold=0.07"));
    }

    #[test]
    #[should_panic(expected = "bad fast-sim policy")]
    fn zero_threshold_rejected() {
        let _ = FastSim::new(FastSimPolicy {
            stability_threshold: 0.0,
            ..Default::default()
        });
    }
}

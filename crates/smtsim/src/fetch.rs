//! ICOUNT fetch-thread selection.
//!
//! The fetch policy is ICOUNT.2.8 (Tullsen et al., ISCA '96): each cycle,
//! fetch up to 8 instructions from up to 2 threads, giving priority to the
//! threads with the fewest instructions in the pre-issue stages of the
//! pipeline (decode, rename, and the instruction queues). ICOUNT
//! self-balances: threads that clog the queues lose fetch priority, and
//! threads that move instructions through quickly get more of the front end.

/// A fetch candidate: a context eligible to fetch this cycle.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FetchCandidate {
    /// Hardware context index.
    pub ctx: usize,
    /// Instructions this context has in the pre-issue stages.
    pub icount: usize,
    /// Unresolved (in-flight) branches (for BRCOUNT).
    pub brcount: usize,
    /// Outstanding data-cache misses (for MISSCOUNT).
    pub misscount: usize,
}

/// Orders eligible contexts by the ICOUNT priority (fewest pre-issue
/// instructions first, context index as the deterministic tie-break).
///
/// The returned vector is the *priority order*; the fetch stage walks it,
/// taking instructions from at most `fetch_threads` contexts that actually
/// deliver instructions.
///
/// ```
/// use smtsim::fetch::{icount_priority, FetchCandidate};
/// let order = icount_priority(&[
///     FetchCandidate { ctx: 0, icount: 9, ..Default::default() },
///     FetchCandidate { ctx: 1, icount: 2, ..Default::default() },
///     FetchCandidate { ctx: 2, icount: 2, ..Default::default() },
/// ]);
/// assert_eq!(order, vec![1, 2, 0]);
/// ```
pub fn icount_priority(candidates: &[FetchCandidate]) -> Vec<usize> {
    let mut order: Vec<&FetchCandidate> = candidates.iter().collect();
    order.sort_by_key(|c| (c.icount, c.ctx));
    order.into_iter().map(|c| c.ctx).collect()
}

/// Orders eligible contexts round-robin: rotate priority by the cycle count,
/// ignoring pipeline occupancy.
///
/// ```
/// use smtsim::fetch::{round_robin_priority, FetchCandidate};
/// let cands = [
///     FetchCandidate { ctx: 0, icount: 9, ..Default::default() },
///     FetchCandidate { ctx: 1, icount: 2, ..Default::default() },
///     FetchCandidate { ctx: 2, icount: 5, ..Default::default() },
/// ];
/// assert_eq!(round_robin_priority(&cands, 1), vec![1, 2, 0]);
/// ```
pub fn round_robin_priority(candidates: &[FetchCandidate], cycle: u64) -> Vec<usize> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let n = candidates.len();
    let start = (cycle as usize) % n;
    (0..n).map(|k| candidates[(start + k) % n].ctx).collect()
}

/// Orders eligible contexts by unresolved-branch count (BRCOUNT), breaking
/// ties by ICOUNT then context index.
pub fn brcount_priority(candidates: &[FetchCandidate]) -> Vec<usize> {
    let mut order: Vec<&FetchCandidate> = candidates.iter().collect();
    order.sort_by_key(|c| (c.brcount, c.icount, c.ctx));
    order.into_iter().map(|c| c.ctx).collect()
}

/// Orders eligible contexts by outstanding D-cache misses (MISSCOUNT),
/// breaking ties by ICOUNT then context index.
pub fn misscount_priority(candidates: &[FetchCandidate]) -> Vec<usize> {
    let mut order: Vec<&FetchCandidate> = candidates.iter().collect();
    order.sort_by_key(|c| (c.misscount, c.icount, c.ctx));
    order.into_iter().map(|c| c.ctx).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_icount_first() {
        let order = icount_priority(&[
            FetchCandidate {
                ctx: 0,
                icount: 5,
                ..Default::default()
            },
            FetchCandidate {
                ctx: 1,
                icount: 0,
                ..Default::default()
            },
            FetchCandidate {
                ctx: 2,
                icount: 3,
                ..Default::default()
            },
        ]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_context_index() {
        let order = icount_priority(&[
            FetchCandidate {
                ctx: 3,
                icount: 1,
                ..Default::default()
            },
            FetchCandidate {
                ctx: 1,
                icount: 1,
                ..Default::default()
            },
        ]);
        assert_eq!(order, vec![1, 3]);
    }

    #[test]
    fn empty_is_empty() {
        assert!(icount_priority(&[]).is_empty());
        assert!(round_robin_priority(&[], 3).is_empty());
    }

    #[test]
    fn brcount_prefers_fewest_unresolved_branches() {
        let order = brcount_priority(&[
            FetchCandidate {
                ctx: 0,
                icount: 0,
                brcount: 3,
                misscount: 0,
            },
            FetchCandidate {
                ctx: 1,
                icount: 9,
                brcount: 0,
                misscount: 0,
            },
        ]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn misscount_prefers_fewest_outstanding_misses() {
        let order = misscount_priority(&[
            FetchCandidate {
                ctx: 0,
                icount: 0,
                brcount: 0,
                misscount: 2,
            },
            FetchCandidate {
                ctx: 1,
                icount: 5,
                brcount: 0,
                misscount: 0,
            },
            FetchCandidate {
                ctx: 2,
                icount: 1,
                brcount: 0,
                misscount: 0,
            },
        ]);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn round_robin_rotates_with_cycle() {
        let cands = [
            FetchCandidate {
                ctx: 0,
                icount: 0,
                ..Default::default()
            },
            FetchCandidate {
                ctx: 1,
                icount: 0,
                ..Default::default()
            },
            FetchCandidate {
                ctx: 2,
                icount: 0,
                ..Default::default()
            },
        ];
        assert_eq!(round_robin_priority(&cands, 0), vec![0, 1, 2]);
        assert_eq!(round_robin_priority(&cands, 1), vec![1, 2, 0]);
        assert_eq!(round_robin_priority(&cands, 5), vec![2, 0, 1]);
    }
}

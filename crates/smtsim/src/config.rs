//! Machine configuration: resource sizes, latencies, cache geometry.
//!
//! The default configuration, [`MachineConfig::alpha21264_like`], follows the
//! paper's description of SMTSIM: "We model 21264 instruction latencies,
//! functional units (fully pipelined), sizes of instruction queues, sizes and
//! associativities of caches, and TLB capacity."

use serde::{Deserialize, Serialize};

/// Execution latencies per instruction class, in cycles.
///
/// Memory instructions additionally pay the cache/TLB access latency computed
/// by the memory hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Latencies {
    /// Integer ALU operations.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// FP add/subtract.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Cycles an FP divide occupies its unit (divide is not pipelined on the
    /// 21264; this is the initiation interval).
    pub fp_div_occupancy: u64,
    /// Store (address generation; data retires via the write buffer).
    pub store: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        // Alpha 21264-like latencies.
        Latencies {
            int_alu: 1,
            int_mul: 7,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 12,
            fp_div_occupancy: 12,
            store: 1,
            branch: 1,
        }
    }
}

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total size in bytes. Must be a power of two.
    pub size_bytes: u64,
    /// Line size in bytes. Must be a power of two.
    pub line_bytes: u64,
    /// Associativity (ways per set). Must divide `size_bytes / line_bytes`.
    pub assoc: usize,
    /// Hit latency in cycles (cost added to a reference serviced here).
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (non-power-of-two sizes or an
    /// associativity that does not divide the line count).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = (self.size_bytes / self.line_bytes) as usize;
        assert!(
            self.assoc > 0 && lines.is_multiple_of(self.assoc),
            "associativity must divide line count"
        );
        lines / self.assoc
    }
}

/// How the fetch stage chooses which threads to fetch from each cycle.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// ICOUNT (Tullsen et al., ISCA '96): prefer the threads with the fewest
    /// instructions in the pre-issue pipeline stages. Self-balancing; the
    /// policy the paper's simulator uses.
    #[default]
    Icount,
    /// Round-robin: rotate fetch priority among threads regardless of their
    /// pipeline occupancy. The classic baseline ICOUNT was shown to beat.
    RoundRobin,
    /// BRCOUNT (Tullsen et al., ISCA '96): prefer the threads with the
    /// fewest unresolved branches in flight (least likely to be fetching a
    /// wrong path).
    Brcount,
    /// MISSCOUNT (Tullsen et al., ISCA '96): prefer the threads with the
    /// fewest outstanding data-cache misses (least likely to clog the
    /// queues with unready instructions).
    Misscount,
}

/// Branch predictor configuration (shared gshare tables, per-thread history).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// log2 of the number of 2-bit counters in the shared pattern table.
    pub table_bits: u32,
    /// Bits of per-thread global history XORed into the index.
    pub history_bits: u32,
    /// Cycles of fetch stall charged to a thread on a misprediction, on top of
    /// waiting for the branch to resolve.
    pub mispredict_penalty: u64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            table_bits: 12,
            history_bits: 8,
            mispredict_penalty: 7,
        }
    }
}

/// Full machine description.
///
/// Construct with [`MachineConfig::alpha21264_like`] and adjust fields as
/// needed; all fields are public because this is passive configuration data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of hardware contexts (the SMT level; the paper uses 2, 3, 4, 6).
    pub contexts: usize,
    /// Maximum instructions fetched per cycle (8 for ICOUNT.2.8).
    pub fetch_width: usize,
    /// Maximum threads fetched from per cycle (2 for ICOUNT.2.8).
    pub fetch_threads: usize,
    /// Fetch-priority policy.
    pub fetch_policy: FetchPolicy,
    /// Maximum instructions renamed/dispatched per cycle.
    pub dispatch_width: usize,
    /// Maximum instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Front-end depth: cycles between fetch and dispatch eligibility.
    pub frontend_delay: u64,
    /// Entries in the shared integer instruction queue.
    pub int_queue: usize,
    /// Entries in the shared floating-point instruction queue.
    pub fp_queue: usize,
    /// Shared integer renaming registers (beyond architectural state).
    pub int_regs: usize,
    /// Shared floating-point renaming registers.
    pub fp_regs: usize,
    /// Integer functional units.
    pub int_units: usize,
    /// Floating-point functional units.
    pub fp_units: usize,
    /// Load/store ports.
    pub ls_ports: usize,
    /// Per-thread cap on in-flight (fetched, not yet completed) instructions.
    pub max_inflight_per_thread: usize,
    /// Execution latencies.
    pub lat: Latencies,
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency (cycles) for L2 misses.
    pub mem_latency: u64,
    /// Instruction TLB entries (fully associative).
    pub itlb_entries: usize,
    /// Data TLB entries (fully associative).
    pub dtlb_entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Cycles charged for a TLB miss (software refill on Alpha).
    pub tlb_miss_penalty: u64,
    /// Branch predictor configuration.
    pub branch: BranchConfig,
}

impl MachineConfig {
    /// The paper's processor: an out-of-order core based on the Compaq Alpha
    /// 21264 with `contexts` hardware contexts.
    ///
    /// Resource sizes follow the 21264 and the SMTSIM literature: 4 integer
    /// units, 2 floating-point units, 2 load/store ports, a 20-entry integer
    /// queue, a 15-entry floating-point queue, 100 + 100 renaming registers,
    /// 64 KB 2-way L1 caches, a 1 MB direct-mapped L2, and 128-entry TLBs.
    ///
    /// # Panics
    /// Panics if `contexts == 0`.
    pub fn alpha21264_like(contexts: usize) -> Self {
        assert!(
            contexts > 0,
            "a processor needs at least one hardware context"
        );
        MachineConfig {
            contexts,
            fetch_width: 8,
            fetch_threads: 2,
            fetch_policy: FetchPolicy::Icount,
            dispatch_width: 8,
            issue_width: 8,
            frontend_delay: 4,
            int_queue: 20,
            fp_queue: 15,
            int_regs: 100,
            fp_regs: 100,
            int_units: 4,
            fp_units: 2,
            ls_ports: 2,
            max_inflight_per_thread: 64,
            lat: Latencies::default(),
            icache: CacheConfig {
                size_bytes: 64 << 10,
                line_bytes: 64,
                assoc: 2,
                hit_latency: 0,
            },
            dcache: CacheConfig {
                size_bytes: 64 << 10,
                line_bytes: 64,
                assoc: 2,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                line_bytes: 64,
                assoc: 1,
                hit_latency: 14,
            },
            mem_latency: 90,
            itlb_entries: 128,
            dtlb_entries: 128,
            page_bytes: 8 << 10,
            tlb_miss_penalty: 50,
            branch: BranchConfig::default(),
        }
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.contexts == 0 {
            return Err("contexts must be >= 1".into());
        }
        if self.fetch_threads == 0 || self.fetch_width == 0 {
            return Err("fetch width/threads must be >= 1".into());
        }
        if self.int_units == 0 || self.ls_ports == 0 {
            return Err("need at least one integer unit and one load/store port".into());
        }
        if !self.page_bytes.is_power_of_two() {
            return Err("page size must be a power of two".into());
        }
        for (name, c) in [
            ("icache", &self.icache),
            ("dcache", &self.dcache),
            ("l2", &self.l2),
        ] {
            if !c.size_bytes.is_power_of_two() || !c.line_bytes.is_power_of_two() {
                return Err(format!("{name}: sizes must be powers of two"));
            }
            let lines = (c.size_bytes / c.line_bytes) as usize;
            if c.assoc == 0 || !lines.is_multiple_of(c.assoc) {
                return Err(format!("{name}: associativity must divide line count"));
            }
        }
        if self.max_inflight_per_thread == 0 {
            return Err("max_inflight_per_thread must be >= 1".into());
        }
        Ok(())
    }

    /// A content hash of the configuration that is stable across processes,
    /// platforms, and reruns (unlike [`std::hash::Hash`] with the std
    /// `RandomState`, which is seeded per process).
    ///
    /// Every field participates, in declaration order, so two configurations
    /// hash equal exactly when they would build identical processors. The
    /// evaluation-result cache uses this as the machine component of its
    /// keys; adding a field to `MachineConfig` changes the hash of every
    /// configuration, which conservatively invalidates old cache entries.
    pub fn stable_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.u64(self.contexts as u64);
        h.u64(self.fetch_width as u64);
        h.u64(self.fetch_threads as u64);
        h.u64(match self.fetch_policy {
            FetchPolicy::Icount => 0,
            FetchPolicy::RoundRobin => 1,
            FetchPolicy::Brcount => 2,
            FetchPolicy::Misscount => 3,
        });
        h.u64(self.dispatch_width as u64);
        h.u64(self.issue_width as u64);
        h.u64(self.frontend_delay);
        h.u64(self.int_queue as u64);
        h.u64(self.fp_queue as u64);
        h.u64(self.int_regs as u64);
        h.u64(self.fp_regs as u64);
        h.u64(self.int_units as u64);
        h.u64(self.fp_units as u64);
        h.u64(self.ls_ports as u64);
        h.u64(self.max_inflight_per_thread as u64);
        for lat in [
            self.lat.int_alu,
            self.lat.int_mul,
            self.lat.fp_add,
            self.lat.fp_mul,
            self.lat.fp_div,
            self.lat.fp_div_occupancy,
            self.lat.store,
            self.lat.branch,
        ] {
            h.u64(lat);
        }
        for c in [&self.icache, &self.dcache, &self.l2] {
            h.u64(c.size_bytes);
            h.u64(c.line_bytes);
            h.u64(c.assoc as u64);
            h.u64(c.hit_latency);
        }
        h.u64(self.mem_latency);
        h.u64(self.itlb_entries as u64);
        h.u64(self.dtlb_entries as u64);
        h.u64(self.page_bytes);
        h.u64(self.tlb_miss_penalty);
        h.u64(self.branch.table_bits as u64);
        h.u64(self.branch.history_bits as u64);
        h.u64(self.branch.mispredict_penalty);
        h.finish()
    }

    /// The largest completion latency any single instruction can incur. Used
    /// to size the completion wheel.
    pub(crate) fn max_latency(&self) -> u64 {
        let exec = [
            self.lat.int_alu,
            self.lat.int_mul,
            self.lat.fp_add,
            self.lat.fp_mul,
            self.lat.fp_div,
            self.lat.store,
            self.lat.branch,
        ]
        .into_iter()
        .max()
        .unwrap_or(1);
        let mem = self.dcache.hit_latency
            + self.l2.hit_latency
            + self.mem_latency
            + self.tlb_miss_penalty;
        exec.max(mem) + 2
    }
}

impl Default for MachineConfig {
    /// The paper's baseline machine at SMT level 2.
    fn default() -> Self {
        MachineConfig::alpha21264_like(2)
    }
}

/// Order-sensitive 64-bit FNV-1a accumulator backing
/// [`MachineConfig::stable_hash`]: no per-process seed, no platform
/// dependence (values are folded in as little-endian bytes).
struct StableHasher(u64);

impl StableHasher {
    fn new() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        for n in 1..=8 {
            MachineConfig::alpha21264_like(n).validate().unwrap();
        }
    }

    #[test]
    fn num_sets_math() {
        let c = CacheConfig {
            size_bytes: 64 << 10,
            line_bytes: 64,
            assoc: 2,
            hit_latency: 1,
        };
        assert_eq!(c.num_sets(), 512);
        let dm = CacheConfig {
            size_bytes: 1 << 20,
            line_bytes: 64,
            assoc: 1,
            hit_latency: 1,
        };
        assert_eq!(dm.num_sets(), 16384);
    }

    #[test]
    #[should_panic(expected = "at least one hardware context")]
    fn zero_contexts_rejected() {
        let _ = MachineConfig::alpha21264_like(0);
    }

    #[test]
    fn validate_catches_bad_cache() {
        let mut cfg = MachineConfig::default();
        cfg.dcache.assoc = 3; // does not divide 1024 lines
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_page() {
        let cfg = MachineConfig {
            page_bytes: 3000,
            ..MachineConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn max_latency_covers_memory_path() {
        let cfg = MachineConfig::default();
        assert!(cfg.max_latency() >= cfg.mem_latency);
    }

    #[test]
    fn stable_hash_is_deterministic_and_field_sensitive() {
        let base = MachineConfig::alpha21264_like(3);
        assert_eq!(base.stable_hash(), base.stable_hash());
        assert_eq!(
            base.stable_hash(),
            MachineConfig::alpha21264_like(3).stable_hash()
        );
        // Every kind of field moves the hash: a structural size, a nested
        // latency, a cache geometry, the fetch policy discriminant.
        let mut distinct = vec![base.stable_hash()];
        let mut m = base.clone();
        m.contexts = 4;
        distinct.push(m.stable_hash());
        let mut m = base.clone();
        m.lat.fp_div = 13;
        distinct.push(m.stable_hash());
        let mut m = base.clone();
        m.dcache.assoc = 4;
        distinct.push(m.stable_hash());
        let mut m = base.clone();
        m.fetch_policy = FetchPolicy::RoundRobin;
        distinct.push(m.stable_hash());
        let unique: std::collections::HashSet<u64> = distinct.iter().copied().collect();
        assert_eq!(unique.len(), distinct.len(), "{distinct:?}");
    }
}

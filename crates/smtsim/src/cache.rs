//! Set-associative caches with true-LRU replacement, and the shared
//! L1I/L1D/L2 hierarchy.
//!
//! All levels are physically shared among hardware contexts: distinct jobs
//! occupy (and evict) the same sets, which is one of the channels through
//! which coscheduled jobs interfere.

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// One set-associative cache level with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[s]` holds up to `assoc` tags ordered most- to least-recently used.
    sets: Vec<Vec<u64>>,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (see [`CacheConfig::num_sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.assoc); num_sets],
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: num_sets as u64 - 1,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency of this level.
    #[inline]
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Accesses `addr`; returns `true` on hit. On miss the line is filled
    /// (allocate-on-miss for both reads and writes), evicting the LRU line.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            if set.len() == self.cfg.assoc {
                set.pop();
            }
            set.insert(0, tag);
            false
        }
    }

    /// Looks up `addr` without updating replacement state or filling.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].contains(&tag)
    }

    /// Invalidates all lines (used for cold-start experiments).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.cfg.assoc
    }

    /// Resident lines belonging to the address-space tag `stream` (the upper
    /// bits of the address, see [`crate::trace::StreamId::tag_addr`]). Useful
    /// for inspecting how coscheduled jobs partition a shared cache.
    pub fn resident_lines_of(&self, stream: u32) -> usize {
        // Tags store `addr >> (line_shift + set_bits)`; the stream id sits at
        // bit 40 of the address.
        let shift =
            crate::trace::StreamId::ADDR_BITS - self.line_shift - self.set_mask.count_ones();
        self.sets
            .iter()
            .flat_map(|set| set.iter())
            .filter(|&&tag| (tag >> shift) as u32 == stream)
            .count()
    }
}

/// Per-level reference/miss counts for one timeslice.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// L1 data cache references.
    pub dl1_refs: u64,
    /// L1 data cache misses.
    pub dl1_misses: u64,
    /// L1 instruction cache references (one per fetched line, not per instr).
    pub il1_refs: u64,
    /// L1 instruction cache misses.
    pub il1_misses: u64,
    /// L2 references (L1 misses of either kind).
    pub l2_refs: u64,
    /// L2 misses (references that went to memory).
    pub l2_misses: u64,
}

impl CacheStats {
    /// L1 data-cache hit rate in percent; 100.0 when there were no references.
    pub fn dl1_hit_pct(&self) -> f64 {
        crate::stats::hit_pct(self.dl1_refs, self.dl1_misses)
    }

    /// Accumulates another timeslice's counts into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.dl1_refs += other.dl1_refs;
        self.dl1_misses += other.dl1_misses;
        self.il1_refs += other.il1_refs;
        self.il1_misses += other.il1_misses;
        self.l2_refs += other.l2_refs;
        self.l2_misses += other.l2_misses;
    }
}

/// The shared L1I + L1D + unified L2 hierarchy.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    mem_latency: u64,
    /// Counters for the current timeslice; drained by the pipeline.
    pub stats: CacheStats,
}

impl CacheHierarchy {
    /// Builds the hierarchy from the three level configurations.
    pub fn new(
        icache: CacheConfig,
        dcache: CacheConfig,
        l2: CacheConfig,
        mem_latency: u64,
    ) -> Self {
        CacheHierarchy {
            il1: Cache::new(icache),
            dl1: Cache::new(dcache),
            l2: Cache::new(l2),
            mem_latency,
            stats: CacheStats::default(),
        }
    }

    /// Data access (load or store): returns the access latency in cycles and
    /// updates hit/miss counters. Misses propagate to L2 and memory.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        self.stats.dl1_refs += 1;
        if self.dl1.access(addr) {
            return self.dl1.hit_latency();
        }
        self.stats.dl1_misses += 1;
        self.stats.l2_refs += 1;
        if self.l2.access(addr) {
            return self.dl1.hit_latency() + self.l2.hit_latency();
        }
        self.stats.l2_misses += 1;
        self.dl1.hit_latency() + self.l2.hit_latency() + self.mem_latency
    }

    /// Instruction-line access: returns the extra fetch latency (0 on hit).
    pub fn access_instr(&mut self, addr: u64) -> u64 {
        self.stats.il1_refs += 1;
        if self.il1.access(addr) {
            return self.il1.hit_latency();
        }
        self.stats.il1_misses += 1;
        self.stats.l2_refs += 1;
        if self.l2.access(addr) {
            return self.il1.hit_latency() + self.l2.hit_latency();
        }
        self.stats.l2_misses += 1;
        self.il1.hit_latency() + self.l2.hit_latency() + self.mem_latency
    }

    /// Takes and resets the per-timeslice counters.
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Invalidates every level (cold start).
    pub fn flush(&mut self) {
        self.il1.flush();
        self.dl1.flush();
        self.l2.flush();
    }

    /// The L1 data cache (for inspection in tests/experiments).
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// The unified L2 (for inspection in tests/experiments).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Line size of the instruction cache in bytes.
    pub fn il1_line_bytes(&self) -> u64 {
        self.il1.config().line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            hit_latency: 3,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1030)); // same line (64B)
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = 4 sets * 64B = 256B).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.access(0x40);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny();
        for i in 0..1000 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= c.capacity_lines());
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn residency_by_stream() {
        use crate::trace::StreamId;
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64 << 10,
            line_bytes: 64,
            assoc: 2,
            hit_latency: 3,
        });
        for i in 0..10u64 {
            c.access(StreamId(1).tag_addr(i * 64));
        }
        for i in 0..4u64 {
            c.access(StreamId(2).tag_addr(i * 64));
        }
        assert_eq!(c.resident_lines_of(1), 10);
        assert_eq!(c.resident_lines_of(2), 4);
        assert_eq!(c.resident_lines_of(3), 0);
    }

    #[test]
    fn hierarchy_latencies_escalate() {
        let mut h = CacheHierarchy::new(
            CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                assoc: 2,
                hit_latency: 0,
            },
            CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                assoc: 2,
                hit_latency: 3,
            },
            CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                assoc: 1,
                hit_latency: 14,
            },
            90,
        );
        let cold = h.access_data(0x5000);
        assert_eq!(cold, 3 + 14 + 90);
        let l1_hit = h.access_data(0x5000);
        assert_eq!(l1_hit, 3);
        assert_eq!(h.stats.dl1_refs, 2);
        assert_eq!(h.stats.dl1_misses, 1);
        assert_eq!(h.stats.l2_misses, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = CacheHierarchy::new(
            CacheConfig {
                size_bytes: 128,
                line_bytes: 64,
                assoc: 1,
                hit_latency: 0,
            },
            CacheConfig {
                size_bytes: 128,
                line_bytes: 64,
                assoc: 1,
                hit_latency: 3,
            },
            CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                assoc: 1,
                hit_latency: 14,
            },
            90,
        );
        h.access_data(0x0); // cold miss, fills L1 set 0 and L2
        h.access_data(0x80); // conflicts in tiny L1 (2 sets), evicts 0x0 from L1
        let lat = h.access_data(0x0); // L1 miss, L2 hit
        assert_eq!(lat, 3 + 14);
    }

    #[test]
    fn stats_hit_pct() {
        let s = CacheStats {
            dl1_refs: 100,
            dl1_misses: 3,
            ..Default::default()
        };
        assert!((s.dl1_hit_pct() - 97.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().dl1_hit_pct(), 100.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats {
            dl1_refs: 10,
            dl1_misses: 1,
            ..Default::default()
        };
        let b = CacheStats {
            dl1_refs: 5,
            dl1_misses: 2,
            l2_refs: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dl1_refs, 15);
        assert_eq!(a.dl1_misses, 3);
        assert_eq!(a.l2_refs, 3);
    }
}

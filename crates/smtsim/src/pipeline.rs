//! The per-cycle out-of-order SMT pipeline engine.
//!
//! Stage order within a cycle (oldest work first, so producers wake
//! dependents with no artificial bubbles):
//!
//! 1. **Complete** — instructions whose latency expires this cycle commit,
//!    free their renaming registers, and (for branches) redirect the fetcher.
//! 2. **Issue** — ready instructions in the shared integer/FP queues are sent
//!    to functional units, oldest first, up to the issue width. A ready
//!    instruction that finds its unit pool exhausted records a conflict.
//! 3. **Dispatch** — decoded instructions claim a renaming register and a
//!    queue slot. A full queue or empty register pool records a conflict and
//!    stalls that thread (head-of-line).
//! 4. **Fetch** — ICOUNT.2.8 selects threads; instructions are pulled from
//!    their [`InstructionSource`]s through the I-cache/I-TLB and the shared
//!    branch predictor.
//!
//! The engine does not fetch wrong paths. A mispredicted branch instead halts
//! its thread's fetch from prediction until resolution plus the misprediction
//! penalty — the same front-end bubble, without needing to rewind a source.

use crate::branch::BranchPredictor;
use crate::cache::CacheHierarchy;
use crate::config::FetchPolicy;
use crate::config::MachineConfig;
use crate::context::{DepRing, NOT_DONE, RING};
use crate::counters::{ConflictCounters, Resource};
use crate::fetch::{
    brcount_priority, icount_priority, misscount_priority, round_robin_priority, FetchCandidate,
};
use crate::fu::{FuKind, FuPools};
use crate::observe::{Observer, StageOccupancy};
use crate::queue::{IssueQueue, QEntry, NO_DEP};
use crate::rename::RegPool;
use crate::stats::{ThreadStats, TimesliceStats};
use crate::tlb::Tlb;
use crate::trace::{Fetch, Instr, InstrClass, InstructionSource};
use std::collections::VecDeque;

/// Per-context decode-buffer capacity.
const DECODE_CAP: usize = 16;

/// Default cycle interval between stage-occupancy samples sent to a
/// registered [`Observer`].
pub const DEFAULT_OCCUPANCY_INTERVAL: u64 = 64;

#[derive(Clone)]
struct ContextState {
    /// Fetched, decoded instructions awaiting dispatch: `(eligible_at, instr)`.
    decode: VecDeque<(u64, Instr)>,
    /// An instruction pulled from the source but not yet accepted (its cache
    /// line missed); retried first when fetch resumes.
    pending: Option<Instr>,
    /// Fetch is stalled until this cycle (I-cache miss / mispredict redirect).
    fetch_stall_until: u64,
    /// A mispredicted branch is in flight; fetch halted until it resolves.
    branch_stall: bool,
    /// Source reported `Finished`.
    finished: bool,
    /// Instructions in pre-issue stages (decode + queues): the ICOUNT value.
    preissue: usize,
    /// Instructions fetched but not completed (window occupancy).
    inflight: usize,
    /// Instructions issued to functional units this timeslice (for the
    /// fetched >= issued >= committed conservation check).
    issued: u64,
    /// Branches fetched but not yet resolved (for BRCOUNT).
    unresolved_branches: usize,
    /// Loads in flight that missed the L1 D-cache (for MISSCOUNT).
    outstanding_misses: usize,
    /// Next dynamic sequence number (assigned at dispatch).
    seq: u64,
    /// Dependence bookkeeping for recent sequence numbers.
    ring: DepRing,
    /// Last I-cache line fetched (sequential fetch within a line is free).
    last_line: u64,
    stats: ThreadStats,
}

impl ContextState {
    fn new() -> Self {
        ContextState {
            decode: VecDeque::with_capacity(DECODE_CAP),
            pending: None,
            fetch_stall_until: 0,
            branch_stall: false,
            finished: false,
            preissue: 0,
            inflight: 0,
            issued: 0,
            unresolved_branches: 0,
            outstanding_misses: 0,
            seq: 0,
            ring: DepRing::new(),
            last_line: u64::MAX,
            stats: ThreadStats::default(),
        }
    }

    /// Records that `seq` will complete at `cycle`.
    #[inline]
    fn set_done(&mut self, seq: u64, cycle: u64) {
        self.ring.set_done(seq, cycle);
    }

    /// Marks `seq` dispatched-but-not-issued.
    #[inline]
    fn set_pending(&mut self, seq: u64) {
        self.ring.set_pending(seq);
    }

    /// The cycle at which producer `seq` completes ([`NOT_DONE`] if it has not
    /// issued). Sequence numbers older than the ring window are long complete.
    #[inline]
    fn done_at(&self, seq: u64) -> u64 {
        self.ring.done_at(seq)
    }
}

#[derive(Copy, Clone, Debug)]
struct CompleteEvent {
    ctx: u8,
    class: InstrClass,
    mispredicted: bool,
    /// The instruction was a load that missed the L1 D-cache.
    dcache_miss: bool,
}

/// A ready-instruction issue decision collected during the queue scan.
struct IssuePick {
    pos: usize,
    entry: QEntry,
}

/// The cycle-level engine. Owns all microarchitectural state; the persistent
/// structures (caches, TLBs, branch-predictor tables) survive across
/// timeslices, so the memory system warms up across context switches.
pub struct Engine {
    cfg: MachineConfig,
    caches: CacheHierarchy,
    itlb: Tlb,
    dtlb: Tlb,
    bp: BranchPredictor,
    int_q: IssueQueue,
    fp_q: IssueQueue,
    int_regs: RegPool,
    fp_regs: RegPool,
    fu: FuPools,
    wheel: Vec<Vec<CompleteEvent>>,
    contexts: Vec<ContextState>,
    rr_cursor: usize,
    now: u64,
    conflicts: ConflictCounters,
    /// Per-cycle conflict flags, indexed like [`Resource::ALL`].
    cycle_flags: [bool; 7],
    /// Optional telemetry probe; `None` costs one branch per cycle.
    observer: Option<Box<dyn Observer>>,
    /// Cycles between stage-occupancy samples delivered to the observer.
    occupancy_interval: u64,
}

impl Engine {
    /// Builds an engine for the given machine.
    ///
    /// # Panics
    /// Panics if the configuration fails [`MachineConfig::validate`] or if the
    /// per-thread in-flight cap exceeds the dependence-ring size.
    pub fn new(cfg: MachineConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine configuration: {e}");
        }
        assert!(
            cfg.max_inflight_per_thread <= RING,
            "per-thread window larger than dependence ring"
        );
        let wheel_len = (cfg.max_latency() + cfg.lat.fp_div_occupancy + 2) as usize;
        Engine {
            caches: CacheHierarchy::new(cfg.icache, cfg.dcache, cfg.l2, cfg.mem_latency),
            itlb: Tlb::new(cfg.itlb_entries, cfg.page_bytes, cfg.tlb_miss_penalty),
            dtlb: Tlb::new(cfg.dtlb_entries, cfg.page_bytes, cfg.tlb_miss_penalty),
            bp: BranchPredictor::new(cfg.branch, cfg.contexts),
            int_q: IssueQueue::new(cfg.int_queue),
            fp_q: IssueQueue::new(cfg.fp_queue),
            int_regs: RegPool::new(cfg.int_regs),
            fp_regs: RegPool::new(cfg.fp_regs),
            fu: FuPools::new(cfg.int_units, cfg.fp_units, cfg.ls_ports),
            wheel: vec![Vec::new(); wheel_len],
            contexts: Vec::new(),
            rr_cursor: 0,
            now: 0,
            conflicts: ConflictCounters::default(),
            cycle_flags: [false; 7],
            observer: None,
            occupancy_interval: DEFAULT_OCCUPANCY_INTERVAL,
            cfg,
        }
    }

    /// Registers `observer` to receive pipeline events; replaces any
    /// previous observer.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Removes and drops the current observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Whether an observer is currently registered.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Sets the cycle interval between stage-occupancy samples.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn set_occupancy_interval(&mut self, interval: u64) {
        assert!(interval > 0, "occupancy interval must be non-zero");
        self.occupancy_interval = interval;
    }

    /// The configuration this engine models.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Invalidates caches and TLBs (cold-start experiments).
    pub fn flush_memory_state(&mut self) {
        self.caches.flush();
        self.itlb.flush();
        self.dtlb.flush();
    }

    /// Runs one timeslice: `sources[i]` executes on hardware context `i` for
    /// `cycles` cycles. Pipeline state is cold at entry (a context switch just
    /// happened); caches, TLBs, and branch-predictor tables stay warm from
    /// previous timeslices.
    ///
    /// # Panics
    /// Panics if more sources are supplied than the machine has contexts, or
    /// if no sources are supplied.
    pub fn run_timeslice(
        &mut self,
        sources: &mut [&mut dyn InstructionSource],
        cycles: u64,
    ) -> TimesliceStats {
        assert!(
            !sources.is_empty(),
            "run_timeslice requires at least one thread"
        );
        assert!(
            sources.len() <= self.cfg.contexts,
            "{} threads but only {} hardware contexts",
            sources.len(),
            self.cfg.contexts
        );

        // Cold pipeline at timeslice entry.
        self.contexts.clear();
        for (i, s) in sources.iter().enumerate() {
            let mut ctx = ContextState::new();
            ctx.stats.stream = s.id();
            self.contexts.push(ctx);
            self.bp.reset_history(i);
        }
        self.int_q.drain_all();
        self.fp_q.drain_all();
        self.int_regs.reset();
        self.fp_regs.reset();
        self.fu.reset();
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.now = 0;
        self.conflicts = ConflictCounters::default();

        if let Some(obs) = self.observer.as_mut() {
            obs.timeslice_start(sources.len(), cycles);
        }

        for _ in 0..cycles {
            self.cycle_flags = [false; 7];
            self.complete_stage();
            self.issue_stage();
            self.dispatch_stage();
            self.fetch_stage(sources);
            for (i, &flag) in self.cycle_flags.iter().enumerate() {
                if flag {
                    *self.conflicts.get_mut(Resource::ALL[i]) += 1;
                }
            }
            if self.observer.is_some() {
                self.observe_cycle();
            }
            #[cfg(feature = "check-invariants")]
            self.check_cycle_invariants();
            self.now += 1;
            self.rr_cursor = (self.rr_cursor + 1) % self.contexts.len();
        }

        let stats = TimesliceStats {
            cycles,
            threads: self.contexts.iter().map(|c| c.stats.clone()).collect(),
            conflicts: self.conflicts,
            cache: self.caches.take_stats(),
            dtlb: self.dtlb.take_stats(),
            itlb: self.itlb.take_stats(),
            branches: self.bp.take_stats(),
        };
        if let Some(obs) = self.observer.as_mut() {
            obs.timeslice_end(&stats);
        }
        #[cfg(feature = "check-invariants")]
        self.assert_timeslice_invariants(&stats);
        stats
    }

    /// Per-cycle structural checks (`check-invariants` builds only): shared
    /// queues and register pools within capacity, per-thread windows within
    /// the configured cap.
    #[cfg(feature = "check-invariants")]
    fn check_cycle_invariants(&self) {
        use crate::invariants::InvariantViolation;
        let fail = |thread: Option<usize>, counter: &'static str, detail: String| -> ! {
            panic!(
                "{}",
                InvariantViolation {
                    cycle: self.now,
                    thread,
                    counter,
                    detail,
                }
            )
        };
        for (name, occ, cap) in [
            ("int_queue", self.int_q.len(), self.cfg.int_queue),
            ("fp_queue", self.fp_q.len(), self.cfg.fp_queue),
            ("int_regs", self.int_regs.in_use(), self.cfg.int_regs),
            ("fp_regs", self.fp_regs.in_use(), self.cfg.fp_regs),
        ] {
            if occ > cap {
                fail(
                    None,
                    name,
                    format!("occupancy ({occ}) exceeds configured capacity ({cap})"),
                );
            }
        }
        for (i, c) in self.contexts.iter().enumerate() {
            if c.inflight > self.cfg.max_inflight_per_thread {
                fail(
                    Some(i),
                    "inflight",
                    format!(
                        "in-flight instructions ({}) exceed the per-thread window ({})",
                        c.inflight, self.cfg.max_inflight_per_thread
                    ),
                );
            }
            if c.decode.len() > DECODE_CAP {
                fail(
                    Some(i),
                    "decode",
                    format!(
                        "decode buffer ({}) exceeds its capacity ({DECODE_CAP})",
                        c.decode.len()
                    ),
                );
            }
        }
    }

    /// Per-timeslice conservation checks (`check-invariants` builds only):
    /// the engine-internal fetched >= issued >= committed chain per thread,
    /// then every law of [`crate::invariants::check_timeslice`].
    #[cfg(feature = "check-invariants")]
    fn assert_timeslice_invariants(&self, stats: &TimesliceStats) {
        use crate::invariants::InvariantViolation;
        for (i, c) in self.contexts.iter().enumerate() {
            let (fetched, issued, committed) = (c.stats.fetched, c.issued, c.stats.committed);
            if committed > issued || issued > fetched {
                panic!(
                    "{}",
                    InvariantViolation {
                        cycle: stats.cycles,
                        thread: Some(i),
                        counter: "issued",
                        detail: format!(
                            "conservation fetched >= issued >= committed broken: \
                             fetched {fetched}, issued {issued}, committed {committed}"
                        ),
                    }
                );
            }
        }
        crate::invariants::assert_timeslice(stats);
    }

    /// Delivers this cycle's events to the registered observer: one
    /// `conflict_cycle` per flagged resource, plus a [`StageOccupancy`]
    /// snapshot on sampled cycles. Kept out of line so the common
    /// no-observer path in the cycle loop stays a single branch.
    #[cold]
    fn observe_cycle(&mut self) {
        let occupancy = self
            .now
            .is_multiple_of(self.occupancy_interval)
            .then(|| StageOccupancy {
                cycle: self.now,
                decode: self.contexts.iter().map(|c| c.decode.len()).sum(),
                int_queue: self.int_q.len(),
                fp_queue: self.fp_q.len(),
                int_regs_in_use: self.int_regs.in_use(),
                fp_regs_in_use: self.fp_regs.in_use(),
                inflight: self.contexts.iter().map(|c| c.inflight).sum(),
            });
        let now = self.now;
        let flags = self.cycle_flags;
        let obs = self.observer.as_mut().expect("checked by caller");
        for (i, &flag) in flags.iter().enumerate() {
            if flag {
                obs.conflict_cycle(now, Resource::ALL[i]);
            }
        }
        if let Some(occ) = occupancy {
            obs.stage_occupancy(&occ);
        }
    }

    #[inline]
    fn flag(&mut self, r: Resource) {
        let idx = Resource::ALL
            .iter()
            .position(|&x| x == r)
            .expect("resource in ALL");
        self.cycle_flags[idx] = true;
    }

    fn complete_stage(&mut self) {
        let slot = (self.now % self.wheel.len() as u64) as usize;
        let events = std::mem::take(&mut self.wheel[slot]);
        for ev in events {
            let penalty_restart = self.now + 1 + self.bp.mispredict_penalty();
            let ctx = &mut self.contexts[ev.ctx as usize];
            ctx.inflight -= 1;
            ctx.stats.committed += 1;
            let class_idx = InstrClass::ALL
                .iter()
                .position(|&c| c == ev.class)
                .expect("class in ALL");
            ctx.stats.class_counts[class_idx] += 1;
            if ev.class == InstrClass::Branch {
                ctx.unresolved_branches = ctx.unresolved_branches.saturating_sub(1);
                if ev.mispredicted {
                    ctx.branch_stall = false;
                    ctx.fetch_stall_until = ctx.fetch_stall_until.max(penalty_restart);
                }
            }
            if ev.dcache_miss {
                ctx.outstanding_misses = ctx.outstanding_misses.saturating_sub(1);
            }
            // Free the renaming register this instruction held.
            match ev.class {
                c if c.is_fp() => self.fp_regs.release(),
                InstrClass::Store | InstrClass::Branch => {}
                _ => self.int_regs.release(),
            }
        }
    }

    /// Scans one queue age-first, claiming functional units for ready
    /// entries. Returns the picks; sets conflict flags for units that turned
    /// ready instructions away.
    fn scan_queue(
        q: &IssueQueue,
        contexts: &[ContextState],
        fu: &mut FuPools,
        now: u64,
        fp_div_occupancy: u64,
        budget: &mut usize,
        unit_conflicts: &mut [bool; 3],
    ) -> Vec<IssuePick> {
        let mut picks = Vec::new();
        for (pos, e) in q.entries().iter().enumerate() {
            if *budget == 0 {
                break;
            }
            let ready = e.dep_seq == NO_DEP || {
                let done = contexts[e.ctx as usize].done_at(e.dep_seq);
                done != NOT_DONE && done <= now
            };
            if !ready {
                continue;
            }
            let occupancy = if e.class == InstrClass::FpDiv {
                fp_div_occupancy
            } else {
                1
            };
            if !fu.try_issue(e.class, now, occupancy) {
                let k = match FuKind::for_class(e.class) {
                    FuKind::Int => 0,
                    FuKind::Fp => 1,
                    FuKind::Ls => 2,
                };
                unit_conflicts[k] = true;
                continue;
            }
            *budget -= 1;
            picks.push(IssuePick { pos, entry: *e });
        }
        picks
    }

    fn issue_stage(&mut self) {
        let mut budget = self.cfg.issue_width;
        let mut unit_conflicts = [false; 3];
        let occ = self.cfg.lat.fp_div_occupancy;

        let int_picks = Self::scan_queue(
            &self.int_q,
            &self.contexts,
            &mut self.fu,
            self.now,
            occ,
            &mut budget,
            &mut unit_conflicts,
        );
        let positions: Vec<usize> = int_picks.iter().map(|p| p.pos).collect();
        self.int_q.remove_issued(&positions);
        for p in int_picks {
            self.start_execution(p.entry);
        }

        let fp_picks = Self::scan_queue(
            &self.fp_q,
            &self.contexts,
            &mut self.fu,
            self.now,
            occ,
            &mut budget,
            &mut unit_conflicts,
        );
        let positions: Vec<usize> = fp_picks.iter().map(|p| p.pos).collect();
        self.fp_q.remove_issued(&positions);
        for p in fp_picks {
            self.start_execution(p.entry);
        }

        if unit_conflicts[0] {
            self.flag(Resource::IntUnits);
        }
        if unit_conflicts[1] {
            self.flag(Resource::FpUnits);
        }
        if unit_conflicts[2] {
            self.flag(Resource::LsPorts);
        }
    }

    /// Computes the latency of an issued instruction (performing cache/TLB
    /// accesses for memory operations) and schedules its completion.
    fn start_execution(&mut self, e: QEntry) {
        let lat = self.cfg.lat;
        let mut dcache_miss = false;
        let latency = match e.class {
            InstrClass::IntAlu => lat.int_alu,
            InstrClass::IntMul => lat.int_mul,
            InstrClass::FpAdd => lat.fp_add,
            InstrClass::FpMul => lat.fp_mul,
            InstrClass::FpDiv => lat.fp_div,
            InstrClass::Branch => lat.branch,
            InstrClass::Load => {
                // The miss test must look at the cache latency alone: a DTLB
                // refill on an L1-hit load is not a data-cache miss.
                let tlb_lat = self.dtlb.access(e.addr);
                let mem_lat = self.caches.access_data(e.addr);
                dcache_miss = mem_lat > self.cfg.dcache.hit_latency;
                let t = &mut self.contexts[e.ctx as usize].stats;
                t.dl1_refs += 1;
                t.dl1_misses += u64::from(dcache_miss);
                tlb_lat + mem_lat
            }
            InstrClass::Store => {
                // Stores retire through the write buffer: the thread does not
                // wait on the cache, but the line is still brought in.
                let _ = self.dtlb.access(e.addr);
                let hit = self.caches.access_data(e.addr) <= self.cfg.dcache.hit_latency;
                let t = &mut self.contexts[e.ctx as usize].stats;
                t.dl1_refs += 1;
                t.dl1_misses += u64::from(!hit);
                lat.store
            }
        };
        let done = self.now + latency.max(1);
        let ctx = &mut self.contexts[e.ctx as usize];
        ctx.preissue -= 1;
        ctx.issued += 1;
        if dcache_miss {
            ctx.outstanding_misses += 1;
        }
        ctx.set_done(e.seq, done);
        let slot = (done % self.wheel.len() as u64) as usize;
        self.wheel[slot].push(CompleteEvent {
            ctx: e.ctx,
            class: e.class,
            mispredicted: e.mispredicted,
            dcache_miss,
        });
    }

    fn dispatch_stage(&mut self) {
        let n = self.contexts.len();
        let mut budget = self.cfg.dispatch_width;
        'ctx_loop: for k in 0..n {
            let ci = (self.rr_cursor + k) % n;
            // Head-of-line dispatch per context.
            loop {
                if budget == 0 {
                    break 'ctx_loop;
                }
                let Some(&(eligible_at, instr)) = self.contexts[ci].decode.front() else {
                    break;
                };
                if eligible_at > self.now {
                    break;
                }
                let is_fp = instr.class.is_fp();
                let q_full = if is_fp {
                    self.fp_q.is_full()
                } else {
                    self.int_q.is_full()
                };
                if q_full {
                    self.flag(if is_fp {
                        Resource::FpQueue
                    } else {
                        Resource::IntQueue
                    });
                    break;
                }
                // Stores and branches have no destination register.
                let needs_reg = !matches!(instr.class, InstrClass::Store | InstrClass::Branch);
                if needs_reg {
                    let ok = if is_fp {
                        self.fp_regs.try_alloc()
                    } else {
                        self.int_regs.try_alloc()
                    };
                    if !ok {
                        self.flag(if is_fp {
                            Resource::FpRegs
                        } else {
                            Resource::IntRegs
                        });
                        break;
                    }
                }
                let ctx = &mut self.contexts[ci];
                ctx.decode.pop_front();
                let seq = ctx.seq;
                ctx.seq += 1;
                let dep_seq = if instr.dep_dist == 0 || u64::from(instr.dep_dist) > seq {
                    NO_DEP
                } else {
                    seq - u64::from(instr.dep_dist)
                };
                ctx.set_pending(seq);
                let entry = QEntry {
                    ctx: ci as u8,
                    class: instr.class,
                    dep_seq,
                    addr: instr.addr,
                    seq,
                    // For branches, `taken` was repurposed at fetch to carry
                    // the misprediction flag.
                    mispredicted: instr.class == InstrClass::Branch && instr.taken,
                };
                if is_fp {
                    self.fp_q.push(entry);
                } else {
                    self.int_q.push(entry);
                }
                budget -= 1;
            }
        }
    }

    fn fetch_stage(&mut self, sources: &mut [&mut dyn InstructionSource]) {
        let mut cands: Vec<FetchCandidate> = Vec::with_capacity(self.contexts.len());
        for (i, c) in self.contexts.iter().enumerate() {
            let eligible = !c.finished
                && !c.branch_stall
                && c.fetch_stall_until <= self.now
                && c.inflight < self.cfg.max_inflight_per_thread
                && c.decode.len() < DECODE_CAP;
            if eligible {
                cands.push(FetchCandidate {
                    ctx: i,
                    icount: c.preissue,
                    brcount: c.unresolved_branches,
                    misscount: c.outstanding_misses,
                });
            }
        }
        let order = match self.cfg.fetch_policy {
            FetchPolicy::Icount => icount_priority(&cands),
            FetchPolicy::RoundRobin => round_robin_priority(&cands, self.now),
            FetchPolicy::Brcount => brcount_priority(&cands),
            FetchPolicy::Misscount => misscount_priority(&cands),
        };
        let mut budget = self.cfg.fetch_width;
        let mut threads_used = 0;
        for ci in order {
            if budget == 0 || threads_used >= self.cfg.fetch_threads {
                break;
            }
            if self.fetch_from(ci, &mut *sources[ci], &mut budget) > 0 {
                threads_used += 1;
            }
        }
    }

    /// Fetches up to `budget` instructions from context `ci`; returns how many
    /// were fetched.
    fn fetch_from(
        &mut self,
        ci: usize,
        source: &mut dyn InstructionSource,
        budget: &mut usize,
    ) -> usize {
        let mut fetched = 0;
        let line_bytes = self.caches.il1_line_bytes();
        while *budget > 0 {
            {
                let ctx = &self.contexts[ci];
                if ctx.inflight >= self.cfg.max_inflight_per_thread
                    || ctx.decode.len() >= DECODE_CAP
                {
                    break;
                }
            }
            let mut instr = match self.contexts[ci].pending.take() {
                Some(i) => i,
                None => match source.next_instr() {
                    Fetch::Instr(i) => i,
                    Fetch::Blocked => {
                        self.contexts[ci].stats.blocked_cycles += 1;
                        break;
                    }
                    Fetch::Finished => {
                        self.contexts[ci].finished = true;
                        break;
                    }
                },
            };
            // I-cache / I-TLB access on line crossing.
            let line = instr.pc / line_bytes;
            if line != self.contexts[ci].last_line {
                // Book the per-thread miss off the hierarchy counter delta:
                // the access latency is not a miss indicator (a nonzero L1I
                // hit latency would misclassify every hit as a miss).
                let il1_misses_before = self.caches.stats.il1_misses;
                let ic_lat = self.caches.access_instr(instr.pc);
                let icache_missed = self.caches.stats.il1_misses > il1_misses_before;
                let lat = self.itlb.access(instr.pc) + ic_lat;
                let ctx = &mut self.contexts[ci];
                ctx.stats.il1_refs += 1;
                ctx.stats.il1_misses += u64::from(icache_missed);
                ctx.last_line = line;
                if lat > 0 {
                    ctx.pending = Some(instr);
                    ctx.fetch_stall_until = self.now + lat;
                    break;
                }
            }
            // Branch prediction happens at fetch.
            let mut stop_after = false;
            if instr.class == InstrClass::Branch {
                let arch_taken = instr.taken;
                let mispredicted = self.bp.predict_and_update(ci, instr.pc, arch_taken);
                // Repurpose `taken` to carry the misprediction flag onward.
                instr.taken = mispredicted;
                self.contexts[ci].unresolved_branches += 1;
                if mispredicted {
                    self.contexts[ci].branch_stall = true;
                    stop_after = true;
                } else if arch_taken {
                    // Correctly-predicted taken branch: the fetch
                    // discontinuity ends this thread's fetching this cycle.
                    stop_after = true;
                }
            }
            let ctx = &mut self.contexts[ci];
            ctx.decode
                .push_back((self.now + self.cfg.frontend_delay, instr));
            ctx.stats.fetched += 1;
            ctx.preissue += 1;
            ctx.inflight += 1;
            fetched += 1;
            *budget -= 1;
            if stop_after {
                break;
            }
        }
        fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StreamId;

    /// Independent int ALU ops, sequential PCs.
    struct AluStream {
        pc: u64,
        id: StreamId,
    }
    impl InstructionSource for AluStream {
        fn next_instr(&mut self) -> Fetch {
            self.pc = (self.pc + 4) % 4096;
            Fetch::Instr(Instr::int_alu(self.id.tag_addr(self.pc), 0))
        }
        fn id(&self) -> StreamId {
            self.id
        }
    }

    /// Fully serial chain: every instruction depends on the previous one.
    struct SerialStream {
        pc: u64,
        id: StreamId,
    }
    impl InstructionSource for SerialStream {
        fn next_instr(&mut self) -> Fetch {
            self.pc = (self.pc + 4) % 4096;
            Fetch::Instr(Instr::int_alu(self.id.tag_addr(self.pc), 1))
        }
        fn id(&self) -> StreamId {
            self.id
        }
    }

    /// Independent FP divides — long-latency, unit-hogging FP work.
    struct FpDivStream {
        pc: u64,
        id: StreamId,
    }
    impl InstructionSource for FpDivStream {
        fn next_instr(&mut self) -> Fetch {
            self.pc = (self.pc + 4) % 4096;
            Fetch::Instr(Instr::fp(InstrClass::FpDiv, self.id.tag_addr(self.pc), 0))
        }
        fn id(&self) -> StreamId {
            self.id
        }
    }

    fn engine(contexts: usize) -> Engine {
        Engine::new(MachineConfig::alpha21264_like(contexts))
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let mut e = engine(1);
        let mut s = AluStream {
            pc: 0,
            id: StreamId(1),
        };
        let _warmup = e.run_timeslice(&mut [&mut s], 10_000);
        let stats = e.run_timeslice(&mut [&mut s], 5_000);
        let ipc = stats.total_ipc();
        assert!(
            ipc > 3.0,
            "independent ALU stream should exceed IPC 3, got {ipc}"
        );
    }

    #[test]
    fn serial_chain_is_ipc_limited() {
        let mut e = engine(1);
        let mut s = SerialStream {
            pc: 0,
            id: StreamId(1),
        };
        let _warmup = e.run_timeslice(&mut [&mut s], 10_000);
        let stats = e.run_timeslice(&mut [&mut s], 5_000);
        let ipc = stats.total_ipc();
        assert!(
            ipc < 1.3,
            "serial dependence chain must bound IPC near 1, got {ipc}"
        );
        assert!(
            ipc > 0.5,
            "serial chain should still make progress, got {ipc}"
        );
    }

    #[test]
    fn two_threads_beat_one_serial_thread() {
        let mut e = engine(2);
        let mut a = SerialStream {
            pc: 0,
            id: StreamId(1),
        };
        let _ = e.run_timeslice(&mut [&mut a], 10_000);
        let solo = e.run_timeslice(&mut [&mut a], 5_000).total_ipc();

        let mut e = engine(2);
        let mut a = SerialStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut b = SerialStream {
            pc: 0,
            id: StreamId(2),
        };
        let _ = e.run_timeslice(&mut [&mut a, &mut b], 10_000);
        let duo = e.run_timeslice(&mut [&mut a, &mut b], 5_000).total_ipc();
        assert!(
            duo > 1.5 * solo,
            "SMT should nearly double serial-thread throughput: {solo} -> {duo}"
        );
    }

    #[test]
    fn dependent_never_completes_before_producer() {
        // A serial chain through a long-latency op: the dependent of an FpDiv
        // cannot commit until the div's latency has elapsed.
        struct DivChain {
            pc: u64,
            n: u32,
        }
        impl InstructionSource for DivChain {
            fn next_instr(&mut self) -> Fetch {
                if self.n == 0 {
                    return Fetch::Finished;
                }
                self.n -= 1;
                self.pc = (self.pc + 4) % 4096;
                Fetch::Instr(Instr {
                    class: InstrClass::FpDiv,
                    pc: self.pc,
                    dep_dist: 1,
                    addr: 0,
                    taken: false,
                })
            }
            fn id(&self) -> StreamId {
                StreamId(1)
            }
        }
        let mut e = engine(1);
        let mut s = DivChain { pc: 0, n: 50 };
        let stats = e.run_timeslice(&mut [&mut s], 5_000);
        let t = stats.thread(StreamId(1)).unwrap();
        assert_eq!(t.committed, 50);
        // 50 chained 12-cycle divides need at least 600 cycles; the committed
        // IPC must reflect that serialization.
        assert!(
            stats.total_ipc() < 0.1,
            "chained divides must be slow: {}",
            stats.total_ipc()
        );
    }

    #[test]
    fn fp_div_threads_conflict_on_fp_units() {
        let mut e = engine(4);
        let mut t1 = FpDivStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut t2 = FpDivStream {
            pc: 0,
            id: StreamId(2),
        };
        let mut t3 = FpDivStream {
            pc: 0,
            id: StreamId(3),
        };
        let mut t4 = FpDivStream {
            pc: 0,
            id: StreamId(4),
        };
        let stats = e.run_timeslice(&mut [&mut t1, &mut t2, &mut t3, &mut t4], 5_000);
        assert!(
            stats.conflicts.fp_units + stats.conflicts.fp_queue > 100,
            "four FP-div threads must conflict on FP resources: {:?}",
            stats.conflicts
        );
    }

    #[test]
    fn mixed_int_fp_conflicts_less_than_pure_fp() {
        let mut e = engine(2);
        let mut t1 = FpDivStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut t2 = FpDivStream {
            pc: 0,
            id: StreamId(2),
        };
        let _ = e.run_timeslice(&mut [&mut t1, &mut t2], 15_000);
        let fp_pair = e.run_timeslice(&mut [&mut t1, &mut t2], 5_000);

        let mut e = engine(2);
        let mut t1 = FpDivStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut t3 = AluStream {
            pc: 0,
            id: StreamId(3),
        };
        let _ = e.run_timeslice(&mut [&mut t1, &mut t3], 15_000);
        let mixed = e.run_timeslice(&mut [&mut t1, &mut t3], 5_000);

        assert!(
            mixed.conflicts.fp_queue < fp_pair.conflicts.fp_queue,
            "a diverse coschedule must conflict less on the FP queue: {:?} vs {:?}",
            mixed.conflicts,
            fp_pair.conflicts
        );
        assert!(
            mixed.total_ipc() > fp_pair.total_ipc(),
            "diversity should raise throughput: {} vs {}",
            mixed.total_ipc(),
            fp_pair.total_ipc()
        );
    }

    #[test]
    fn committed_never_exceeds_fetched() {
        let mut e = engine(2);
        let mut a = AluStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut b = SerialStream {
            pc: 0,
            id: StreamId(2),
        };
        let stats = e.run_timeslice(&mut [&mut a, &mut b], 3_000);
        for t in &stats.threads {
            assert!(t.committed <= t.fetched, "{t:?}");
        }
    }

    #[test]
    fn blocked_source_makes_no_progress() {
        struct Blocked;
        impl InstructionSource for Blocked {
            fn next_instr(&mut self) -> Fetch {
                Fetch::Blocked
            }
            fn id(&self) -> StreamId {
                StreamId(9)
            }
        }
        let mut e = engine(2);
        let mut a = AluStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut b = Blocked;
        let stats = e.run_timeslice(&mut [&mut a, &mut b], 2_000);
        assert_eq!(stats.thread(StreamId(9)).unwrap().committed, 0);
        assert!(stats.thread(StreamId(9)).unwrap().blocked_cycles > 0);
        assert!(stats.thread(StreamId(1)).unwrap().committed > 0);
    }

    #[test]
    fn finished_source_idles() {
        struct Finite {
            left: u32,
            pc: u64,
        }
        impl InstructionSource for Finite {
            fn next_instr(&mut self) -> Fetch {
                if self.left == 0 {
                    return Fetch::Finished;
                }
                self.left -= 1;
                self.pc = (self.pc + 4) % 4096;
                Fetch::Instr(Instr::int_alu(self.pc, 0))
            }
            fn id(&self) -> StreamId {
                StreamId(3)
            }
        }
        let mut e = engine(1);
        let mut s = Finite { left: 100, pc: 0 };
        let stats = e.run_timeslice(&mut [&mut s], 10_000);
        assert_eq!(stats.thread(StreamId(3)).unwrap().committed, 100);
    }

    #[test]
    #[should_panic(expected = "hardware contexts")]
    fn too_many_threads_panics() {
        let mut e = engine(1);
        let mut a = AluStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut b = AluStream {
            pc: 0,
            id: StreamId(2),
        };
        e.run_timeslice(&mut [&mut a, &mut b], 10);
    }

    #[test]
    fn per_thread_cache_stats_sum_to_global() {
        let mut e = engine(2);
        let mut a = AluStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut b = SerialStream {
            pc: 0,
            id: StreamId(2),
        };
        let stats = e.run_timeslice(&mut [&mut a, &mut b], 4_000);
        let per_thread_il1: u64 = stats.threads.iter().map(|t| t.il1_refs).sum();
        assert_eq!(per_thread_il1, stats.cache.il1_refs);
        let per_thread_dl1: u64 = stats.threads.iter().map(|t| t.dl1_refs).sum();
        assert_eq!(per_thread_dl1, stats.cache.dl1_refs);
        let per_thread_dl1m: u64 = stats.threads.iter().map(|t| t.dl1_misses).sum();
        assert_eq!(per_thread_dl1m, stats.cache.dl1_misses);
    }

    #[test]
    fn caches_stay_warm_across_timeslices() {
        // A small load working set: the first timeslice takes the misses, the
        // second reuses the lines.
        struct LoadLoop {
            i: u64,
            id: StreamId,
        }
        impl InstructionSource for LoadLoop {
            fn next_instr(&mut self) -> Fetch {
                self.i += 1;
                let addr = self.id.tag_addr((self.i * 64) % 4096);
                Fetch::Instr(Instr::load(self.id.tag_addr(64), addr, 0))
            }
            fn id(&self) -> StreamId {
                self.id
            }
        }
        let mut e = engine(1);
        let mut s = LoadLoop {
            i: 0,
            id: StreamId(5),
        };
        let first = e.run_timeslice(&mut [&mut s], 3_000);
        let second = e.run_timeslice(&mut [&mut s], 3_000);
        assert!(
            second.cache.dl1_misses < first.cache.dl1_misses,
            "second slice should reuse warm lines: {} -> {}",
            first.cache.dl1_misses,
            second.cache.dl1_misses
        );
    }

    #[test]
    fn icount_beats_round_robin_on_mixed_threads() {
        // A fast thread plus a slow serial thread: ICOUNT keeps the fast
        // thread fed, round-robin wastes fetch slots on the clogged thread.
        fn total_ipc(policy: FetchPolicy) -> f64 {
            let mut cfg = MachineConfig::alpha21264_like(2);
            cfg.fetch_policy = policy;
            let mut e = Engine::new(cfg);
            let mut fast = AluStream {
                pc: 0,
                id: StreamId(1),
            };
            let mut slow = SerialStream {
                pc: 0,
                id: StreamId(2),
            };
            let _ = e.run_timeslice(&mut [&mut fast, &mut slow], 10_000);
            e.run_timeslice(&mut [&mut fast, &mut slow], 10_000)
                .total_ipc()
        }
        let icount = total_ipc(FetchPolicy::Icount);
        let rr = total_ipc(FetchPolicy::RoundRobin);
        assert!(
            icount >= rr,
            "ICOUNT should not lose to round-robin: {icount} vs {rr}"
        );
    }

    #[test]
    fn rename_register_exhaustion_counts_conflicts() {
        // Shrink the FP renaming pool so two FP-heavy threads exhaust it.
        let mut cfg = MachineConfig::alpha21264_like(2);
        cfg.fp_regs = 4;
        let mut e = Engine::new(cfg);
        let mut a = FpDivStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut b = FpDivStream {
            pc: 0,
            id: StreamId(2),
        };
        let stats = e.run_timeslice(&mut [&mut a, &mut b], 5_000);
        assert!(
            stats.conflicts.fp_regs > 0,
            "a 4-entry FP rename pool must conflict: {:?}",
            stats.conflicts
        );
    }

    #[test]
    fn int_queue_exhaustion_counts_conflicts() {
        // A tiny integer queue forces dispatch rejections even for one thread.
        let mut cfg = MachineConfig::alpha21264_like(1);
        cfg.int_queue = 2;
        let mut e = Engine::new(cfg);
        let mut a = SerialStream {
            pc: 0,
            id: StreamId(1),
        };
        let _ = e.run_timeslice(&mut [&mut a], 10_000);
        let stats = e.run_timeslice(&mut [&mut a], 5_000);
        assert!(
            stats.conflicts.int_queue > 0,
            "a 2-entry int queue must reject dispatches: {:?}",
            stats.conflicts
        );
    }

    #[test]
    fn conflict_counts_never_exceed_cycles() {
        let mut e = engine(4);
        let mut t1 = FpDivStream {
            pc: 0,
            id: StreamId(1),
        };
        let mut t2 = FpDivStream {
            pc: 0,
            id: StreamId(2),
        };
        let mut t3 = SerialStream {
            pc: 0,
            id: StreamId(3),
        };
        let mut t4 = AluStream {
            pc: 0,
            id: StreamId(4),
        };
        let stats = e.run_timeslice(&mut [&mut t1, &mut t2, &mut t3, &mut t4], 3_000);
        for r in crate::counters::Resource::ALL {
            assert!(
                stats.conflicts.get(r) <= 3_000,
                "{r}: {:?}",
                stats.conflicts
            );
        }
    }

    #[test]
    fn mispredicted_branches_slow_a_thread_down() {
        // Branch outcomes from a pseudo-random generator (unpredictable)
        // versus always-taken (learnable).
        struct BranchyStream {
            pc: u64,
            state: u64,
            random: bool,
        }
        impl InstructionSource for BranchyStream {
            fn next_instr(&mut self) -> Fetch {
                self.pc += 4;
                if self.pc.is_multiple_of(16) {
                    let taken = if self.random {
                        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (self.state >> 33) & 1 == 1
                    } else {
                        true
                    };
                    Fetch::Instr(Instr::branch(self.pc % 4096, taken))
                } else {
                    Fetch::Instr(Instr::int_alu(self.pc % 4096, 0))
                }
            }
            fn id(&self) -> StreamId {
                StreamId(1)
            }
        }
        let mut e = engine(1);
        let mut predictable = BranchyStream {
            pc: 0,
            state: 1,
            random: false,
        };
        let _ = e.run_timeslice(&mut [&mut predictable], 10_000);
        let p = e.run_timeslice(&mut [&mut predictable], 10_000);

        let mut e = engine(1);
        let mut random = BranchyStream {
            pc: 0,
            state: 1,
            random: true,
        };
        let _ = e.run_timeslice(&mut [&mut random], 10_000);
        let r = e.run_timeslice(&mut [&mut random], 10_000);

        assert!(
            r.branches.mispredict_pct() > p.branches.mispredict_pct() + 5.0,
            "random branches must mispredict more: {} vs {}",
            r.branches.mispredict_pct(),
            p.branches.mispredict_pct()
        );
        assert!(
            r.total_ipc() < p.total_ipc(),
            "mispredictions must cost throughput: {} vs {}",
            r.total_ipc(),
            p.total_ipc()
        );
    }

    /// Regression: a DTLB refill on an L1-hit load used to be booked as a
    /// data-cache miss (the miss test looked at the combined TLB + cache
    /// latency). The stream below touches 256 pages — double the 128-entry
    /// DTLB, so every access misses the TLB in steady state — but only one
    /// line per page, laid out so all 256 lines stay resident in the 2-way L1D.
    #[test]
    fn dtlb_refill_on_l1_hit_is_not_a_dcache_miss() {
        struct PageWalker {
            p: u64,
            id: StreamId,
        }
        impl InstructionSource for PageWalker {
            fn next_instr(&mut self) -> Fetch {
                self.p = (self.p + 1) % 256;
                // One line per page; the in-page offset spreads the lines
                // across L1D sets so that exactly two pages share each set.
                let addr = self.p * 8192 + (self.p % 128) * 64;
                Fetch::Instr(Instr::load(self.id.tag_addr(self.p * 4 % 4096), addr, 0))
            }
            fn id(&self) -> StreamId {
                self.id
            }
        }
        let mut e = engine(1);
        let mut s = PageWalker {
            p: 0,
            id: StreamId(1),
        };
        let _warmup = e.run_timeslice(&mut [&mut s], 200_000);
        let stats = e.run_timeslice(&mut [&mut s], 100_000);
        assert!(stats.dtlb.misses > 0, "stream must thrash the DTLB");
        assert_eq!(
            stats.threads[0].dl1_misses, stats.cache.dl1_misses,
            "per-thread and hierarchy dl1 miss counts must agree"
        );
        assert!(
            2 * stats.threads[0].dl1_misses < stats.threads[0].dl1_refs,
            "L1-resident loads must not be booked as misses: {} of {} refs",
            stats.threads[0].dl1_misses,
            stats.threads[0].dl1_refs
        );
    }

    /// Regression: per-thread I-cache misses used to be inferred from a
    /// nonzero access latency, so any configuration with a nonzero L1I hit
    /// latency booked every line crossing as a miss.
    #[test]
    fn nonzero_icache_hit_latency_is_not_a_miss() {
        let mut cfg = MachineConfig::alpha21264_like(1);
        cfg.icache.hit_latency = 2;
        let mut e = Engine::new(cfg);
        let mut s = AluStream {
            pc: 0,
            id: StreamId(1),
        };
        let _warmup = e.run_timeslice(&mut [&mut s], 20_000);
        let stats = e.run_timeslice(&mut [&mut s], 10_000);
        assert!(
            stats.threads[0].il1_refs > 0,
            "the 4 KiB pc loop must cross cache lines"
        );
        assert_eq!(
            stats.threads[0].il1_misses, stats.cache.il1_misses,
            "per-thread and hierarchy il1 miss counts must agree"
        );
        assert_eq!(
            stats.threads[0].il1_misses, 0,
            "a 64-line resident loop must not miss after warmup"
        );
    }
}

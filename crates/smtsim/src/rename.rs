//! Shared renaming register pools.
//!
//! An instruction claims one renaming register (integer or floating-point,
//! by class) at dispatch and releases it when it completes. When a pool is
//! empty, dispatch stalls and the corresponding conflict counter ticks — one
//! of the paper's `AllConf` components.

/// A pool of identical, shared renaming registers.
#[derive(Clone, Debug)]
pub struct RegPool {
    capacity: usize,
    free: usize,
}

impl RegPool {
    /// Builds a pool with `capacity` registers, all free.
    pub fn new(capacity: usize) -> Self {
        RegPool {
            capacity,
            free: capacity,
        }
    }

    /// Attempts to claim one register; returns `false` if the pool is empty.
    #[inline]
    pub fn try_alloc(&mut self) -> bool {
        if self.free == 0 {
            false
        } else {
            self.free -= 1;
            true
        }
    }

    /// Releases one register.
    ///
    /// # Panics
    /// Panics if more registers are released than were allocated.
    #[inline]
    pub fn release(&mut self) {
        assert!(self.free < self.capacity, "register over-release");
        self.free += 1;
    }

    /// Registers currently free.
    #[inline]
    pub fn free(&self) -> usize {
        self.free
    }

    /// Registers currently in use.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.capacity - self.free
    }

    /// Total registers in the pool.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frees everything (pipeline flush at timeslice boundary).
    pub fn reset(&mut self) {
        self.free = self.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_empty() {
        let mut p = RegPool::new(3);
        assert!(p.try_alloc());
        assert!(p.try_alloc());
        assert!(p.try_alloc());
        assert!(!p.try_alloc());
        assert_eq!(p.in_use(), 3);
        p.release();
        assert!(p.try_alloc());
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let mut p = RegPool::new(2);
        p.release();
    }

    #[test]
    fn reset_restores_capacity() {
        let mut p = RegPool::new(4);
        p.try_alloc();
        p.try_alloc();
        p.reset();
        assert_eq!(p.free(), 4);
        assert_eq!(p.capacity(), 4);
    }
}

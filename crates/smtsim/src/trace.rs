//! The instruction-stream contract between workloads and the processor.
//!
//! A hardware context executes whatever its attached [`InstructionSource`]
//! produces. Sources may report themselves [`Fetch::Blocked`] (e.g. a parallel
//! thread spinning at a barrier whose siblings are not scheduled) or
//! [`Fetch::Finished`] (the job completed).

use serde::{Deserialize, Serialize};

/// Identifies the address space / job a stream belongs to.
///
/// The upper bits of every address a stream emits should embed its `StreamId`
/// (see [`StreamId::tag_addr`]) so that distinct jobs conflict in the shared
/// caches without false sharing.
///
/// The id is a full `u64` so that a long-lived service submitting more than
/// 2^32 jobs never reuses an identity (stream *identity* — equality, hashing,
/// per-thread stats — always uses all 64 bits). The address tag derived from
/// it is necessarily narrower (see [`StreamId::tag_addr`]); tag collisions
/// only cause extra cache conflicts, never identity confusion.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u64);

impl StreamId {
    /// Number of low-order address bits left for the stream's own layout.
    pub const ADDR_BITS: u32 = 40;

    /// Embeds this stream id into the upper bits of a 40-bit local address,
    /// producing a globally unique physical address.
    ///
    /// Only `64 − ADDR_BITS = 24` tag bits fit above the local address, so
    /// the id is XOR-folded down to 24 bits. For ids below 2^24 the tag is
    /// the id itself (bit-identical with the historical `u32` behaviour);
    /// larger ids fold their upper bits in so that, e.g., ids `0` and `2^32`
    /// still land in different address spaces.
    ///
    /// ```
    /// use smtsim::trace::StreamId;
    /// let a = StreamId(3).tag_addr(0x1000);
    /// let b = StreamId(4).tag_addr(0x1000);
    /// assert_ne!(a, b);
    /// ```
    #[inline]
    pub fn tag_addr(self, local: u64) -> u64 {
        let tag = (self.0 ^ (self.0 >> 24) ^ (self.0 >> 48)) & ((1 << (64 - Self::ADDR_BITS)) - 1);
        (tag << Self::ADDR_BITS) | (local & ((1 << Self::ADDR_BITS) - 1))
    }
}

impl Default for StreamId {
    /// A sentinel id (`u64::MAX`) meaning "no stream".
    fn default() -> Self {
        StreamId(u64::MAX)
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The dynamic instruction classes the simulator models.
///
/// Latencies for each class come from [`crate::config::Latencies`]. Loads and
/// stores additionally pay for cache and TLB access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Single-cycle integer ALU operation (add, logical, shift, compare).
    IntAlu,
    /// Integer multiply (long latency, integer unit).
    IntMul,
    /// Floating-point add/subtract/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (long latency, unpipelined-ish).
    FpDiv,
    /// Memory load (integer queue + load/store port + D-cache).
    Load,
    /// Memory store (integer queue + load/store port + D-cache).
    Store,
    /// Conditional branch (integer unit; resolves the predictor).
    Branch,
}

impl InstrClass {
    /// All classes, in a fixed order (useful for histograms).
    pub const ALL: [InstrClass; 8] = [
        InstrClass::IntAlu,
        InstrClass::IntMul,
        InstrClass::FpAdd,
        InstrClass::FpMul,
        InstrClass::FpDiv,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
    ];

    /// Whether the instruction dispatches to the floating-point queue and
    /// consumes a floating-point renaming register.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            InstrClass::FpAdd | InstrClass::FpMul | InstrClass::FpDiv
        )
    }

    /// Whether the instruction is a memory operation needing a load/store port.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InstrClass::IntAlu => "int_alu",
            InstrClass::IntMul => "int_mul",
            InstrClass::FpAdd => "fp_add",
            InstrClass::FpMul => "fp_mul",
            InstrClass::FpDiv => "fp_div",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction.
///
/// `dep_dist` encodes the data dependency structure statistically: the
/// instruction depends on the result of the instruction `dep_dist` positions
/// earlier in its own thread's dynamic order (`0` means no register
/// dependency). This is how synthetic traces express their intrinsic ILP.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// Instruction class (selects queue, functional unit, and latency).
    pub class: InstrClass,
    /// Program counter (already tagged with the stream id; used for I-cache,
    /// I-TLB, and branch predictor indexing).
    pub pc: u64,
    /// Dependency distance in dynamic instructions; 0 = independent.
    pub dep_dist: u8,
    /// Effective address for loads/stores (tagged with the stream id).
    pub addr: u64,
    /// Branch outcome (meaningful only for `Branch`).
    pub taken: bool,
}

impl Instr {
    /// A single-cycle integer ALU instruction.
    #[inline]
    pub fn int_alu(pc: u64, dep_dist: u8) -> Self {
        Instr {
            class: InstrClass::IntAlu,
            pc,
            dep_dist,
            addr: 0,
            taken: false,
        }
    }

    /// An integer multiply.
    #[inline]
    pub fn int_mul(pc: u64, dep_dist: u8) -> Self {
        Instr {
            class: InstrClass::IntMul,
            pc,
            dep_dist,
            addr: 0,
            taken: false,
        }
    }

    /// A floating-point instruction of the given class.
    ///
    /// # Panics
    /// Panics if `class` is not one of the floating-point classes.
    #[inline]
    pub fn fp(class: InstrClass, pc: u64, dep_dist: u8) -> Self {
        assert!(class.is_fp(), "Instr::fp requires an FP class, got {class}");
        Instr {
            class,
            pc,
            dep_dist,
            addr: 0,
            taken: false,
        }
    }

    /// A load from `addr`.
    #[inline]
    pub fn load(pc: u64, addr: u64, dep_dist: u8) -> Self {
        Instr {
            class: InstrClass::Load,
            pc,
            dep_dist,
            addr,
            taken: false,
        }
    }

    /// A store to `addr`.
    #[inline]
    pub fn store(pc: u64, addr: u64, dep_dist: u8) -> Self {
        Instr {
            class: InstrClass::Store,
            pc,
            dep_dist,
            addr,
            taken: false,
        }
    }

    /// A conditional branch with the given architectural outcome.
    #[inline]
    pub fn branch(pc: u64, taken: bool) -> Self {
        Instr {
            class: InstrClass::Branch,
            pc,
            dep_dist: 0,
            addr: 0,
            taken,
        }
    }
}

/// What a source hands the fetch unit when asked for the next instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Fetch {
    /// The next dynamic instruction.
    Instr(Instr),
    /// The thread cannot make progress right now (e.g. waiting at a barrier
    /// for an unscheduled sibling). The fetch unit will skip it this cycle
    /// and retry later in the timeslice.
    Blocked,
    /// The job has finished; the context idles for the rest of the timeslice.
    Finished,
}

impl Fetch {
    /// Returns the contained instruction, if any.
    #[inline]
    pub fn instr(self) -> Option<Instr> {
        match self {
            Fetch::Instr(i) => Some(i),
            _ => None,
        }
    }
}

/// A stream of dynamic instructions executed by one hardware context.
///
/// Implementations own all job-level state (position in the job, phase
/// behaviour, synchronization with sibling threads), so a job can be detached
/// from the processor at the end of a timeslice and re-attached later without
/// losing progress.
pub trait InstructionSource {
    /// Produces the next dynamic instruction, or reports the thread blocked or
    /// finished. Called by the fetch stage; each `Fetch::Instr` returned is
    /// considered fetched (it will be executed — the simulator does not fetch
    /// down wrong paths).
    fn next_instr(&mut self) -> Fetch;

    /// The address-space tag of this stream.
    fn id(&self) -> StreamId;

    /// Fast-forwards the stream past `n` instructions without executing them
    /// (the fast-sim extrapolator's clock advance: the synthesized counters
    /// already account for the work, so the stream must move past it).
    ///
    /// The default implementation draws and discards instructions one at a
    /// time — semantically exact for any source, but O(n). Generators whose
    /// position is a pure function of their instruction count (the synthetic
    /// streams) override this with an O(1) reseek. Stops early at
    /// [`Fetch::Finished`] or [`Fetch::Blocked`]: a blocked stream cannot
    /// make progress, so crediting it with skipped work would be wrong.
    fn skip_instructions(&mut self, n: u64) {
        for _ in 0..n {
            match self.next_instr() {
                Fetch::Instr(_) => {}
                Fetch::Finished | Fetch::Blocked => break,
            }
        }
    }
}

impl<T: InstructionSource + ?Sized> InstructionSource for &mut T {
    fn next_instr(&mut self) -> Fetch {
        (**self).next_instr()
    }
    fn id(&self) -> StreamId {
        (**self).id()
    }
    fn skip_instructions(&mut self, n: u64) {
        (**self).skip_instructions(n)
    }
}

impl<T: InstructionSource + ?Sized> InstructionSource for Box<T> {
    fn next_instr(&mut self) -> Fetch {
        (**self).next_instr()
    }
    fn id(&self) -> StreamId {
        (**self).id()
    }
    fn skip_instructions(&mut self, n: u64) {
        (**self).skip_instructions(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_tagging_separates_address_spaces() {
        let a = StreamId(1).tag_addr(0xdead_beef);
        let b = StreamId(2).tag_addr(0xdead_beef);
        assert_ne!(a, b);
        // Low bits preserved.
        assert_eq!(a & 0xffff_ffff, 0xdead_beef);
    }

    #[test]
    fn stream_id_tagging_masks_overlong_local_addresses() {
        let a = StreamId(1).tag_addr(u64::MAX);
        assert_eq!(a >> StreamId::ADDR_BITS, 1);
    }

    #[test]
    fn stream_id_tagging_small_ids_matches_plain_shift() {
        // Ids below 2^24 must tag exactly as the historical u32 implementation
        // did (plain shift into the top bits) so existing figure outputs are
        // byte-identical.
        for id in [0u64, 1, 7, 4095, (1 << 24) - 1] {
            let got = StreamId(id).tag_addr(0x1234);
            assert_eq!(got, (id << StreamId::ADDR_BITS) | 0x1234);
        }
    }

    #[test]
    fn stream_id_above_u32_keeps_distinct_identity_and_tag() {
        let lo = StreamId(5);
        let hi = StreamId((1 << 32) + 5);
        // Identity (Eq/Hash) uses all 64 bits: no collision after 2^32 jobs.
        assert_ne!(lo, hi);
        // The folded address tag also differs: bit 32 folds down to bit 8.
        assert_ne!(lo.tag_addr(0x1000), hi.tag_addr(0x1000));
        assert_eq!(hi.tag_addr(0x1000) >> StreamId::ADDR_BITS, 5 | (1 << 8));
    }

    #[test]
    fn fp_classes_are_fp() {
        assert!(InstrClass::FpAdd.is_fp());
        assert!(InstrClass::FpMul.is_fp());
        assert!(InstrClass::FpDiv.is_fp());
        assert!(!InstrClass::Load.is_fp());
        assert!(!InstrClass::IntAlu.is_fp());
    }

    #[test]
    fn mem_classes_are_mem() {
        assert!(InstrClass::Load.is_mem());
        assert!(InstrClass::Store.is_mem());
        assert!(!InstrClass::FpAdd.is_mem());
    }

    #[test]
    #[should_panic(expected = "requires an FP class")]
    fn fp_constructor_rejects_int() {
        let _ = Instr::fp(InstrClass::IntAlu, 0, 0);
    }

    #[test]
    fn fetch_instr_accessor() {
        let i = Instr::int_alu(4, 0);
        assert_eq!(Fetch::Instr(i).instr(), Some(i));
        assert_eq!(Fetch::Blocked.instr(), None);
        assert_eq!(Fetch::Finished.instr(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(StreamId(3).to_string(), "S3");
        assert_eq!(InstrClass::FpDiv.to_string(), "fp_div");
    }
}

//! Fully-associative translation lookaside buffers with LRU replacement.
//!
//! The paper lists TLB capacity among the modeled 21264 resources; TLBs are
//! shared structures in the SMT model, so jobs with large page working sets
//! sweep each other's translations.

use serde::{Deserialize, Serialize};

/// A fully-associative, LRU-replaced TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<u64>,
    capacity: usize,
    page_shift: u32,
    miss_penalty: u64,
    stats: TlbStats,
}

/// Reference/miss counts for one timeslice.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations requested.
    pub refs: u64,
    /// Translations that missed and paid the refill penalty.
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate in percent; 0 when there were no references.
    pub fn miss_pct(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.refs as f64
        }
    }
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64, miss_penalty: u64) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_shift: page_bytes.trailing_zeros(),
            miss_penalty,
            stats: TlbStats::default(),
        }
    }

    /// Translates `addr`: returns the extra latency (0 on hit, the refill
    /// penalty on miss) and updates the LRU state.
    pub fn access(&mut self, addr: u64) -> u64 {
        let page = addr >> self.page_shift;
        self.stats.refs += 1;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let p = self.entries.remove(pos);
            self.entries.insert(0, p);
            0
        } else {
            self.stats.misses += 1;
            if self.entries.len() == self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, page);
            self.miss_penalty
        }
    }

    /// Takes and resets the per-timeslice counters.
    pub fn take_stats(&mut self) -> TlbStats {
        std::mem::take(&mut self.stats)
    }

    /// Invalidates all translations.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of valid translations resident.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4, 8192, 50);
        assert_eq!(t.access(0x0000), 50);
        assert_eq!(t.access(0x1FFF), 0); // same 8K page
        assert_eq!(t.access(0x2000), 50); // next page
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 8192, 50);
        t.access(0x0000); // page 0
        t.access(0x2000); // page 1
        t.access(0x0000); // page 0 MRU
        t.access(0x4000); // page 2 evicts page 1
        assert_eq!(t.access(0x0000), 0);
        assert_eq!(t.access(0x2000), 50);
    }

    #[test]
    fn capacity_respected() {
        let mut t = Tlb::new(3, 8192, 50);
        for p in 0..100u64 {
            t.access(p * 8192);
        }
        assert_eq!(t.resident(), 3);
    }

    #[test]
    fn stats_and_flush() {
        let mut t = Tlb::new(4, 8192, 50);
        t.access(0);
        t.access(0);
        let s = t.take_stats();
        assert_eq!(s.refs, 2);
        assert_eq!(s.misses, 1);
        assert!((s.miss_pct() - 50.0).abs() < 1e-9);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.take_stats(), TlbStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0, 8192, 50);
    }
}

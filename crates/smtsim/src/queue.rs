//! Shared out-of-order instruction queues (integer and floating-point).
//!
//! Modeled after the Alpha 21264's separate integer and floating-point
//! queues. Entries wait for their operands (`ready_at`) and are issued
//! oldest-first when a functional unit is available. A full queue rejects
//! dispatch — the `IntQueue`/`FpQueue` conflict events of the paper ("a queue
//! conflict arises when instructions cannot be placed in the queue because it
//! is full").

use crate::trace::InstrClass;

/// Sentinel for [`QEntry::dep_seq`]: the instruction has no register
/// dependency.
pub const NO_DEP: u64 = u64::MAX;

/// One waiting instruction in an issue queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct QEntry {
    /// Hardware context the instruction belongs to.
    pub ctx: u8,
    /// Instruction class (selects functional unit and latency).
    pub class: InstrClass,
    /// Sequence number of the producing instruction (same context), or
    /// [`NO_DEP`]. The entry is ready once the producer has completed.
    pub dep_seq: u64,
    /// Effective address (memory instructions only).
    pub addr: u64,
    /// Per-context dynamic sequence number (for dependence bookkeeping).
    pub seq: u64,
    /// For branches: whether the predictor got this branch wrong.
    pub mispredicted: bool,
}

/// A fixed-capacity issue queue holding instructions in age order.
#[derive(Clone, Debug)]
pub struct IssueQueue {
    entries: Vec<QEntry>,
    capacity: usize,
}

impl IssueQueue {
    /// Builds an empty queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        IssueQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Whether the queue has no free entry.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an entry.
    ///
    /// # Panics
    /// Panics if the queue is full — callers must check [`is_full`] first
    /// (that check is where the conflict counter ticks).
    ///
    /// [`is_full`]: IssueQueue::is_full
    #[inline]
    pub fn push(&mut self, e: QEntry) {
        assert!(!self.is_full(), "push into a full issue queue");
        self.entries.push(e);
    }

    /// Age-ordered view of the waiting instructions (oldest first).
    #[inline]
    pub fn entries(&self) -> &[QEntry] {
        &self.entries
    }

    /// Removes the entries at the given *ascending* age-order positions
    /// (as produced by scanning [`entries`](IssueQueue::entries)).
    pub fn remove_issued(&mut self, ascending_positions: &[usize]) {
        debug_assert!(ascending_positions.windows(2).all(|w| w[0] < w[1]));
        for &pos in ascending_positions.iter().rev() {
            self.entries.remove(pos);
        }
    }

    /// Empties the queue (timeslice-boundary pipeline flush). Returns how many
    /// entries were dropped, so the caller can release their resources.
    pub fn drain_all(&mut self) -> Vec<QEntry> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, dep_seq: u64) -> QEntry {
        QEntry {
            ctx: 0,
            class: InstrClass::IntAlu,
            dep_seq,
            addr: 0,
            seq,
            mispredicted: false,
        }
    }

    #[test]
    fn fills_to_capacity() {
        let mut q = IssueQueue::new(2);
        assert!(!q.is_full());
        q.push(entry(0, 0));
        q.push(entry(1, 0));
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "full issue queue")]
    fn push_full_panics() {
        let mut q = IssueQueue::new(1);
        q.push(entry(0, 0));
        q.push(entry(1, 0));
    }

    #[test]
    fn age_order_preserved() {
        let mut q = IssueQueue::new(4);
        q.push(entry(10, 5));
        q.push(entry(11, 1));
        q.push(entry(12, 3));
        let seqs: Vec<u64> = q.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![10, 11, 12]);
    }

    #[test]
    fn remove_issued_removes_right_entries() {
        let mut q = IssueQueue::new(4);
        for s in 0..4 {
            q.push(entry(s, 0));
        }
        q.remove_issued(&[0, 2]);
        let seqs: Vec<u64> = q.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 3]);
    }

    #[test]
    fn drain_returns_everything() {
        let mut q = IssueQueue::new(4);
        q.push(entry(0, 0));
        q.push(entry(1, 0));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}

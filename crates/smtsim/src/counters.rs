//! Hardware performance counters for shared-resource conflicts.
//!
//! The paper's `AllConf` predictor sums "the percentages of cycles for which
//! the schedule conflicts on each of these resources": the integer queue, the
//! floating point queue, the integer renaming registers, the floating point
//! renaming registers, scoreboard entries, integer units, floating point
//! units, and load/store units. We model all of these except the scoreboard
//! (subsumed by the per-thread in-flight window cap) and count, per resource,
//! the number of cycles in which at least one dispatch- or issue-ready
//! instruction was turned away because the resource was exhausted.

use serde::{Deserialize, Serialize};

/// The shared resources on which conflicts are counted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Integer instruction queue full at dispatch.
    IntQueue,
    /// Floating-point instruction queue full at dispatch.
    FpQueue,
    /// Integer renaming registers exhausted at dispatch.
    IntRegs,
    /// Floating-point renaming registers exhausted at dispatch.
    FpRegs,
    /// All integer units busy while a ready integer instruction waited.
    IntUnits,
    /// All floating-point units busy while a ready FP instruction waited.
    FpUnits,
    /// All load/store ports busy while a ready memory instruction waited.
    LsPorts,
}

impl Resource {
    /// All counted resources, in a fixed order.
    pub const ALL: [Resource; 7] = [
        Resource::IntQueue,
        Resource::FpQueue,
        Resource::IntRegs,
        Resource::FpRegs,
        Resource::IntUnits,
        Resource::FpUnits,
        Resource::LsPorts,
    ];
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Resource::IntQueue => "int_queue",
            Resource::FpQueue => "fp_queue",
            Resource::IntRegs => "int_regs",
            Resource::FpRegs => "fp_regs",
            Resource::IntUnits => "int_units",
            Resource::FpUnits => "fp_units",
            Resource::LsPorts => "ls_ports",
        };
        f.write_str(s)
    }
}

/// Cycles-with-conflict counts for each shared resource over one interval.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictCounters {
    /// Cycles on which the integer queue rejected a dispatch.
    pub int_queue: u64,
    /// Cycles on which the FP queue rejected a dispatch.
    pub fp_queue: u64,
    /// Cycles on which integer renaming registers were exhausted.
    pub int_regs: u64,
    /// Cycles on which FP renaming registers were exhausted.
    pub fp_regs: u64,
    /// Cycles on which a ready integer instruction found no integer unit.
    pub int_units: u64,
    /// Cycles on which a ready FP instruction found no FP unit.
    pub fp_units: u64,
    /// Cycles on which a ready memory instruction found no load/store port.
    pub ls_ports: u64,
}

impl ConflictCounters {
    /// Count for a given resource.
    pub fn get(&self, r: Resource) -> u64 {
        match r {
            Resource::IntQueue => self.int_queue,
            Resource::FpQueue => self.fp_queue,
            Resource::IntRegs => self.int_regs,
            Resource::FpRegs => self.fp_regs,
            Resource::IntUnits => self.int_units,
            Resource::FpUnits => self.fp_units,
            Resource::LsPorts => self.ls_ports,
        }
    }

    /// Mutable count for a given resource.
    pub(crate) fn get_mut(&mut self, r: Resource) -> &mut u64 {
        match r {
            Resource::IntQueue => &mut self.int_queue,
            Resource::FpQueue => &mut self.fp_queue,
            Resource::IntRegs => &mut self.int_regs,
            Resource::FpRegs => &mut self.fp_regs,
            Resource::IntUnits => &mut self.int_units,
            Resource::FpUnits => &mut self.fp_units,
            Resource::LsPorts => &mut self.ls_ports,
        }
    }

    /// Percentage of `cycles` on which resource `r` conflicted.
    ///
    /// `cycles` must be the length of the interval these counts were taken
    /// over; a zero interval reports 0%. The engine guarantees each count is
    /// at most the interval length, so the result is in `[0, 100]` for a
    /// matched interval — but the division is not clamped, and passing a
    /// shorter interval than the counts cover reports over 100%.
    pub fn pct(&self, r: Resource, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            100.0 * self.get(r) as f64 / cycles as f64
        }
    }

    /// The paper's `AllConf` quantity: the sum over all resources of the
    /// percentage of cycles with a conflict on that resource.
    pub fn all_conflicts_pct(&self, cycles: u64) -> f64 {
        Resource::ALL.iter().map(|&r| self.pct(r, cycles)).sum()
    }

    /// Accumulates another interval's counts.
    ///
    /// Panics (in all build profiles) if a counter would wrap: a silent
    /// wrap-around would deflate `AllConf` for the rest of the run, which is
    /// far worse than stopping.
    pub fn merge(&mut self, other: &ConflictCounters) {
        for r in Resource::ALL {
            let slot = self.get_mut(r);
            *slot = slot
                .checked_add(other.get(r))
                .unwrap_or_else(|| panic!("conflict counter `{r}` overflowed u64 in merge"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_matches_fields() {
        let c = ConflictCounters {
            int_queue: 1,
            fp_queue: 2,
            int_regs: 3,
            fp_regs: 4,
            int_units: 5,
            fp_units: 6,
            ls_ports: 7,
        };
        let vals: Vec<u64> = Resource::ALL.iter().map(|&r| c.get(r)).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn percentage_math() {
        let c = ConflictCounters {
            fp_queue: 25,
            ..Default::default()
        };
        assert!((c.pct(Resource::FpQueue, 100) - 25.0).abs() < 1e-9);
        assert_eq!(c.pct(Resource::FpQueue, 0), 0.0);
    }

    #[test]
    fn all_conf_sums_percentages() {
        let c = ConflictCounters {
            int_queue: 10,
            fp_units: 30,
            ..Default::default()
        };
        assert!((c.all_conflicts_pct(100) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_all() {
        let mut a = ConflictCounters {
            int_units: 1,
            ..Default::default()
        };
        let b = ConflictCounters {
            int_units: 2,
            ls_ports: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.int_units, 3);
        assert_eq!(a.ls_ports, 9);
    }

    #[test]
    #[should_panic(expected = "conflict counter `ls_ports` overflowed")]
    fn merge_overflow_panics_with_counter_name() {
        let mut a = ConflictCounters {
            ls_ports: u64::MAX,
            ..Default::default()
        };
        let b = ConflictCounters {
            ls_ports: 1,
            ..Default::default()
        };
        a.merge(&b);
    }

    #[test]
    fn pct_is_unclamped_for_mismatched_intervals() {
        // Counts taken over a longer interval than the divisor: the quotient
        // exceeds 100% rather than being silently clamped.
        let c = ConflictCounters {
            int_queue: 150,
            ..Default::default()
        };
        assert!((c.pct(Resource::IntQueue, 100) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn resource_display_is_stable() {
        let names: Vec<String> = Resource::ALL.iter().map(|r| r.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "int_queue",
                "fp_queue",
                "int_regs",
                "fp_regs",
                "int_units",
                "fp_units",
                "ls_ports"
            ]
        );
    }
}

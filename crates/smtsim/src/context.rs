//! Per-context dependence tracking.
//!
//! Each hardware context records, for its most recent dynamic instructions,
//! when (if ever) each will complete. Dependents look their producer up by
//! sequence number: an instruction whose producer has not issued yet is not
//! ready; one whose producer's slot has been recycled is older than the
//! in-flight window and therefore long complete.

/// Dependence-ring capacity. Must be a power of two and at least as large as
/// the per-thread in-flight cap, so an in-flight producer can never be
/// evicted by a newer dispatch.
pub const RING: usize = 128;

/// Sentinel completion time: instruction dispatched but not yet issued.
pub const NOT_DONE: u64 = u64::MAX;

/// A ring of completion times indexed by dynamic sequence number.
#[derive(Clone, Debug)]
pub struct DepRing {
    done: Box<[u64; RING]>,
    tag: Box<[u64; RING]>,
}

impl Default for DepRing {
    fn default() -> Self {
        Self::new()
    }
}

impl DepRing {
    /// An empty ring: every lookup reports "long complete".
    pub fn new() -> Self {
        DepRing {
            done: Box::new([NOT_DONE; RING]),
            tag: Box::new([u64::MAX; RING]),
        }
    }

    /// Records that `seq` will complete at `cycle`.
    #[inline]
    pub fn set_done(&mut self, seq: u64, cycle: u64) {
        let slot = (seq as usize) & (RING - 1);
        self.tag[slot] = seq;
        self.done[slot] = cycle;
    }

    /// Marks `seq` dispatched-but-not-issued (completion unknown).
    #[inline]
    pub fn set_pending(&mut self, seq: u64) {
        let slot = (seq as usize) & (RING - 1);
        self.tag[slot] = seq;
        self.done[slot] = NOT_DONE;
    }

    /// The cycle at which producer `seq` completes: [`NOT_DONE`] if it has
    /// not issued yet, or 0 if the sequence number is older than the ring
    /// window (and therefore must have completed long ago).
    #[inline]
    pub fn done_at(&self, seq: u64) -> u64 {
        let slot = (seq as usize) & (RING - 1);
        if self.tag[slot] == seq {
            self.done[slot]
        } else {
            0
        }
    }

    /// Whether the instruction `seq` produced its result by cycle `now`.
    #[inline]
    pub fn ready_by(&self, seq: u64, now: u64) -> bool {
        let done = self.done_at(seq);
        done != NOT_DONE && done <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ring_reports_everything_complete() {
        let r = DepRing::new();
        assert_eq!(r.done_at(0), 0);
        assert_eq!(r.done_at(12345), 0);
        assert!(r.ready_by(7, 0));
    }

    #[test]
    fn pending_then_done() {
        let mut r = DepRing::new();
        r.set_pending(5);
        assert_eq!(r.done_at(5), NOT_DONE);
        assert!(!r.ready_by(5, 1_000_000));
        r.set_done(5, 42);
        assert_eq!(r.done_at(5), 42);
        assert!(!r.ready_by(5, 41));
        assert!(r.ready_by(5, 42));
        assert!(r.ready_by(5, 43));
    }

    #[test]
    fn recycled_slot_means_long_complete() {
        let mut r = DepRing::new();
        r.set_done(3, 100);
        // RING newer instructions reuse slot 3.
        r.set_pending(3 + RING as u64);
        // The old producer's info is gone; it must be treated as complete.
        assert_eq!(r.done_at(3), 0);
        assert!(r.ready_by(3, 0));
        // The new occupant is pending.
        assert_eq!(r.done_at(3 + RING as u64), NOT_DONE);
    }

    #[test]
    fn distinct_slots_do_not_interfere() {
        let mut r = DepRing::new();
        for seq in 0..RING as u64 {
            r.set_pending(seq);
        }
        for seq in 0..RING as u64 {
            assert_eq!(r.done_at(seq), NOT_DONE, "seq {seq}");
        }
        for seq in 0..RING as u64 {
            r.set_done(seq, seq + 10);
        }
        for seq in 0..RING as u64 {
            assert_eq!(r.done_at(seq), seq + 10, "seq {seq}");
        }
    }

    #[test]
    fn ring_is_a_power_of_two() {
        assert!(RING.is_power_of_two());
    }
}

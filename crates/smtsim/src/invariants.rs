//! Conservation-law checks over the hardware counters (the `sim-check`
//! correctness layer).
//!
//! Every figure the reproduction derives — `WS(t)`, `AllConf`, the Table-3
//! predictor inputs — is a ratio of counters from one timeslice, so a single
//! accounting bug in the engine silently skews every result. This module
//! states the laws those counters must obey and checks them.
//!
//! [`check_timeslice`] validates the externally visible counters of a
//! [`TimesliceStats`] and is always available (tests and downstream crates
//! call it directly). With the `check-invariants` cargo feature enabled, the
//! pipeline engine additionally self-checks after every timeslice (plus
//! engine-internal occupancy checks every cycle) and panics with a
//! structured [`InvariantViolation`] naming the cycle, thread, and counter
//! that broke — a tripwire for future perf work on the hot path.
//!
//! The laws:
//!
//! * per thread: `committed <= fetched`, class counts sum to `committed`,
//!   `dl1_misses <= dl1_refs`, `il1_misses <= il1_refs`;
//! * per-thread cache counters sum to the global [`CacheStats`] totals
//!   (`dl1_refs`, `dl1_misses`, `il1_refs`, `il1_misses`);
//! * per resource: conflict cycle-counts never exceed the slice's cycles;
//! * hierarchy: misses never exceed references at every level, and L2
//!   references equal L1 data + instruction misses (no other L2 clients);
//! * TLBs and branch predictor: misses/mispredictions never exceed
//!   references/predictions.
//!
//! Engine-internal (feature-gated, per cycle): issue-queue and renaming-pool
//! occupancy never exceed configured capacity, per-thread in-flight counts
//! never exceed the window cap, and `committed <= issued <= fetched`.

use crate::counters::Resource;
use crate::stats::TimesliceStats;

/// A broken conservation law, with enough structure to name the culprit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle (within the timeslice) at which the violation was detected.
    /// Timeslice-granularity checks report the slice length (detection
    /// happens at the end of the slice).
    pub cycle: u64,
    /// The hardware context (thread slot) involved, if the law is per-thread.
    pub thread: Option<usize>,
    /// Name of the counter (or structure) that broke the law.
    pub counter: &'static str,
    /// Human-readable statement of the violated law with the observed values.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated at cycle {}", self.cycle)?;
        if let Some(t) = self.thread {
            write!(f, ", thread {t}")?;
        }
        write!(f, ", counter `{}`: {}", self.counter, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

impl InvariantViolation {
    fn new(cycle: u64, thread: Option<usize>, counter: &'static str, detail: String) -> Self {
        InvariantViolation {
            cycle,
            thread,
            counter,
            detail,
        }
    }
}

macro_rules! ensure {
    ($cond:expr, $cycle:expr, $thread:expr, $counter:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(Box::new(InvariantViolation::new(
                $cycle,
                $thread,
                $counter,
                format!($($fmt)+),
            )));
        }
    };
}

/// Checks every conservation law the externally visible counters of one
/// timeslice must obey. Returns the first violation found.
///
/// This is cheap (a few dozen integer comparisons per slice) and pure; the
/// `check-invariants` feature only controls whether the engine calls it
/// automatically, not whether it exists.
pub fn check_timeslice(stats: &TimesliceStats) -> Result<(), Box<InvariantViolation>> {
    let cyc = stats.cycles;
    for (i, t) in stats.threads.iter().enumerate() {
        let th = Some(i);
        ensure!(
            t.committed <= t.fetched,
            cyc,
            th,
            "committed",
            "committed ({}) exceeds fetched ({})",
            t.committed,
            t.fetched
        );
        let class_sum: u64 = t.class_counts.iter().sum();
        ensure!(
            class_sum == t.committed,
            cyc,
            th,
            "class_counts",
            "class counts sum to {} but committed is {}",
            class_sum,
            t.committed
        );
        ensure!(
            t.dl1_misses <= t.dl1_refs,
            cyc,
            th,
            "dl1_misses",
            "dl1_misses ({}) exceeds dl1_refs ({})",
            t.dl1_misses,
            t.dl1_refs
        );
        ensure!(
            t.il1_misses <= t.il1_refs,
            cyc,
            th,
            "il1_misses",
            "il1_misses ({}) exceeds il1_refs ({})",
            t.il1_misses,
            t.il1_refs
        );
    }

    // Per-thread cache counters must sum to the global hierarchy counters:
    // the same physical events, booked twice.
    let sums: [(&'static str, u64, u64); 4] = [
        (
            "dl1_refs",
            stats.threads.iter().map(|t| t.dl1_refs).sum(),
            stats.cache.dl1_refs,
        ),
        (
            "dl1_misses",
            stats.threads.iter().map(|t| t.dl1_misses).sum(),
            stats.cache.dl1_misses,
        ),
        (
            "il1_refs",
            stats.threads.iter().map(|t| t.il1_refs).sum(),
            stats.cache.il1_refs,
        ),
        (
            "il1_misses",
            stats.threads.iter().map(|t| t.il1_misses).sum(),
            stats.cache.il1_misses,
        ),
    ];
    for (name, per_thread, global) in sums {
        ensure!(
            per_thread == global,
            cyc,
            None,
            name,
            "per-thread sum ({per_thread}) disagrees with the hierarchy counter ({global})"
        );
    }

    for r in Resource::ALL {
        ensure!(
            stats.conflicts.get(r) <= cyc,
            cyc,
            None,
            "conflicts",
            "{r} conflict count ({}) exceeds the slice's {cyc} cycles",
            stats.conflicts.get(r)
        );
    }

    let c = &stats.cache;
    ensure!(
        c.dl1_misses <= c.dl1_refs,
        cyc,
        None,
        "cache.dl1_misses",
        "dl1_misses ({}) exceeds dl1_refs ({})",
        c.dl1_misses,
        c.dl1_refs
    );
    ensure!(
        c.il1_misses <= c.il1_refs,
        cyc,
        None,
        "cache.il1_misses",
        "il1_misses ({}) exceeds il1_refs ({})",
        c.il1_misses,
        c.il1_refs
    );
    ensure!(
        c.l2_misses <= c.l2_refs,
        cyc,
        None,
        "cache.l2_misses",
        "l2_misses ({}) exceeds l2_refs ({})",
        c.l2_misses,
        c.l2_refs
    );
    ensure!(
        c.l2_refs == c.dl1_misses + c.il1_misses,
        cyc,
        None,
        "cache.l2_refs",
        "l2_refs ({}) must equal dl1_misses + il1_misses ({} + {})",
        c.l2_refs,
        c.dl1_misses,
        c.il1_misses
    );

    for (name, tlb) in [("dtlb", &stats.dtlb), ("itlb", &stats.itlb)] {
        ensure!(
            tlb.misses <= tlb.refs,
            cyc,
            None,
            name,
            "misses ({}) exceed refs ({})",
            tlb.misses,
            tlb.refs
        );
    }
    ensure!(
        stats.branches.mispredicted <= stats.branches.predicted,
        cyc,
        None,
        "branches.mispredicted",
        "mispredicted ({}) exceeds predicted ({})",
        stats.branches.mispredicted,
        stats.branches.predicted
    );
    Ok(())
}

/// Checks [`check_timeslice`] and panics with the structured diagnostic on
/// failure. The engine calls this (feature-gated) after every timeslice.
pub fn assert_timeslice(stats: &TimesliceStats) {
    if let Err(v) = check_timeslice(stats) {
        panic!("{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ThreadStats;

    fn good_slice() -> TimesliceStats {
        let mut t = ThreadStats {
            fetched: 100,
            committed: 80,
            dl1_refs: 20,
            dl1_misses: 5,
            il1_refs: 10,
            il1_misses: 1,
            ..Default::default()
        };
        t.class_counts[0] = 80;
        TimesliceStats {
            cycles: 1_000,
            threads: vec![t],
            cache: crate::cache::CacheStats {
                dl1_refs: 20,
                dl1_misses: 5,
                il1_refs: 10,
                il1_misses: 1,
                l2_refs: 6,
                l2_misses: 2,
            },
            ..Default::default()
        }
    }

    #[test]
    fn consistent_slice_passes() {
        check_timeslice(&good_slice()).unwrap();
    }

    #[test]
    fn committed_over_fetched_is_caught() {
        let mut s = good_slice();
        s.threads[0].committed = 200;
        s.threads[0].class_counts[0] = 200;
        let v = check_timeslice(&s).unwrap_err();
        assert_eq!(v.counter, "committed");
        assert_eq!(v.thread, Some(0));
        assert_eq!(v.cycle, 1_000);
        assert!(v.to_string().contains("thread 0"), "{v}");
    }

    #[test]
    fn class_count_drift_is_caught() {
        let mut s = good_slice();
        s.threads[0].class_counts[3] += 1;
        let v = check_timeslice(&s).unwrap_err();
        assert_eq!(v.counter, "class_counts");
    }

    #[test]
    fn per_thread_cache_sum_mismatch_is_caught() {
        let mut s = good_slice();
        // Break the per-thread/global agreement while keeping the
        // per-thread law itself (misses <= refs) satisfied.
        s.threads[0].dl1_misses += 1;
        let v = check_timeslice(&s).unwrap_err();
        assert_eq!(v.counter, "dl1_misses");
        assert_eq!(v.thread, None);
    }

    #[test]
    fn conflict_count_over_cycles_is_caught() {
        let mut s = good_slice();
        s.conflicts.fp_queue = 2_000;
        let v = check_timeslice(&s).unwrap_err();
        assert_eq!(v.counter, "conflicts");
        assert!(v.detail.contains("fp_queue"), "{}", v.detail);
    }

    #[test]
    fn l2_ref_conservation_is_caught() {
        let mut s = good_slice();
        s.cache.l2_refs = 99;
        let v = check_timeslice(&s).unwrap_err();
        assert_eq!(v.counter, "cache.l2_refs");
    }

    #[test]
    #[should_panic(expected = "invariant violated at cycle 1000")]
    fn assert_timeslice_panics_with_diagnostic() {
        let mut s = good_slice();
        s.threads[0].committed = 200;
        s.threads[0].class_counts[0] = 200;
        assert_timeslice(&s);
    }
}

//! Criterion benchmarks for the scheduling machinery: enumeration, canonical
//! identity, distinct sampling, and predictor evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sos_core::enumerate::{count_distinct, enumerate_all, sample_distinct};
use sos_core::predictor::PredictorKind;
use sos_core::sample::ScheduleSample;
use sos_core::schedule::Schedule;

fn enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_all");
    for (x, y, z) in [(6usize, 3usize, 3usize), (8, 4, 4), (6, 3, 1)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("({x},{y},{z})")),
            &(x, y, z),
            |b, &(x, y, z)| b.iter(|| enumerate_all(x, y, z)),
        );
    }
    group.finish();

    c.bench_function("count_distinct_12_4_4", |b| {
        b.iter(|| count_distinct(std::hint::black_box(12), 4, 4))
    });
}

fn sampling(c: &mut Criterion) {
    c.bench_function("sample_distinct_10_of_2520", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| sample_distinct(8, 4, 1, 10, &mut rng))
    });
}

fn canonical(c: &mut Criterion) {
    c.bench_function("canonical_key_12_6_6", |b| {
        let s = Schedule::new((0..12).collect(), 6, 6);
        b.iter(|| s.canonical_key())
    });
}

fn synthetic_samples(n: usize) -> Vec<ScheduleSample> {
    (0..n)
        .map(|i| {
            let f = i as f64;
            ScheduleSample {
                notation: format!("s{i}"),
                ipc: 2.0 + (f * 0.77).sin(),
                allconf: 100.0 + 20.0 * (f * 0.3).cos(),
                dcache: 95.0 + (f * 0.11).sin(),
                fq: 10.0 + 8.0 * (f * 0.5).sin().abs(),
                fp: 12.0 + 6.0 * (f * 0.7).cos().abs(),
                sum2: 22.0,
                diversity: 10.0 + f,
                balance: 0.1 + 0.05 * f,
            }
        })
        .collect()
}

fn predictors(c: &mut Criterion) {
    let samples = synthetic_samples(10);
    c.bench_function("score_predictor_10_samples", |b| {
        b.iter(|| PredictorKind::Score.choose(std::hint::black_box(&samples)))
    });
    c.bench_function("all_predictors_10_samples", |b| {
        b.iter(|| {
            PredictorKind::ALL
                .iter()
                .map(|p| p.choose(std::hint::black_box(&samples)))
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, enumeration, sampling, canonical, predictors);
criterion_main!(benches);

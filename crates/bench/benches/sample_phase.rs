//! Criterion benchmark for the end-to-end sample phase: how much wall time
//! the SOS scheduler spends profiling one candidate schedule (one full
//! rotation of Jsb(4,2,2) at 1/1000 paper scale).

use criterion::{criterion_group, criterion_main, Criterion};
use smtsim::MachineConfig;
use sos_core::job::JobPool;
use sos_core::runner::Runner;
use sos_core::sample::sample_schedules;
use sos_core::schedule::Schedule;
use workloads::{Benchmark, JobSpec};

fn sample_one_rotation(c: &mut Criterion) {
    c.bench_function("sample_phase_one_rotation_4_2_2", |b| {
        let pool = JobPool::from_specs(
            &[
                JobSpec::single(Benchmark::Fp),
                JobSpec::single(Benchmark::Mg),
                JobSpec::single(Benchmark::Gcc),
                JobSpec::single(Benchmark::Is),
            ],
            1,
        );
        let mut runner = Runner::new(MachineConfig::alpha21264_like(2), pool, 5_000);
        let candidates = vec![Schedule::new(vec![0, 1, 2, 3], 2, 2)];
        b.iter(|| sample_schedules(&mut runner, &candidates, 1));
    });
}

fn solo_calibration(c: &mut Criterion) {
    c.bench_function("calibrate_solo_4_jobs", |b| {
        let pool = JobPool::from_specs(
            &[
                JobSpec::single(Benchmark::Fp),
                JobSpec::single(Benchmark::Mg),
                JobSpec::single(Benchmark::Gcc),
                JobSpec::single(Benchmark::Is),
            ],
            1,
        );
        let mut runner = Runner::new(MachineConfig::alpha21264_like(2), pool, 5_000);
        b.iter(|| runner.calibrate_solo(5_000, 5_000));
    });
}

criterion_group!(benches, sample_one_rotation, solo_calibration);
criterion_main!(benches);

//! Measures the cost of the observability probe path on the simulator's
//! cycle loop, in three configurations:
//!
//! * `no_observer` — the baseline: probes are skipped behind one
//!   predicted branch per cycle;
//! * `nop_observer` — a [`NopObserver`] registered, so every probe call is
//!   made and discarded;
//! * `telemetry_disabled` — a [`TelemetryObserver`] registered while the
//!   global recorder is disabled (the "built with telemetry, not tracing"
//!   production configuration).
//!
//! The point of the exercise: with no observer registered, instrumented
//! smtsim must run within ~2% of its pre-instrumentation speed. The bench
//! prints the relative overhead of each configuration; set
//! `OBSERVER_OVERHEAD_ASSERT=1` to fail the run when `no_observer` vs
//! `nop_observer` differ by more than 2% (kept opt-in: wall-clock
//! comparisons on loaded CI hosts are noisy).

use criterion::{criterion_group, criterion_main, Criterion};
use smtsim::trace::InstructionSource;
use smtsim::{MachineConfig, NopObserver, Processor, StreamId};
use sos_core::telemetry::{self, TelemetryObserver};
use workloads::spec::Benchmark;

const CYCLES: u64 = 20_000;
const THREADS: usize = 2;

fn streams() -> Vec<Box<dyn InstructionSource>> {
    let benches = [Benchmark::Fp, Benchmark::Gcc];
    (0..THREADS)
        .map(|i| {
            benches[i % benches.len()].stream(StreamId(i as u64), i as u64)
                as Box<dyn InstructionSource>
        })
        .collect()
}

fn run_slice(cpu: &mut Processor, streams: &mut [Box<dyn InstructionSource>]) {
    let mut refs: Vec<&mut dyn InstructionSource> = streams
        .iter_mut()
        .map(|s| &mut **s as &mut dyn InstructionSource)
        .collect();
    cpu.run_timeslice(&mut refs, CYCLES);
}

fn observer_overhead(c: &mut Criterion) {
    telemetry::disable();

    let mut baseline_ns = 0.0;
    c.bench_function("observer_overhead/no_observer", |b| {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(THREADS));
        let mut streams = streams();
        b.iter(|| run_slice(&mut cpu, &mut streams));
        baseline_ns = b.mean_ns();
    });

    let mut nop_ns = 0.0;
    c.bench_function("observer_overhead/nop_observer", |b| {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(THREADS));
        cpu.set_observer(Box::new(NopObserver));
        let mut streams = streams();
        b.iter(|| run_slice(&mut cpu, &mut streams));
        nop_ns = b.mean_ns();
    });

    let mut disabled_ns = 0.0;
    c.bench_function("observer_overhead/telemetry_disabled", |b| {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(THREADS));
        cpu.set_observer(Box::new(TelemetryObserver::new()));
        let mut streams = streams();
        b.iter(|| run_slice(&mut cpu, &mut streams));
        disabled_ns = b.mean_ns();
    });

    let pct = |ns: f64| 100.0 * (ns / baseline_ns - 1.0);
    println!(
        "observer overhead vs no_observer: nop {:+.2}%, telemetry_disabled {:+.2}%",
        pct(nop_ns),
        pct(disabled_ns)
    );
    if std::env::var_os("OBSERVER_OVERHEAD_ASSERT").is_some() {
        assert!(
            pct(nop_ns) <= 2.0,
            "nop observer overhead {:+.2}% exceeds 2%",
            pct(nop_ns)
        );
    }
}

criterion_group!(benches, observer_overhead);
criterion_main!(benches);

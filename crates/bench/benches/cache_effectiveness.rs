//! Criterion benchmark for the evaluation cache: a full
//! `evaluate_experiment` on Jsb(4,2,2) cold (cache disabled, every simulator
//! cycle re-executed) versus warm (cache primed, every calibration, sample,
//! and symbios lookup served from memory). The warm/cold ratio is the
//! speedup the figure binaries see on a re-run.

use criterion::{criterion_group, criterion_main, Criterion};
use sos_core::sos::SosScheduler;
use sos_core::{cache, ExperimentSpec, SosConfig};

fn bench_config() -> SosConfig {
    SosConfig {
        // Heavily reduced scale: the cold path simulates every cycle, and
        // criterion runs the closure many times.
        cycle_scale: 50_000,
        calibration_cycles: 5_000,
        ..SosConfig::default()
    }
}

fn spec() -> ExperimentSpec {
    "Jsb(4,2,2)".parse().expect("valid label")
}

fn cold_evaluation(c: &mut Criterion) {
    cache::disable();
    let cfg = bench_config();
    let spec = spec();
    c.bench_function("evaluate_experiment_cold_4_2_2", |b| {
        b.iter(|| SosScheduler::evaluate_experiment(&spec, &cfg));
    });
}

fn warm_evaluation(c: &mut Criterion) {
    let cfg = bench_config();
    let spec = spec();
    cache::clear();
    cache::enable();
    // Prime: the first evaluation fills the cache; iterations then measure
    // the pure lookup-and-merge path.
    let _ = SosScheduler::evaluate_experiment(&spec, &cfg);
    c.bench_function("evaluate_experiment_warm_4_2_2", |b| {
        b.iter(|| SosScheduler::evaluate_experiment(&spec, &cfg));
    });
    cache::disable();
    cache::clear();
}

criterion_group!(benches, cold_evaluation, warm_evaluation);
criterion_main!(benches);

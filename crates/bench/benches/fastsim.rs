//! Criterion benchmark for phase-aware sampled fast simulation
//! (`smtsim::fastsim`): sim-cycle throughput of a steady fixed-schedule
//! workload, full detail vs fast mode at several stability thresholds.
//!
//! The scenario is the extrapolator's home turf — a steady 8-job pool on a
//! round-robin schedule, no resampling — so the `fastsim/…` ratios are the
//! speedup ceiling (the tentpole's 10–100× claim). `fastsim-compare` holds
//! the matching end-to-end open-system numbers with accuracy bounds.
//!
//! Throughput is reported in simulated cycles (`Throughput::Elements`), so
//! Criterion's `elem/s` readout is directly sim-cycles/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smtsim::{FastSimPolicy, MachineConfig};
use sos_core::job::JobPool;
use sos_core::runner::Runner;
use sos_core::schedule::Schedule;
use workloads::spec::Benchmark;
use workloads::JobSpec;

const SMT: usize = 4;
const TIMESLICE: u64 = 5_000;
const ROTATIONS: usize = 50;

fn specs() -> Vec<JobSpec> {
    [
        Benchmark::Fp,
        Benchmark::Gcc,
        Benchmark::Mg,
        Benchmark::Go,
        Benchmark::Swim,
        Benchmark::Is,
        Benchmark::Array,
        Benchmark::Fp,
    ]
    .iter()
    .map(|&b| JobSpec::single(b))
    .collect()
}

fn runner(fastsim: Option<FastSimPolicy>) -> (Runner, Schedule) {
    let specs = specs();
    let schedule = Schedule::new((0..specs.len()).collect(), SMT, SMT);
    let pool = JobPool::from_specs(&specs, 7);
    let mut r = Runner::new(MachineConfig::alpha21264_like(SMT), pool, TIMESLICE);
    r.set_fastsim(fastsim);
    (r, schedule)
}

fn schedule_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastsim");
    // Cycles simulated per iteration: rotations × slices/rotation × slice.
    let slices_per_rotation = (specs().len() / SMT) as u64;
    group.throughput(Throughput::Elements(
        ROTATIONS as u64 * slices_per_rotation * TIMESLICE,
    ));

    group.bench_function("detailed", |b| {
        let (mut r, s) = runner(None);
        b.iter(|| r.run_schedule(&s, ROTATIONS));
    });
    for threshold in [0.05, 0.10, 0.20] {
        group.bench_with_input(
            BenchmarkId::new("fast", format!("{threshold}")),
            &threshold,
            |b, &threshold| {
                let (mut r, s) = runner(Some(FastSimPolicy::with_threshold(threshold)));
                // Let the phase detector lock before measuring, as a
                // long-running simulation would have.
                let _ = r.run_schedule(&s, 8);
                b.iter(|| r.run_schedule(&s, ROTATIONS));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, schedule_throughput);
criterion_main!(benches);

//! Shared helper for the `sos-serve` integration tests: spawn the daemon on
//! an ephemeral port and discover the address from its banner line.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Spawns `sos-serve --port 0 <extra>` with the evaluation cache disabled
/// (tests must not read or write the repo's `results/cache/`), and returns
/// the child plus the `host:port` it bound.
///
/// Unless `extra` already carries one, each daemon gets its own throwaway
/// `--snapshot-dir`: the default is the repo-relative `results/serve/`,
/// which concurrently-running tests would otherwise share (one test's
/// daemon restoring another's snapshot).
pub fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sos-serve"));
    cmd.args(["--port", "0"]).args(extra);
    if !extra.contains(&"--snapshot-dir") {
        let dir = std::env::temp_dir().join(format!(
            "sos-serve-scratch-{}-{}",
            std::process::id(),
            SPAWNS.fetch_add(1, Ordering::Relaxed)
        ));
        cmd.arg("--snapshot-dir").arg(dir);
    }
    let mut child = cmd
        .env("SOS_CACHE", "off")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sos-serve");
    let stdout = child.stdout.take().expect("daemon stdout is piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read daemon banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .unwrap_or_default()
        .to_string();
    assert!(
        addr.contains(':'),
        "unexpected daemon banner: {banner:?} (expected 'sos-serve listening on HOST:PORT')"
    );
    (child, addr)
}

/// Waits up to `timeout` for the daemon to exit, returning its status;
/// kills it and panics on timeout so a hung drain can't wedge the suite.
pub fn wait_exit(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("sos-serve did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

//! Replay across `parallel_map` worker counts.
//!
//! Each experiment is evaluated on its own single-threaded simulator seeded
//! only by `SosConfig::seed`, so the fan-out width must be invisible in the
//! results: running the same specs with one worker and with a pool must
//! produce byte-identical `ExperimentReport` JSON. A divergence here means
//! some experiment state leaked across threads (global state, iteration
//! order, or a wall-clock dependence).

use sos_bench::parallel_map_with_workers;
use sos_core::sos::ExperimentReport;
use sos_core::{ExperimentSpec, SosConfig, SosScheduler};

fn quick_cfg() -> SosConfig {
    SosConfig {
        cycle_scale: 20_000,
        calibration_cycles: 15_000,
        ..SosConfig::default()
    }
}

fn report_json(specs: &[ExperimentSpec], workers: usize) -> Vec<String> {
    let cfg = quick_cfg();
    let reports: Vec<ExperimentReport> = parallel_map_with_workers(specs.to_vec(), workers, |s| {
        SosScheduler::evaluate_experiment(&s, &cfg)
    });
    reports
        .iter()
        .map(|r| serde_json::to_string(r).expect("report serializes"))
        .collect()
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let specs: Vec<ExperimentSpec> = ["Jsb(4,2,2)", "Jsb(5,2,2)", "Jsb(6,3,3)"]
        .iter()
        .map(|s| s.parse().expect("valid spec"))
        .collect();
    let serial = report_json(&specs, 1);
    let pooled = report_json(&specs, 3);
    assert_eq!(
        serial, pooled,
        "experiment reports must not depend on the worker-pool width"
    );
}

//! Snapshot/restore integration test: SIGKILL the daemon mid-run, restart
//! it on the same state directory, and check that completed-job accounting
//! resumes from the latest snapshot and that the re-queued in-flight jobs
//! still complete.

mod common;

use common::{spawn_daemon, wait_exit};
use sos_bench::serve::{Client, Request, Snapshot};
use std::time::{Duration, Instant};

#[test]
fn kill_then_restart_resumes_from_latest_snapshot() {
    let dir = std::env::temp_dir().join(format!("sos-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().expect("utf-8 temp path");

    let common_args = [
        "--snapshot-dir",
        dir_str,
        "--snapshot-every",
        "1",
        "--calibration-cycles",
        "4000",
        "--seed",
        "7",
    ];

    // First life: submit 6 jobs, wait until the snapshot shows progress
    // with work still in flight, then SIGKILL (no drain, no final
    // snapshot — exactly the crash the restore path is for).
    let (mut daemon, addr) = spawn_daemon(&common_args);
    let mut client = Client::connect(&addr).expect("connect");
    const JOBS: u64 = 6;
    for _ in 0..JOBS {
        let resp = client
            .request(&Request::submit_cycles("gcc", 400_000, false))
            .expect("reply");
        assert!(resp.ok, "admission failed: {:?}", resp.error);
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(snap) = Snapshot::load(&dir) {
            // Kill as soon as progress is visible; ideally with work still
            // in flight, but a snapshot that already completed everything
            // still exercises restore-of-completed-accounting.
            if !snap.completed.is_empty() {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no usable snapshot appeared in {}",
            dir.display()
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    daemon.kill().expect("SIGKILL daemon");
    let _ = daemon.wait();
    // The daemon kept running (and snapshotting) between the poll above and
    // the SIGKILL; what restore will see is the file as left on disk.
    let snap_at_kill = Snapshot::load(&dir).expect("snapshot survives the kill");
    assert_eq!(snap_at_kill.submitted, JOBS);
    let completed_at_kill = snap_at_kill.completed.len() as u64;
    assert!(completed_at_kill >= 1);

    // Second life: same state directory. Completed accounting must be
    // restored exactly; in-flight jobs are re-queued and finish.
    let (mut daemon, addr) = spawn_daemon(&common_args);
    let mut client = Client::connect(&addr).expect("connect");
    let status = client
        .request(&Request::verb("status"))
        .expect("reply")
        .status
        .expect("status payload");
    assert_eq!(status.restored, completed_at_kill);
    assert_eq!(status.submitted, JOBS);
    assert!(status.completed >= completed_at_kill);

    let resp = client.request(&Request::verb("drain")).expect("reply");
    assert!(resp.ok);
    let status = client
        .request(&Request::verb("status"))
        .expect("reply")
        .status
        .expect("status payload");
    assert_eq!(status.live, 0);
    assert_eq!(
        status.completed, JOBS,
        "every job submitted before the crash must be accounted completed after restart"
    );

    let stats = client
        .request(&Request::verb("stats"))
        .expect("reply")
        .stats
        .expect("stats payload");
    assert_eq!(stats.completed, JOBS);
    assert!(stats.response.p99.is_finite());

    let resp = client.request(&Request::verb("shutdown")).expect("reply");
    assert!(resp.ok);
    let status = wait_exit(&mut daemon, Duration::from_secs(60));
    assert!(status.success(), "daemon exited {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

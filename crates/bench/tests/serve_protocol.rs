//! Protocol round-trip tests against a live `sos-serve` daemon: malformed
//! input gets a diagnostic error reply (not a dropped connection), a full
//! queue answers with explicit backpressure, and a drain completes every
//! in-flight job before replying.

mod common;

use common::{spawn_daemon, wait_exit};
use sos_bench::serve::{Client, Request};
use std::time::Duration;

/// Cycle budgets are tiny: these run against a debug-profile simulator.
const CALIBRATION: &[&str] = &["--calibration-cycles", "4000"];

#[test]
fn malformed_and_unknown_requests_get_error_replies() {
    let (mut daemon, addr) = spawn_daemon(CALIBRATION);
    let mut client = Client::connect(&addr).expect("connect");

    // Unparsable JSON: diagnostic reply, connection stays usable.
    let resp = client.send_line("{this is not json").expect("reply");
    assert!(!resp.ok);
    assert!(
        resp.error.as_deref().unwrap_or("").contains("unparsable"),
        "unexpected error: {:?}",
        resp.error
    );

    // Unknown verb.
    let resp = client.request(&Request::verb("frobnicate")).expect("reply");
    assert!(!resp.ok);
    assert!(resp.error.as_deref().unwrap_or("").contains("unknown cmd"));

    // Submit without a payload.
    let resp = client.request(&Request::verb("submit")).expect("reply");
    assert!(!resp.ok);
    assert!(resp.error.as_deref().unwrap_or("").contains("bench"));

    // Submit for a benchmark that does not exist.
    let resp = client
        .request(&Request::submit_cycles("no-such-bench", 10_000, false))
        .expect("reply");
    assert!(!resp.ok);
    assert!(resp
        .error
        .as_deref()
        .unwrap_or("")
        .contains("unknown bench"));

    // The connection survived all of the above.
    let resp = client.request(&Request::verb("status")).expect("reply");
    assert!(resp.ok);
    let status = resp.status.expect("status payload");
    assert_eq!(status.submitted, 0);
    assert_eq!(status.live, 0);

    let resp = client.request(&Request::verb("shutdown")).expect("reply");
    assert!(resp.ok);
    let status = wait_exit(&mut daemon, Duration::from_secs(60));
    assert!(status.success(), "daemon exited {status:?}");
}

#[test]
fn full_queue_answers_backpressure() {
    let mut args = vec!["--queue-cap", "2"];
    args.extend_from_slice(CALIBRATION);
    let (mut daemon, addr) = spawn_daemon(&args);
    let mut client = Client::connect(&addr).expect("connect");

    // Two long jobs fill the system; they cannot complete between requests.
    for _ in 0..2 {
        let resp = client
            .request(&Request::submit_cycles("gcc", 50_000_000, false))
            .expect("reply");
        assert!(resp.ok, "admission failed: {:?}", resp.error);
    }
    let resp = client
        .request(&Request::submit_cycles("gcc", 50_000_000, false))
        .expect("reply");
    assert!(!resp.ok, "third submit must be refused at cap 2");
    assert_eq!(resp.error.as_deref(), Some("backpressure"));

    let status = client
        .request(&Request::verb("status"))
        .expect("reply")
        .status
        .expect("status payload");
    assert_eq!(status.live, 2);
    assert_eq!(status.rejected, 1);

    // Draining those 50M-cycle jobs would take minutes in a debug build;
    // backpressure is what was under test, so just kill the daemon.
    daemon.kill().expect("kill daemon");
    let _ = daemon.wait();
}

#[test]
fn drain_completes_all_inflight_jobs_then_refuses_admission() {
    let (mut daemon, addr) = spawn_daemon(CALIBRATION);
    let mut client = Client::connect(&addr).expect("connect");

    for _ in 0..4 {
        let resp = client
            .request(&Request::submit_cycles("mg", 100_000, false))
            .expect("reply");
        assert!(resp.ok, "admission failed: {:?}", resp.error);
    }

    // Drain blocks until every in-flight job has departed.
    let resp = client.request(&Request::verb("drain")).expect("reply");
    assert!(resp.ok);
    let status = client
        .request(&Request::verb("status"))
        .expect("reply")
        .status
        .expect("status payload");
    assert_eq!(status.live, 0, "drain replied with jobs still in flight");
    assert_eq!(status.completed, 4);
    assert!(status.draining);

    // Admission is closed once draining.
    let resp = client
        .request(&Request::submit_cycles("gcc", 100_000, false))
        .expect("reply");
    assert!(!resp.ok);
    assert_eq!(resp.error.as_deref(), Some("draining"));

    // Stats over the drained run: 4 records, finite latency summary.
    let stats = client
        .request(&Request::verb("stats"))
        .expect("reply")
        .stats
        .expect("stats payload");
    assert_eq!(stats.completed, 4);
    assert!(stats.mean_response.is_finite() && stats.mean_response > 0.0);
    assert!(stats.response.p50 <= stats.response.p95);
    assert!(stats.response.p95 <= stats.response.p99);
    // Slowdown hovers near 1 for a lightly-loaded machine; the tiny
    // calibration window makes the solo-IPC denominator noisy, so only
    // sanity-bound it rather than asserting the ideal >= 1.
    assert!(
        stats.mean_slowdown.is_finite() && stats.mean_slowdown > 0.5,
        "implausible slowdown {}",
        stats.mean_slowdown
    );

    let resp = client.request(&Request::verb("shutdown")).expect("reply");
    assert!(resp.ok);
    let status = wait_exit(&mut daemon, Duration::from_secs(60));
    assert!(status.success(), "daemon exited {status:?}");
}

//! End-to-end test for the `sos-trace` binary: run a small experiment and
//! validate that the metrics JSONL parses line by line and the Chrome trace
//! is structurally Perfetto-loadable (object format, `traceEvents` array,
//! known `ph` codes, balanced B/E spans).

use sos_core::telemetry::{Event, Metric};
use std::process::Command;

#[test]
fn sos_trace_produces_valid_jsonl_and_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("sos-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.jsonl");
    let events_path = dir.join("events.jsonl");

    // Aggressively scaled down: the test binary is a debug build, so keep
    // the simulated-cycle budget tiny. The telemetry structure under test is
    // identical at any scale.
    let output = Command::new(env!("CARGO_BIN_EXE_sos-trace"))
        .arg("--scale")
        .arg("100000")
        .arg("--calibration")
        .arg("4000")
        .arg("--trace")
        .arg(&trace_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .arg("--events")
        .arg(&events_path)
        .arg("Jsb(6,3,3)")
        .output()
        .expect("sos-trace runs");
    assert!(
        output.status.success(),
        "sos-trace failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Jsb(6,3,3)"), "{stdout}");

    // Metrics: every line is a self-contained Metric object.
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics file");
    let metrics: Vec<Metric> = metrics_text
        .lines()
        .map(|l| serde_json::from_str(l).expect("metric line parses"))
        .collect();
    assert!(!metrics.is_empty());
    assert!(metrics.iter().any(|m| m.name == "smtsim.cycles"));
    assert!(metrics.iter().any(|m| m.name == "sos.experiments"));

    // Events: every line is a self-contained Event object.
    let events_text = std::fs::read_to_string(&events_path).expect("events file");
    let mut events = 0usize;
    for line in events_text.lines() {
        let _e: Event = serde_json::from_str(line).expect("event line parses");
        events += 1;
    }
    assert!(events > 0);

    // Chrome trace: object format with a traceEvents array whose entries all
    // carry a known phase code, and whose B/E events balance.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file");
    let trace: serde::Value = serde_json::from_str(&trace_text).expect("trace parses");
    let top = trace.as_object().expect("trace is an object");
    assert!(top.iter().any(|(k, _)| k == "traceEvents"));
    let trace_events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents is an array");
    assert!(!trace_events.is_empty());
    let (mut begins, mut ends) = (0u64, 0u64);
    for entry in trace_events {
        let ph = entry
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("entry has ph");
        assert!(
            matches!(ph, "B" | "E" | "i" | "C" | "M"),
            "unknown phase {ph}"
        );
        assert!(entry.get("pid").is_some());
        assert!(entry.get("tid").is_some());
        if ph != "M" {
            assert!(entry.get("ts").and_then(|v| v.as_f64()).is_some());
        }
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            _ => {}
        }
    }
    assert!(begins > 0);
    assert_eq!(begins, ends, "unbalanced spans in Chrome trace");

    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end tests of the live observability surface: the `metrics` verb
//! (versioned snapshot + Prometheus exposition), per-verb request series,
//! per-class protocol error counters, and the `sos-top` snapshot mode.

mod common;

use common::{spawn_daemon, wait_exit};
use sos_bench::serve::{Client, Request};
use sos_core::metrics::METRICS_VERSION;
use std::time::Duration;

/// Cycle budgets are tiny: these run against a debug-profile simulator.
const CALIBRATION: &[&str] = &["--calibration-cycles", "4000"];

#[test]
fn metrics_verb_reports_live_series_and_exposition() {
    let (mut daemon, addr) = spawn_daemon(CALIBRATION);
    let mut client = Client::connect(&addr).expect("connect");

    for _ in 0..4 {
        let resp = client
            .request(&Request::submit_cycles("mg", 100_000, false))
            .expect("reply");
        assert!(resp.ok, "admission failed: {:?}", resp.error);
    }
    let resp = client.request(&Request::verb("drain")).expect("reply");
    assert!(resp.ok);

    let reply = client.request(&Request::verb("metrics")).expect("reply");
    assert!(reply.ok);
    let m = reply.metrics.expect("metrics payload");
    let snap = &m.snapshot;
    assert_eq!(snap.version, METRICS_VERSION);
    assert!(snap.now_cycles > 0);

    // Request and lifecycle counters.
    assert_eq!(snap.counters["serve.requests.submit"], 4);
    assert_eq!(snap.counters["serve.submitted"], 4);
    assert_eq!(snap.counters["serve.completed"], 4);
    assert_eq!(snap.counters["serve.requests.drain"], 1);
    assert!(snap.counters["engine.timeslices"] > 0);
    assert_eq!(snap.gauges["serve.queue_depth"], 0.0);

    // Response-time histogram: all four departures, exact quantiles in
    // nondecreasing order.
    let h = &snap.histograms["serve.response_cycles"];
    assert_eq!(h.count, 4);
    assert!(h.exact, "4 samples must be under the window sample cap");
    assert!(h.quantiles.p50 > 0.0);
    assert!(h.quantiles.p50 <= h.quantiles.p95);
    assert!(h.quantiles.p95 <= h.quantiles.p99);
    assert!(h.quantiles.p99 <= h.quantiles.p999);
    assert!(!h.buckets.is_empty());
    assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 4);

    // Both SLOs saw every departure.
    assert_eq!(snap.slos["serve.response_cycles"].total, 4);
    assert_eq!(snap.slos["serve.slowdown_x100"].total, 4);
    let slo = &snap.slos["serve.response_cycles"];
    assert!((0.0..=1.0).contains(&slo.attainment));

    // The exposition carries the same data in Prometheus text format.
    assert!(m.prometheus.contains("# TYPE sos_serve_submitted counter"));
    assert!(m.prometheus.contains("sos_serve_submitted 4"));
    assert!(m
        .prometheus
        .contains("# TYPE sos_serve_response_cycles histogram"));
    assert!(m.prometheus.contains("sos_serve_response_cycles_count 4"));
    assert!(m
        .prometheus
        .contains("sos_serve_response_cycles_bucket{le=\"+Inf\"} 4"));
    assert!(m
        .prometheus
        .contains("sos_serve_response_cycles_slo_attainment"));

    let resp = client.request(&Request::verb("shutdown")).expect("reply");
    assert!(resp.ok);
    let status = wait_exit(&mut daemon, Duration::from_secs(60));
    assert!(status.success(), "daemon exited {status:?}");
}

#[test]
fn protocol_errors_are_counted_by_class() {
    let (mut daemon, addr) = spawn_daemon(CALIBRATION);
    let mut client = Client::connect(&addr).expect("connect");

    // One error of each class that needs no queue pressure.
    assert!(!client.send_line("{not json").expect("reply").ok);
    assert!(
        !client
            .request(&Request::verb("frobnicate"))
            .expect("reply")
            .ok
    );
    assert!(!client.request(&Request::verb("submit")).expect("reply").ok);
    assert!(
        !client
            .request(&Request::submit_cycles("no-such-bench", 10_000, false))
            .expect("reply")
            .ok
    );
    let resp = client.request(&Request::verb("drain")).expect("reply");
    assert!(resp.ok);
    let resp = client
        .request(&Request::submit_cycles("gcc", 10_000, false))
        .expect("reply");
    assert_eq!(resp.error.as_deref(), Some("draining"));

    // The stats verb exposes the per-class totals...
    let stats = client
        .request(&Request::verb("stats"))
        .expect("reply")
        .stats
        .expect("stats payload");
    let errors = stats.errors.expect("error classes in stats");
    assert_eq!(errors["unparsable"], 1);
    assert_eq!(errors["unknown_cmd"], 1);
    assert_eq!(errors["bad_submit"], 2, "missing bench + unknown bench");
    assert_eq!(errors["draining"], 1);
    assert_eq!(errors["backpressure"], 0);

    // ...and the metrics snapshot carries the same counters.
    let m = client
        .request(&Request::verb("metrics"))
        .expect("reply")
        .metrics
        .expect("metrics payload");
    assert_eq!(m.snapshot.counters["serve.errors.unparsable"], 1);
    assert_eq!(m.snapshot.counters["serve.errors.unknown_cmd"], 1);
    assert_eq!(m.snapshot.counters["serve.errors.bad_submit"], 2);
    assert_eq!(m.snapshot.counters["serve.errors.draining"], 1);
    assert_eq!(m.snapshot.counters["serve.requests.unknown"], 1);

    let resp = client.request(&Request::verb("shutdown")).expect("reply");
    assert!(resp.ok);
    let status = wait_exit(&mut daemon, Duration::from_secs(60));
    assert!(status.success(), "daemon exited {status:?}");
}

#[test]
fn sos_top_once_renders_a_dashboard() {
    let (mut daemon, addr) = spawn_daemon(CALIBRATION);
    let mut client = Client::connect(&addr).expect("connect");
    let resp = client
        .request(&Request::submit_cycles("mg", 100_000, false))
        .expect("reply");
    assert!(resp.ok);
    let resp = client.request(&Request::verb("drain")).expect("reply");
    assert!(resp.ok);

    let once = std::process::Command::new(env!("CARGO_BIN_EXE_sos-top"))
        .args(["--addr", &addr, "--once"])
        .output()
        .expect("run sos-top --once");
    assert!(once.status.success(), "sos-top --once exited {once:?}");
    let text = String::from_utf8_lossy(&once.stdout);
    assert!(text.contains("COUNTER"), "missing counters table: {text}");
    assert!(text.contains("serve.submitted"));
    assert!(text.contains("serve.response_cycles"));
    assert!(text.contains("SLO"));

    let prom = std::process::Command::new(env!("CARGO_BIN_EXE_sos-top"))
        .args(["--addr", &addr, "--prom"])
        .output()
        .expect("run sos-top --prom");
    assert!(prom.status.success(), "sos-top --prom exited {prom:?}");
    let text = String::from_utf8_lossy(&prom.stdout);
    assert!(text.contains("# TYPE sos_serve_submitted counter"));

    let resp = client.request(&Request::verb("shutdown")).expect("reply");
    assert!(resp.ok);
    let status = wait_exit(&mut daemon, Duration::from_secs(60));
    assert!(status.success(), "daemon exited {status:?}");
}

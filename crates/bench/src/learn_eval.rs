//! The learned-predictor evaluation sweep behind
//! `predictor_matrix --learned/--bandit`.
//!
//! Runs a grid of paper experiments × seeds **sequentially** through one
//! shared [`Learner`], so the online regressor and the contextual bandit
//! are measured prequentially: every pick is made with the model state
//! *before* that experiment's outcomes are folded in, exactly as a
//! production scheduler would experience them. The sweep order is
//! seed-major (all grid scenarios at the first seed, then the next seed),
//! so later seeds see a trained model — the honest continual-learning
//! trajectory, not a per-scenario reset.
//!
//! The resulting [`LearnEvalSummary`] is wall-clock-free: two runs of the
//! same grid, scale, and seeds serialize byte-identically (the CI
//! determinism gate `cmp`s exactly this artifact).

use crate::serve::{LearnBenchRecord, LEARN_BENCH_RECORD_VERSION};
use serde::{Deserialize, Serialize};
use sos_core::learn::{LearnConfig, LearnSummary, Learner};
use sos_core::sos::{ExperimentReport, SosConfig, SosScheduler};
use sos_core::{ExperimentSpec, PredictorKind};

/// Default seeds pooled into a sweep (the evaluation protocol requires at
/// least 3; six give the continual learner a long enough trajectory that
/// its pooled mean is not dominated by the cold-start phases).
pub const DEFAULT_SEEDS: [u64; 6] = [0x0505, 0x0506, 0x0507, 0x0508, 0x0509, 0x050a];

/// Resolves a grid name to its experiment list.
///
/// * `small` — one cheap scenario per SMT level (2 and 4 contexts), for CI.
/// * `wide` — all 13 paper experiments of Table 2: every jobmix class,
///   SMT 2/3/4/6, both parallel variants, big and little timeslices.
pub fn grid(name: &str) -> Option<Vec<ExperimentSpec>> {
    match name.to_ascii_lowercase().as_str() {
        "small" => Some(
            ["Jsb(4,2,2)", "Jsb(5,2,1)", "Jsb(8,4,4)"]
                .iter()
                .map(|l| l.parse().expect("grid label parses"))
                .collect(),
        ),
        "wide" => Some(ExperimentSpec::all_paper_experiments()),
        _ => None,
    }
}

/// The sweep configuration.
#[derive(Clone, Debug)]
pub struct LearnEvalOptions {
    /// Grid name (see [`grid`]).
    pub grid: String,
    /// Seeds, swept in order (the learner persists across all of them).
    pub seeds: Vec<u64>,
    /// Cycle-scale divisor for every experiment.
    pub scale: u64,
    /// Learner configuration (defaults match `LearnConfig::default()`).
    pub learn: LearnConfig,
}

impl LearnEvalOptions {
    /// A sweep of `grid` at `scale` with the default seeds and learner.
    pub fn new(grid: &str, scale: u64) -> Self {
        LearnEvalOptions {
            grid: grid.to_string(),
            seeds: DEFAULT_SEEDS.to_vec(),
            scale,
            learn: LearnConfig::default(),
        }
    }
}

/// One predictor's pooled result over the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictorRow {
    /// Predictor name (`PredictorKind::name`).
    pub name: String,
    /// Mean realized symbios WS of its picks over all experiments.
    pub mean_ws: f64,
    /// Percent over the pooled oblivious-average WS.
    pub pct_vs_avg: f64,
}

/// One experiment × seed row of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Experiment label (paper notation).
    pub spec: String,
    /// Seed the experiment ran under.
    pub seed: u64,
    /// The bandit's jobmix-class context string.
    pub context: String,
    /// Oblivious-average WS (the random-scheduler expectation).
    pub avg_ws: f64,
    /// Best candidate WS.
    pub best_ws: f64,
    /// Sampling-oracle WS.
    pub oracle_ws: f64,
    /// WS realized by the online regressor's pick.
    pub learned_ws: f64,
    /// WS realized by the contextual bandit's pick.
    pub bandit_ws: f64,
}

/// The deterministic sweep artifact written to `results/learn/`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LearnEvalSummary {
    /// Grid name.
    pub grid: String,
    /// Cycle-scale divisor.
    pub scale: u64,
    /// Seeds pooled, in sweep order.
    pub seeds: Vec<u64>,
    /// Experiments evaluated (grid × seeds).
    pub experiments: u64,
    /// Every predictor's pooled row (ten fixed + Learned + Bandit), in
    /// descending mean-WS order.
    pub predictors: Vec<PredictorRow>,
    /// Pooled sampling-oracle mean WS (the ceiling).
    pub oracle_mean_ws: f64,
    /// The best fixed predictor and its pooled mean WS.
    pub best_fixed: String,
    pub best_fixed_ws: f64,
    /// The worst fixed predictor and its pooled mean WS.
    pub worst_fixed: String,
    pub worst_fixed_ws: f64,
    /// Pooled mean WS of the online regressor.
    pub learned_ws: f64,
    /// Pooled mean WS of the contextual bandit.
    pub bandit_ws: f64,
    /// The learner's final state summary.
    pub learner: LearnSummary,
    /// Every experiment × seed row, in sweep order.
    pub per_experiment: Vec<ExperimentRow>,
}

impl LearnEvalSummary {
    /// The PR acceptance gate: the learned model or the bandit matches the
    /// best single fixed predictor, and the bandit clears the worst fixed
    /// predictor by at least 2%. The first clause holds on the default
    /// pool; the second is reported honestly even though it is structurally
    /// out of reach at this simulator scale — the fixed-predictor spread
    /// compresses to under 2%, which places `worst × 1.02` *above* the
    /// sampling oracle (see the Learned-predictors section of
    /// EXPERIMENTS.md for the measured margins).
    pub fn meets_acceptance(&self) -> bool {
        let best_learned = self.learned_ws.max(self.bandit_ws);
        best_learned >= self.best_fixed_ws && self.bandit_ws >= self.worst_fixed_ws * 1.02
    }

    /// The cross-PR bench line for this sweep (`kind:"learn"`).
    pub fn to_bench_record(&self, unix_secs: u64) -> LearnBenchRecord {
        LearnBenchRecord {
            schema: LEARN_BENCH_RECORD_VERSION,
            kind: "learn".to_string(),
            unix_secs,
            grid: self.grid.clone(),
            seeds: self.seeds.clone(),
            experiments: self.experiments,
            best_fixed: self.best_fixed.clone(),
            best_fixed_ws: self.best_fixed_ws,
            worst_fixed: self.worst_fixed.clone(),
            worst_fixed_ws: self.worst_fixed_ws,
            learned_ws: self.learned_ws,
            bandit_ws: self.bandit_ws,
            oracle_ws: self.oracle_mean_ws,
            train_updates: self.learner.train_updates,
            err_ewma: self.learner.err_ewma,
            bandit_pulls: self.learner.bandit_pulls,
            bandit_regret: self.learner.bandit_regret,
            contexts: self.learner.contexts as u64,
        }
    }
}

/// Runs the sweep. Returns the full reports (for the league table) and the
/// deterministic summary artifact.
///
/// # Panics
/// Panics on an unknown grid name or an empty seed list.
pub fn run(opts: &LearnEvalOptions) -> (Vec<ExperimentReport>, LearnEvalSummary) {
    let specs =
        grid(&opts.grid).unwrap_or_else(|| panic!("unknown grid {:?} (small|wide)", opts.grid));
    assert!(!opts.seeds.is_empty(), "the sweep needs at least one seed");
    let mut learner = Learner::new(opts.learn);
    let mut reports = Vec::with_capacity(specs.len() * opts.seeds.len());
    let mut per_experiment = Vec::with_capacity(reports.capacity());
    for &seed in &opts.seeds {
        for spec in &specs {
            let cfg = SosConfig {
                cycle_scale: opts.scale,
                seed,
                ..SosConfig::default()
            };
            let report = SosScheduler::evaluate_experiment_learned(spec, &cfg, &mut learner, 0);
            per_experiment.push(ExperimentRow {
                spec: spec.label(),
                seed,
                context: SosScheduler::experiment_context(spec),
                avg_ws: report.average_ws(),
                best_ws: report.best_ws(),
                oracle_ws: report.oracle_ws(),
                learned_ws: report.ws_with(PredictorKind::Learned),
                bandit_ws: report.ws_with(PredictorKind::Bandit),
            });
            reports.push(report);
        }
    }

    let n = reports.len() as f64;
    let mean =
        |f: &dyn Fn(&ExperimentReport) -> f64| -> f64 { reports.iter().map(f).sum::<f64>() / n };
    let avg_pool = mean(&|r| r.average_ws());
    let mut predictors: Vec<PredictorRow> = PredictorKind::EXTENDED
        .iter()
        .map(|&p| {
            let mean_ws = mean(&|r| r.ws_with(p));
            PredictorRow {
                name: p.name().to_string(),
                mean_ws,
                pct_vs_avg: crate::pct_over(mean_ws, avg_pool),
            }
        })
        .collect();
    let fixed = |name: &str| !matches!(name, "Learned" | "Bandit");
    let best_fixed = predictors
        .iter()
        .filter(|r| fixed(&r.name))
        .max_by(|a, b| a.mean_ws.total_cmp(&b.mean_ws))
        .expect("fixed predictors present")
        .clone();
    let worst_fixed = predictors
        .iter()
        .filter(|r| fixed(&r.name))
        .min_by(|a, b| a.mean_ws.total_cmp(&b.mean_ws))
        .expect("fixed predictors present")
        .clone();
    let row_ws = |name: &str| {
        predictors
            .iter()
            .find(|r| r.name == name)
            .expect("extended row present")
            .mean_ws
    };
    let (learned_ws, bandit_ws) = (row_ws("Learned"), row_ws("Bandit"));
    predictors.sort_by(|a, b| b.mean_ws.total_cmp(&a.mean_ws));

    let summary = LearnEvalSummary {
        grid: opts.grid.clone(),
        scale: opts.scale,
        seeds: opts.seeds.clone(),
        experiments: reports.len() as u64,
        predictors,
        oracle_mean_ws: mean(&|r| r.oracle_ws()),
        best_fixed: best_fixed.name,
        best_fixed_ws: best_fixed.mean_ws,
        worst_fixed: worst_fixed.name,
        worst_fixed_ws: worst_fixed.mean_ws,
        learned_ws,
        bandit_ws,
        learner: learner.summary(),
        per_experiment,
    };
    (reports, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_resolve() {
        assert_eq!(grid("small").unwrap().len(), 3);
        assert_eq!(grid("WIDE").unwrap().len(), 13);
        assert!(grid("medium").is_none());
    }

    #[test]
    fn sweep_is_deterministic_and_covers_learned_kinds() {
        let opts = LearnEvalOptions {
            grid: "small".to_string(),
            seeds: vec![7, 8],
            scale: 50_000,
            learn: LearnConfig::default(),
        };
        let (reports, summary) = run(&opts);
        assert_eq!(reports.len(), 6);
        assert_eq!(summary.experiments, 6);
        assert_eq!(summary.predictors.len(), PredictorKind::EXTENDED.len());
        assert!(summary.learner.train_updates > 0);
        assert!(summary.learner.bandit_pulls >= 6);
        // Every experiment row stays inside the candidate WS envelope.
        for row in &summary.per_experiment {
            assert!(row.learned_ws <= row.best_ws + 1e-12, "{row:?}");
            assert!(row.bandit_ws <= row.best_ws + 1e-12, "{row:?}");
        }
        // Byte-identical replay: same grid, scale, seeds → same artifact.
        let (_, again) = run(&opts);
        assert_eq!(
            serde_json::to_string(&summary).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn bench_record_mirrors_summary() {
        let opts = LearnEvalOptions {
            grid: "small".to_string(),
            seeds: vec![3],
            scale: 50_000,
            learn: LearnConfig::default(),
        };
        let (_, summary) = run(&opts);
        let rec = summary.to_bench_record(123);
        assert_eq!(rec.kind, "learn");
        assert_eq!(rec.schema, LEARN_BENCH_RECORD_VERSION);
        assert_eq!(rec.unix_secs, 123);
        assert_eq!(rec.experiments, summary.experiments);
        assert_eq!(rec.learned_ws, summary.learned_ws);
        assert_eq!(rec.contexts, summary.learner.contexts as u64);
    }
}

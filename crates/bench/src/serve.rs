//! The `sos-serve` wire protocol, snapshot format, and client helper.
//!
//! `sos-serve` speaks JSON lines over a local TCP socket: each request is
//! one JSON object on one line, answered by exactly one JSON object on one
//! line. Verbs are carried in the `cmd` field:
//!
//! * `submit` — admit a job (`bench`, plus `cycles` of solo work *or*
//!   explicit `instructions`, and optional `phased`). Replies with the job
//!   id, or `ok:false` with `error:"backpressure"` when the system is at
//!   its admission cap, or `error:"draining"` once a drain has started.
//! * `status` — queue depth, counters, simulated clock.
//! * `stats` — per-job latency summary: mean/p50/p95/p99 response time and
//!   slowdown, exact (from completed-job records) and approximate (from the
//!   live log2-bucket histograms), plus per-class protocol error counts.
//! * `metrics` — the live observability surface: a versioned
//!   `sos_core::metrics::MetricsSnapshot` (counters, gauges, windowed
//!   histograms with p50/p95/p99/p999, SLO attainment and burn rate) plus a
//!   Prometheus-style text exposition. Polled by `sos-top`.
//! * `fastsim` — toggle phase-aware sampled fast simulation at runtime
//!   (`fast` plus optional `fast_threshold`); replies with the active
//!   policy echoed in `status`.
//! * `drain` — stop admitting; the reply is deferred until every in-flight
//!   job has completed.
//! * `shutdown` — drain, snapshot, reply, and exit 0.
//!
//! Any unparsable or unknown request gets `ok:false` with a diagnostic
//! `error`; the connection stays usable. All numbers are simulated cycles —
//! the daemon runs the machine as fast as the host allows.
//!
//! The snapshot (written atomically to `<dir>/snapshot.json`) carries the
//! daemon's accounting across restarts: completed-job records are restored
//! exactly; in-flight jobs are re-queued from their arrival records and
//! rerun from the start (streams are seeded and synthetic, so the work is
//! reproduced, not lost — only partial progress is).

use serde::{Deserialize, Serialize};
use sos_core::metrics::MetricsSnapshot;
use sos_core::opensys::JobArrival;
use sos_core::report::Percentiles;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// Current snapshot schema version; bump on incompatible change (older
/// snapshots are then ignored on restore rather than misread).
pub const SNAPSHOT_VERSION: u32 = 1;

/// One request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// The verb: `submit`, `status`, `stats`, `metrics`, `drain`, or
    /// `shutdown`.
    pub cmd: String,
    /// Benchmark name for `submit` (see `workloads::spec::Benchmark::name`).
    pub bench: Option<String>,
    /// Job length in solo-execution cycles (converted to instructions at
    /// the daemon's calibrated solo IPC for `bench`).
    pub cycles: Option<u64>,
    /// Job length in instructions (overrides `cycles` when both are given).
    pub instructions: Option<u64>,
    /// Whether the job is strongly phased.
    pub phased: Option<bool>,
    /// For the `fastsim` verb: enable (`true`) or disable (`false`)
    /// phase-aware sampled fast simulation. Absent in older clients.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fast: Option<bool>,
    /// For the `fastsim` verb: phase-stability threshold (relative counter
    /// deviation); defaults to the engine's built-in policy when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fast_threshold: Option<f64>,
}

impl Request {
    /// A bare verb with no payload.
    pub fn verb(cmd: &str) -> Self {
        Request {
            cmd: cmd.to_string(),
            bench: None,
            cycles: None,
            instructions: None,
            phased: None,
            fast: None,
            fast_threshold: None,
        }
    }

    /// A `fastsim` request enabling or disabling fast simulation, with an
    /// optional stability threshold.
    pub fn fastsim(fast: bool, threshold: Option<f64>) -> Self {
        Request {
            fast: Some(fast),
            fast_threshold: threshold,
            ..Request::verb("fastsim")
        }
    }

    /// A `submit` request for `cycles` of solo work on `bench`.
    pub fn submit_cycles(bench: &str, cycles: u64, phased: bool) -> Self {
        Request {
            cmd: "submit".to_string(),
            bench: Some(bench.to_string()),
            cycles: Some(cycles),
            instructions: None,
            phased: Some(phased),
            fast: None,
            fast_threshold: None,
        }
    }
}

/// Queue/counter section of a `status` reply.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatusReply {
    /// Scheduling policy (`naive` / `sos`).
    pub policy: String,
    /// SMT level of the simulated machine.
    pub smt: u64,
    /// Jobs currently in the system.
    pub live: u64,
    /// Admission cap (jobs in system).
    pub queue_cap: u64,
    /// Jobs admitted over the daemon's lifetime (including restored runs).
    pub submitted: u64,
    /// Jobs completed (including completions restored from a snapshot).
    pub completed: u64,
    /// Jobs refused with backpressure.
    pub rejected: u64,
    /// Simulated clock in cycles.
    pub now_cycles: u64,
    /// Whether a drain is in progress (no new admissions).
    pub draining: bool,
    /// Completed jobs restored from a snapshot at startup.
    pub restored: u64,
    /// The active fast-sim policy (`smtsim::FastSimPolicy::describe`),
    /// `None` when every timeslice runs in full detail. Absent in replies
    /// from older daemons.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fastsim: Option<String>,
    /// Timeslices synthesized by fast-sim extrapolation so far. Absent in
    /// replies from older daemons.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub extrapolated_slices: Option<u64>,
}

/// Latency section of a `stats` reply.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatsReply {
    /// Completed jobs the summary covers.
    pub completed: u64,
    /// Mean response time in cycles.
    pub mean_response: f64,
    /// Exact response-time percentiles (nearest-rank over all records).
    pub response: Percentiles,
    /// Mean slowdown (response / solo service time).
    pub mean_slowdown: f64,
    /// Exact slowdown percentiles.
    pub slowdown: Percentiles,
    /// Approximate response-time percentiles from the telemetry registry's
    /// log2-bucket histogram (what a metrics exporter would see).
    pub response_approx: Percentiles,
    /// SOS sample phases entered.
    pub resamples: u64,
    /// Evaluation-cache hits (see `sos_core::cache`).
    pub cache_hits: u64,
    /// Evaluation-cache misses.
    pub cache_misses: u64,
    /// Protocol errors by class (`unparsable`, `unknown_cmd`, `bad_submit`,
    /// `backpressure`, `draining`). Absent in replies from older daemons.
    pub errors: Option<BTreeMap<String, u64>>,
}

/// Payload of a `metrics` reply.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Live metrics as a versioned document (see
    /// `sos_core::metrics::METRICS_VERSION`).
    pub snapshot: MetricsSnapshot,
    /// The same snapshot rendered as Prometheus text exposition.
    pub prometheus: String,
}

/// One reply line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Diagnostic when `ok` is false (`backpressure`, `draining`, parse
    /// errors, …).
    pub error: Option<String>,
    /// Job id for a successful `submit`.
    pub id: Option<u64>,
    /// Payload of a `status` reply.
    pub status: Option<StatusReply>,
    /// Payload of a `stats` reply.
    pub stats: Option<StatsReply>,
    /// Payload of a `metrics` reply.
    pub metrics: Option<Box<MetricsReply>>,
}

impl Response {
    /// A bare success.
    pub fn ok() -> Self {
        Response {
            ok: true,
            error: None,
            id: None,
            status: None,
            stats: None,
            metrics: None,
        }
    }

    /// A failure with a diagnostic.
    pub fn err(msg: impl Into<String>) -> Self {
        Response {
            ok: false,
            error: Some(msg.into()),
            id: None,
            status: None,
            stats: None,
            metrics: None,
        }
    }
}

/// One completed job as persisted in a snapshot (the fields the stats verb
/// needs, without the full arrival record).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompletedJob {
    /// Arrival time in cycles.
    pub arrival: u64,
    /// Response time in cycles.
    pub response: u64,
    /// Response / solo service time.
    pub slowdown: f64,
}

/// The daemon's persistent state, written atomically on a period and on
/// shutdown, restored on restart.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]); mismatches are ignored.
    pub version: u32,
    /// Scheduling policy the snapshot was taken under.
    pub policy: String,
    /// SMT level.
    pub smt: u64,
    /// Engine seed (restored so candidate draws stay seeded).
    pub seed: u64,
    /// Simulated clock at snapshot time.
    pub now_cycles: u64,
    /// Jobs admitted up to snapshot time.
    pub submitted: u64,
    /// Jobs refused with backpressure up to snapshot time.
    pub rejected: u64,
    /// Completed-job records (exact accounting across restarts).
    pub completed: Vec<CompletedJob>,
    /// Jobs that were in flight; re-queued from scratch on restore.
    pub inflight: Vec<JobArrival>,
    /// The engine's online learner state (regressor + bandit), present when
    /// the daemon runs a learned predictor — restored on restart so the
    /// model keeps its training across daemon generations. Absent/`null`
    /// in snapshots from daemons without learning.
    #[serde(default)]
    pub learner: Option<sos_core::learn::Learner>,
}

impl Snapshot {
    /// The snapshot path inside a state directory.
    pub fn path_in(dir: &Path) -> std::path::PathBuf {
        dir.join("snapshot.json")
    }

    /// Writes the snapshot atomically and durably (temp file + fsync +
    /// rename + directory fsync) under `dir`, creating the directory if
    /// needed.
    ///
    /// Both syncs matter: without `sync_all` on the temp file, a crash
    /// after the rename can surface a zero-byte "snapshot.json" (the
    /// rename is journaled before the data hits disk); without the
    /// directory sync, the rename itself may not survive the crash.
    pub fn store(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join("snapshot.json.tmp");
        let json = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, Self::path_in(dir))?;
        #[cfg(unix)]
        std::fs::File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Loads the latest snapshot from `dir`. Returns `None` when there is no
    /// snapshot, it fails to parse, or its version does not match —
    /// restore is best-effort, a bad snapshot must never stop the daemon.
    pub fn load(dir: &Path) -> Option<Snapshot> {
        let text = std::fs::read_to_string(Self::path_in(dir)).ok()?;
        let snap: Snapshot = serde_json::from_str(&text).ok()?;
        if snap.version != SNAPSHOT_VERSION {
            return None;
        }
        Some(snap)
    }
}

/// Current [`BenchRecord`] schema version.
pub const BENCH_RECORD_VERSION: u32 = 1;

/// One perf-trajectory record, appended as a JSON line to
/// `BENCH_serve.json` by `sos-loadgen --bench-out` so serving-layer
/// throughput and tail latency are comparable across PRs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Schema version ([`BENCH_RECORD_VERSION`]).
    pub schema: u32,
    /// Wall-clock record time (seconds since the Unix epoch).
    pub unix_secs: u64,
    /// Load-generator trace seed.
    pub seed: u64,
    /// Jobs in the offered trace.
    pub offered: u64,
    /// Jobs the daemon admitted.
    pub accepted: u64,
    /// Jobs finally rejected.
    pub rejected: u64,
    /// Backpressure retries before admission.
    pub retries: u64,
    /// Total wall time spent sleeping between backpressure retries, ms.
    pub retry_wait_ms: u64,
    /// Jobs completed by drain time (includes restored completions).
    pub completed: u64,
    /// Wall time from first submission to drained, seconds.
    pub wall_secs: f64,
    /// Completions per wall-clock second.
    pub throughput_jobs_per_sec: f64,
    /// Simulated cycles per wall-clock second over the run.
    pub sim_cycles_per_sec: f64,
    /// Mean response time in simulated cycles.
    pub mean_response: f64,
    /// Exact response-time percentiles in simulated cycles.
    pub response: Percentiles,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// Exact slowdown percentiles.
    pub slowdown: Percentiles,
    /// `serve.response_cycles` SLO attainment at drain (NaN when the daemon
    /// predates the `metrics` verb).
    pub slo_response_attainment: f64,
    /// `serve.slowdown_x100` SLO attainment at drain (NaN when unavailable).
    pub slo_slowdown_attainment: f64,
    /// The fast-sim policy the daemon ran under
    /// (`smtsim::FastSimPolicy::describe`), `None`/absent for full detail.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fastsim: Option<String>,
    /// Timeslices the daemon synthesized by extrapolation during the run.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub extrapolated_slices: Option<u64>,
}

impl BenchRecord {
    /// Appends the record as one JSON line to `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        append_json_line(self, path)
    }
}

/// Current [`ClusterBenchRecord`] schema version.
pub const CLUSTER_BENCH_RECORD_VERSION: u32 = 1;

/// One cluster-scaling record, appended as a JSON line to
/// `BENCH_serve.json` by `sos-cluster --bench-out`. Distinguished from
/// loadgen [`BenchRecord`] lines by its `kind:"cluster"` field.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterBenchRecord {
    /// Schema version ([`CLUSTER_BENCH_RECORD_VERSION`]).
    pub schema: u32,
    /// Record discriminator, always `"cluster"`.
    pub kind: String,
    /// Wall-clock record time (seconds since the Unix epoch).
    pub unix_secs: u64,
    /// Shard count.
    pub shards: u64,
    /// Dispatcher policy (`round-robin` / `least-loaded` / `symbiosis`).
    pub dispatch: String,
    /// Per-shard scheduling policy (`naive` / `sos`).
    pub policy: String,
    /// Cluster seed.
    pub seed: u64,
    /// Jobs in the offered trace.
    pub jobs: u64,
    /// Jobs completed by drain time.
    pub completed: u64,
    /// Jobs migrated between shards by rebalancing.
    pub migrations: u64,
    /// Wall time for the full run, seconds.
    pub wall_secs: f64,
    /// Total simulated machine-cycles across all shard clocks
    /// (`shards × cluster clock` — N cores each advanced the cluster
    /// makespan).
    pub sim_cycles: u64,
    /// `sim_cycles / wall_secs` — the cluster's simulation throughput.
    pub sim_cycles_per_sec: f64,
    /// Completions per wall-clock second.
    pub throughput_jobs_per_sec: f64,
    /// Cluster-wide weighted speedup (solo-equivalent cycles completed per
    /// busy machine cycle).
    pub aggregate_ws: f64,
    /// Mean response time in simulated cycles.
    pub mean_response: f64,
    /// Exact response-time percentiles in simulated cycles.
    pub response: Percentiles,
    /// Exact slowdown percentiles.
    pub slowdown: Percentiles,
    /// The shard fast-sim policy (`smtsim::FastSimPolicy::describe`),
    /// `None`/absent for full detail.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fastsim: Option<String>,
    /// Timeslices synthesized by extrapolation across all shards.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub extrapolated_slices: Option<u64>,
}

impl ClusterBenchRecord {
    /// Appends the record as one JSON line to `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        append_json_line(self, path)
    }
}

/// Current [`FastSimBenchRecord`] schema version.
pub const FASTSIM_BENCH_RECORD_VERSION: u32 = 1;

/// One fast-sim accuracy/speedup record, appended as a JSON line to
/// `BENCH_serve.json` by `fastsim-compare --bench-out`. Distinguished from
/// the other record kinds by its `kind:"fastsim"` field. Captures a
/// detailed-vs-extrapolated pair of runs of the same seeded open-system
/// scenario, so the speedup-versus-error trajectory is comparable across
/// PRs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FastSimBenchRecord {
    /// Schema version ([`FASTSIM_BENCH_RECORD_VERSION`]).
    pub schema: u32,
    /// Record discriminator, always `"fastsim"`.
    pub kind: String,
    /// Wall-clock record time (seconds since the Unix epoch).
    pub unix_secs: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Jobs in the offered trace.
    pub jobs: u64,
    /// The fast-sim policy under test (`smtsim::FastSimPolicy::describe`).
    pub fastsim: String,
    /// Wall time of the full-detail run, seconds.
    pub detail_wall_secs: f64,
    /// Wall time of the fast run, seconds.
    pub fast_wall_secs: f64,
    /// `detail_wall_secs / fast_wall_secs` — same simulated cycles both
    /// ways, so this is also the sim-cycles/sec speedup.
    pub speedup: f64,
    /// Simulated cycles per wall second, full detail.
    pub detail_sim_cycles_per_sec: f64,
    /// Simulated cycles per wall second, fast mode.
    pub fast_sim_cycles_per_sec: f64,
    /// Fraction of busy timeslices the fast run extrapolated (0..1).
    pub extrapolated_fraction: f64,
    /// Aggregate weighted speedup, full detail.
    pub detail_ws: f64,
    /// Aggregate weighted speedup, fast mode.
    pub fast_ws: f64,
    /// `|fast_ws - detail_ws| / detail_ws`.
    pub ws_rel_error: f64,
    /// Relative error of the mean response time.
    pub response_rel_error: f64,
    /// Relative error of the p95 response time (the CI-gated percentile —
    /// p99 over a few hundred jobs is tail noise).
    pub response_p95_rel_error: f64,
    /// Relative error of the p99 response time (informational).
    pub response_p99_rel_error: f64,
    /// Relative error of the p95 slowdown (CI-gated).
    pub slowdown_p95_rel_error: f64,
    /// Relative error of the p99 slowdown (informational).
    pub slowdown_p99_rel_error: f64,
}

impl FastSimBenchRecord {
    /// Appends the record as one JSON line to `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        append_json_line(self, path)
    }
}

/// Current [`LearnBenchRecord`] schema version.
pub const LEARN_BENCH_RECORD_VERSION: u32 = 1;

/// One learned-predictor evaluation record, appended as a JSON line to
/// `BENCH_serve.json` by `predictor-matrix --bench-out`. Distinguished from
/// the other record kinds by its `kind:"learn"` field. Captures how the
/// online regressor and the contextual bandit fared against the ten fixed
/// predictors on the widened grid, so learning quality is comparable
/// across PRs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LearnBenchRecord {
    /// Schema version ([`LEARN_BENCH_RECORD_VERSION`]).
    pub schema: u32,
    /// Record discriminator, always `"learn"`.
    pub kind: String,
    /// Wall-clock record time (seconds since the Unix epoch).
    pub unix_secs: u64,
    /// Grid name (`small` / `wide`).
    pub grid: String,
    /// Seeds pooled into the evaluation.
    pub seeds: Vec<u64>,
    /// Experiments evaluated (scenarios × seeds).
    pub experiments: u64,
    /// Mean realized WS of the best fixed predictor, and its name.
    pub best_fixed: String,
    pub best_fixed_ws: f64,
    /// Mean realized WS of the worst fixed predictor, and its name.
    pub worst_fixed: String,
    pub worst_fixed_ws: f64,
    /// Mean realized WS of the online ridge regressor's picks.
    pub learned_ws: f64,
    /// Mean realized WS of the contextual bandit's picks.
    pub bandit_ws: f64,
    /// Mean realized WS of the per-experiment oracle (best schedule found
    /// during sampling) — the ceiling every predictor chases.
    pub oracle_ws: f64,
    /// Regressor training updates over the run.
    pub train_updates: u64,
    /// Prequential error EWMA of the regressor at the end of the run.
    pub err_ewma: f64,
    /// Bandit arm pulls over the run.
    pub bandit_pulls: u64,
    /// Cumulative bandit regret against the per-decision best arm.
    pub bandit_regret: f64,
    /// Distinct jobmix contexts the bandit saw.
    pub contexts: u64,
}

impl LearnBenchRecord {
    /// Appends the record as one JSON line to `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        append_json_line(self, path)
    }
}

/// Appends one serialized value as a JSON line to `path`.
fn append_json_line<T: Serialize>(value: &T, path: &Path) -> std::io::Result<()> {
    let json = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

/// A blocking JSON-lines client for `sos-serve` (used by `sos-loadgen` and
/// the protocol tests).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon address like `127.0.0.1:7077`.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and blocks for its reply.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let json = serde_json::to_string(req)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.send_line(&json)
    }

    /// Sends one raw line (useful for malformed-input tests) and blocks for
    /// the reply.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(reply.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad reply {reply:?}: {e}"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::submit_cycles("gcc", 500_000, true);
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cmd, "submit");
        assert_eq!(back.bench.as_deref(), Some("gcc"));
        assert_eq!(back.cycles, Some(500_000));
        assert_eq!(back.phased, Some(true));
    }

    #[test]
    fn bare_verb_omits_payload_fields_gracefully() {
        // A hand-written client may send only {"cmd":"status"}; every other
        // field must default to None.
        let back: Request = serde_json::from_str(r#"{"cmd":"status"}"#).unwrap();
        assert_eq!(back.cmd, "status");
        assert!(back.bench.is_none() && back.cycles.is_none() && back.instructions.is_none());
    }

    #[test]
    fn response_round_trips_with_error() {
        let r = Response::err("backpressure");
        let json = serde_json::to_string(&r).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("backpressure"));
    }

    #[test]
    fn snapshot_store_and_load() {
        let dir = std::env::temp_dir().join(format!("sos-serve-test-{}", std::process::id()));
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            policy: "sos".into(),
            smt: 2,
            seed: 7,
            now_cycles: 123_456,
            submitted: 10,
            rejected: 1,
            completed: vec![CompletedJob {
                arrival: 5,
                response: 100,
                slowdown: 1.5,
            }],
            inflight: Vec::new(),
            learner: None,
        };
        snap.store(&dir).expect("store");
        let back = Snapshot::load(&dir).expect("load");
        assert_eq!(back.now_cycles, 123_456);
        assert_eq!(back.completed.len(), 1);
        assert_eq!(back.completed[0].response, 100);
        assert!(back.learner.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_preserves_learner_state_byte_exactly() {
        use sos_core::learn::{LearnConfig, Learner};
        let dir = std::env::temp_dir().join(format!("sos-serve-learn-{}", std::process::id()));
        let learner = Learner::new(LearnConfig::default());
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            policy: "sos".into(),
            smt: 2,
            seed: 7,
            now_cycles: 1,
            submitted: 0,
            rejected: 0,
            completed: Vec::new(),
            inflight: Vec::new(),
            learner: Some(learner.clone()),
        };
        snap.store(&dir).expect("store");
        let back = Snapshot::load(&dir).expect("load");
        assert_eq!(
            serde_json::to_string(back.learner.as_ref().unwrap()).unwrap(),
            serde_json::to_string(&learner).unwrap(),
            "learner state must survive the snapshot round trip byte-exactly"
        );
        // A pre-learning snapshot (no `learner` key at all) still loads.
        let raw = std::fs::read_to_string(Snapshot::path_in(&dir)).unwrap();
        let stripped = raw.replace(
            &format!(",\"learner\":{}", serde_json::to_string(&learner).unwrap()),
            "",
        );
        assert_ne!(raw, stripped, "test must actually strip the learner key");
        std::fs::write(Snapshot::path_in(&dir), stripped).unwrap();
        let old = Snapshot::load(&dir).expect("old-format snapshot loads");
        assert!(old.learner.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_version_mismatch_is_ignored() {
        let dir = std::env::temp_dir().join(format!("sos-serve-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            Snapshot::path_in(&dir),
            r#"{"version":999,"policy":"sos","smt":2,"seed":0,"now_cycles":0,"submitted":0,"rejected":0,"completed":[],"inflight":[]}"#,
        )
        .unwrap();
        assert!(Snapshot::load(&dir).is_none());
        // Corrupt JSON is equally non-fatal.
        std::fs::write(Snapshot::path_in(&dir), "{not json").unwrap();
        assert!(Snapshot::load(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_byte_snapshot_is_treated_as_corrupt() {
        // A crash between File::create and the data hitting disk used to be
        // able to leave a zero-byte snapshot.json; restore must treat it
        // like any corrupt snapshot (None) so the daemon still starts.
        let dir = std::env::temp_dir().join(format!("sos-serve-zero-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Snapshot::path_in(&dir), b"").unwrap();
        assert!(Snapshot::load(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_store_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("sos-serve-tmp-{}", std::process::id()));
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            policy: "naive".into(),
            smt: 2,
            seed: 1,
            now_cycles: 1,
            submitted: 0,
            rejected: 0,
            completed: Vec::new(),
            inflight: Vec::new(),
            learner: None,
        };
        snap.store(&dir).expect("store");
        assert!(!dir.join("snapshot.json.tmp").exists());
        assert!(Snapshot::load(&dir).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

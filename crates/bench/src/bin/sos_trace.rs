//! Runs one `Jmn(X,Y,Z)` experiment with telemetry enabled and exports the
//! recording: metrics as JSONL, the event stream as JSONL, and a Chrome
//! `trace_event` JSON file loadable in Perfetto (<https://ui.perfetto.dev>).
//!
//! Usage:
//!
//! ```text
//! sos-trace [--scale N] [--calibration CYCLES] [--trace out.json] \
//!           [--metrics out.jsonl] [--events out.jsonl] [EXPERIMENT]
//! ```
//!
//! `EXPERIMENT` is paper notation (default `Jsb(6,3,3)`); `--scale` is the
//! cycle-scale divisor (default 1000, 1 = full paper scale);
//! `--calibration` overrides the solo-IPC calibration window in scaled
//! cycles (smaller = faster, noisier). With no output flags the run still
//! executes and prints a summary, which is handy for smoke-testing.

use sos_core::sos::SosScheduler;
use sos_core::telemetry;
use sos_core::ExperimentSpec;
use std::process::ExitCode;

struct Args {
    spec: ExperimentSpec,
    scale: u64,
    calibration: Option<u64>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
    events_path: Option<String>,
}

const USAGE: &str = "usage: sos-trace [--scale N] [--calibration CYCLES] [--trace out.json] \
                     [--metrics out.jsonl] [--events out.jsonl] [EXPERIMENT]\n\
                     EXPERIMENT is paper notation like 'Jsb(6,3,3)' (default)";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        spec: "Jsb(6,3,3)".parse().expect("default spec parses"),
        scale: 1000,
        calibration: None,
        trace_path: None,
        metrics_path: None,
        events_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| {
            it.next().ok_or_else(|| {
                eprintln!("sos-trace: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--scale" => {
                let v = flag_value("--scale")?;
                args.scale = v.parse().map_err(|_| {
                    eprintln!("sos-trace: bad --scale '{v}'");
                    usage()
                })?;
            }
            "--calibration" => {
                let v = flag_value("--calibration")?;
                args.calibration = Some(v.parse().map_err(|_| {
                    eprintln!("sos-trace: bad --calibration '{v}'");
                    usage()
                })?);
            }
            "--trace" => args.trace_path = Some(flag_value("--trace")?),
            "--metrics" => args.metrics_path = Some(flag_value("--metrics")?),
            "--events" => args.events_path = Some(flag_value("--events")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Err(ExitCode::SUCCESS);
            }
            spec if !spec.starts_with('-') => {
                args.spec = spec.parse().map_err(|e| {
                    eprintln!("sos-trace: bad experiment '{spec}': {e}");
                    usage()
                })?;
            }
            other => {
                eprintln!("sos-trace: unknown flag '{other}'");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn write_file(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("sos-trace: cannot write {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let mut cfg = sos_bench::config(args.scale);
    if let Some(calibration) = args.calibration {
        cfg.calibration_cycles = calibration;
    }
    eprintln!(
        "# tracing {} at 1/{} paper scale ...",
        args.spec.label(),
        args.scale
    );

    // In-memory cache only (no disk store): the point here is surfacing the
    // sos.cache.hits / sos.cache.misses counters in the exported metrics
    // without a warm disk cache eliding the simulator spans being traced.
    sos_core::cache::enable();

    telemetry::reset();
    telemetry::enable();
    let report = SosScheduler::evaluate_experiment(&args.spec, &cfg);
    telemetry::disable();
    let snapshot = telemetry::drain();
    sos_bench::print_cache_stats();

    if let Some(path) = &args.trace_path {
        if let Err(code) = write_file(path, &snapshot.chrome_trace_json()) {
            return code;
        }
        eprintln!("# wrote Chrome trace: {path} (open in https://ui.perfetto.dev)");
    }
    if let Some(path) = &args.metrics_path {
        if let Err(code) = write_file(path, &snapshot.metrics_jsonl()) {
            return code;
        }
        eprintln!("# wrote metrics JSONL: {path}");
    }
    if let Some(path) = &args.events_path {
        if let Err(code) = write_file(path, &snapshot.events_jsonl()) {
            return code;
        }
        eprintln!("# wrote event JSONL: {path}");
    }

    println!(
        "{}: {} candidates, {} events, {} metrics",
        args.spec.label(),
        report.candidates.len(),
        snapshot.events.len(),
        snapshot.metrics.len()
    );
    sos_bench::print_experiment_summary(&report);
    ExitCode::SUCCESS
}

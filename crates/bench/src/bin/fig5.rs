//! Reproduces Figure 5: response-time improvements obtained by SOS over a
//! random (naive) jobscheduler for SMT levels 2, 3, 4, and 6, on an open
//! system with exponential arrivals and job lengths.
//!
//! Response times in a queueing system near capacity are extremely
//! high-variance, so each SMT level is measured as a *matched pair* (both
//! schedulers see the identical arrival trace) and averaged over several
//! seeds.
//!
//! Usage: `cargo run --release -p sos-bench --bin fig5 [cycle_scale] [num_jobs] [seeds]
//! [--fast] [--fast-threshold F]`
//!
//! `--fast` runs both schedulers under phase-aware sampled fast simulation
//! (`--fast-threshold` sets the phase-stability threshold and implies
//! `--fast`). Without it, every timeslice executes in full detail and the
//! output is byte-identical to earlier revisions.

use smtsim::FastSimPolicy;
use sos_core::opensys::{
    arrival_trace, calibrate_benchmarks, measure_capacity, run_open_system_on_trace,
    OpenSystemConfig, SchedulerKind,
};
use sos_core::report::percentiles;

fn main() {
    // Strip the fast-sim flags before positional parsing so
    // `fig5 6000 --fast` and `fig5 --fast 6000` both work.
    let mut positional = Vec::new();
    let mut fast = false;
    let mut fast_threshold: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--fast-threshold" => {
                fast = true;
                fast_threshold = it.next().and_then(|v| v.parse().ok());
            }
            _ => positional.push(a),
        }
    }
    let fastsim = fast.then(|| match fast_threshold {
        Some(t) => FastSimPolicy::with_threshold(t),
        None => FastSimPolicy::default(),
    });
    // Open-system runs are long; default to a smaller scale than the
    // closed-system experiments.
    let scale: u64 = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(6000);
    let num_jobs: usize = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let seeds: u64 = positional.get(2).and_then(|a| a.parse().ok()).unwrap_or(3);
    sos_bench::init_cache();
    eprintln!(
        "# open system at 1/{scale} paper scale, {num_jobs} jobs x {seeds} seeds per level ..."
    );
    if let Some(p) = &fastsim {
        eprintln!("# fastsim: {}", p.describe());
    }

    println!("Figure 5 — response-time improvement of SOS over a random scheduler");
    println!(
        "{:<10} {:>16} {:>16} {:>8} {:>13}",
        "SMT level", "naive (cycles)", "SOS (cycles)", "N(avg)", "improvement"
    );

    let levels = vec![2usize, 3, 4, 6];
    let rows = sos_bench::parallel_map(levels, |smt| {
        let mut naive_total = 0.0;
        let mut sos_total = 0.0;
        let mut pop = 0.0;
        let mut naive_rt = Vec::new();
        let mut sos_rt = Vec::new();
        for seed in 0..seeds {
            let mut cfg = OpenSystemConfig::scaled(smt);
            cfg.mean_job_cycles = 2_000_000_000 / scale.max(1);
            // The timeslice needs to amortize pipeline fill and give the sample
            // phase usable counter windows, so it scales less aggressively
            // than job lengths (T/timeslice ≈ 130 vs the paper's 400).
            cfg.timeslice = 2_500;
            cfg.num_jobs = num_jobs;
            // IPC is the strongest predictor on this substrate (see
            // EXPERIMENTS.md); the paper likewise ran SOS with its best.
            cfg.predictor = sos_core::PredictorKind::Ipc;
            cfg.seed = 0xF150 + 7919 * seed;
            cfg.fastsim = fastsim.clone();
            let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
            // Self-calibrate against the capacity this seed's job population
            // actually sustains, then offer ~115% of it: over the finite
            // trace the resident population ramps into the paper's
            // N ≈ 2·SMT regime (steady-state critical queueing would need
            // unaffordable horizons), and the response-time gap directly
            // reflects scheduler throughput.
            let capacity = measure_capacity(&cfg, &solo, 24);
            cfg.mean_interarrival = (cfg.mean_job_cycles as f64 / (1.15 * capacity)) as u64;
            let trace = arrival_trace(&cfg, &solo);
            let naive = run_open_system_on_trace(SchedulerKind::Naive, &cfg, &trace);
            let sos = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);
            naive_total += naive.mean_response();
            sos_total += sos.mean_response();
            pop += naive.mean_population;
            naive_rt.extend(naive.response_times());
            sos_rt.extend(sos.response_times());
        }
        (
            smt,
            naive_total / seeds as f64,
            sos_total / seeds as f64,
            pop / seeds as f64,
            percentiles(&naive_rt),
            percentiles(&sos_rt),
        )
    });

    for (smt, naive, sos, pop, _, _) in &rows {
        let improvement = 100.0 * (naive - sos) / naive;
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>8.1} {:>12.1}%",
            smt, naive, sos, pop, improvement
        );
    }
    println!();
    println!("(paper: improvements between 8% and nearly 18% across SMT levels)");
    println!();
    println!("response-time percentiles (cycles, jobs pooled across seeds)");
    println!(
        "{:<10} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "SMT level", "naive p50", "naive p95", "naive p99", "SOS p50", "SOS p95", "SOS p99"
    );
    for (smt, _, _, _, np, sp) in &rows {
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>12.0}   {:>12.0} {:>12.0} {:>12.0}",
            smt, np.p50, np.p95, np.p99, sp.p50, sp.p95, sp.p99
        );
    }
}

//! Reproduces Figure 1: worst and best weighted speedup observed when the 13
//! combinations of jobmix, SMT level, and job replacement policy are run with
//! permuted coschedules.
//!
//! Usage: `cargo run --release -p sos-bench --bin fig1 [cycle_scale]`

use sos_core::sos::SosScheduler;
use sos_core::ExperimentSpec;

fn main() {
    let scale = sos_bench::scale_from_args();
    let cfg = sos_bench::config(scale);
    sos_bench::init_cache();
    eprintln!("# running 13 experiments at 1/{scale} paper scale ...");

    let specs = ExperimentSpec::all_paper_experiments();
    let reports =
        sos_bench::parallel_map(specs, |spec| SosScheduler::evaluate_experiment(&spec, &cfg));

    println!("Figure 1 — worst and best weighted speedup per experiment");
    let mut spreads = Vec::new();
    for report in &reports {
        sos_bench::print_experiment_summary(report);
        spreads.push(sos_bench::pct_over(report.best_ws(), report.worst_ws()));
    }
    let avg = spreads.iter().sum::<f64>() / spreads.len() as f64;
    let max = spreads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "speedup varies by an average of {avg:.0}% and a maximum of {max:.0}% across the samples"
    );
    println!("(paper: average 8%, maximum 25%)");
}

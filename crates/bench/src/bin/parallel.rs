//! Reproduces §6 (parallel workload scheduling): Jpb(10,2,2) versus
//! J2pb(10,2,2).
//!
//! With the tightly-synchronizing ARRAY (Jpb), schedules that do not
//! coschedule the two ARRAY threads collapse, so the best schedule must pair
//! the siblings and the gain over the average random schedule is enormous
//! (the paper's "almost 400%" artifact). With the loose variant (J2pb), the
//! best schedule does *not* coschedule the siblings.
//!
//! Usage: `cargo run --release -p sos-bench --bin parallel [cycle_scale]`

use sos_core::sos::SosScheduler;
use sos_core::{ExperimentSpec, PredictorKind};

/// The ARRAY threads are pool indices 8 and 9 in the Table 1 parallel mix.
fn coschedules_array(notation: &str) -> bool {
    notation
        .split('_')
        .any(|tuple| tuple.contains('8') && tuple.contains('9'))
}

fn report_one(label: &str, cfg: &sos_core::SosConfig) {
    let spec: ExperimentSpec = label.parse().expect("valid label");
    let report = SosScheduler::evaluate_experiment(&spec, cfg);
    println!("{label}:");
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, (n, ws)) in report.candidates.iter().zip(&report.symbios_ws).enumerate() {
        let paired = coschedules_array(n);
        println!(
            "    {:<24} WS {:>6.3}   ARRAY siblings {}",
            n,
            ws,
            if paired { "coscheduled" } else { "split" }
        );
        if *ws > best.1 {
            best = (i, *ws);
        }
    }
    let ipc_pick = report.ws_with(PredictorKind::Ipc);
    let score_pick = report.ws_with(PredictorKind::Score);
    println!(
        "    best: {} (WS {:.3}, ARRAY {})   avg WS {:.3}   best/avg {:+.1}%",
        report.candidates[best.0],
        best.1,
        if coschedules_array(&report.candidates[best.0]) {
            "coscheduled"
        } else {
            "split"
        },
        report.average_ws(),
        sos_bench::pct_over(best.1, report.average_ws()),
    );
    println!(
        "    IPC-predicted WS {:.3}   Score-predicted WS {:.3}",
        ipc_pick, score_pick
    );
    println!();
}

fn main() {
    let scale = sos_bench::scale_from_args();
    let cfg = sos_bench::config(scale);
    eprintln!("# running Jpb(10,2,2) and J2pb(10,2,2) at 1/{scale} paper scale ...");
    println!("§6 — parallel workload scheduling");
    report_one("Jpb(10,2,2)", &cfg);
    report_one("J2pb(10,2,2)", &cfg);
    println!("expected shape: Jpb's best schedule pairs the ARRAY siblings and towers over");
    println!("the average; J2pb's best schedule splits them (paper: split beats paired by 13%).");
}

//! Ablations of the simulator's design choices (DESIGN.md §6): each knob is
//! flipped and the effect on coscheduled throughput or on the paper's key
//! contention signals is reported.
//!
//! Usage: `cargo run --release -p sos-bench --bin ablations`

use smtsim::{FetchPolicy, MachineConfig, Processor, StreamId};
use workloads::spec::Benchmark;

/// Runs `benches` coscheduled on `cfg` and returns (total IPC, fp-queue
/// conflict cycles, mispredict %).
fn run(cfg: MachineConfig, benches: &[Benchmark], cycles: u64) -> (f64, u64, f64) {
    let mut cpu = Processor::new(cfg);
    let mut streams: Vec<_> = benches
        .iter()
        .enumerate()
        .map(|(i, b)| b.stream(StreamId(i as u64), 1000 + i as u64))
        .collect();
    let mut refs: Vec<&mut dyn smtsim::trace::InstructionSource> =
        streams.iter_mut().map(|s| &mut **s as _).collect();
    let _ = cpu.run_timeslice(&mut refs, cycles);
    let st = cpu.run_timeslice(&mut refs, cycles);
    (
        st.total_ipc(),
        st.conflicts.fp_queue,
        st.branches.mispredict_pct(),
    )
}

fn main() {
    use Benchmark::*;
    const CYCLES: u64 = 150_000;
    println!("Design-choice ablations (mixed 3-thread coschedule FP+MG+GO unless noted)");
    let mix = [Fp, Mg, Go];

    // 1. Fetch policies (Tullsen et al., ISCA '96 family).
    let base = MachineConfig::alpha21264_like(3);
    for (name, policy) in [
        ("ICOUNT", FetchPolicy::Icount),
        ("round-robin", FetchPolicy::RoundRobin),
        ("BRCOUNT", FetchPolicy::Brcount),
        ("MISSCOUNT", FetchPolicy::Misscount),
    ] {
        let mut cfg = base.clone();
        cfg.fetch_policy = policy;
        let (ipc, ..) = run(cfg, &mix, CYCLES);
        println!("fetch policy      {name:<12} {ipc:.3} IPC");
    }

    // 2. FP divide pipelining (the 21264's divider is unpipelined).
    let fp_mix = [Fp, Ep, Mg];
    let (unpiped, fq_unpiped, _) = run(base.clone(), &fp_mix, CYCLES);
    let mut piped = base.clone();
    piped.lat.fp_div_occupancy = 1;
    let (piped_ipc, fq_piped, _) = run(piped, &fp_mix, CYCLES);
    println!(
        "fp divide         unpipelined {unpiped:.3} IPC / {fq_unpiped} FQ-conflict cycles   \
         pipelined {piped_ipc:.3} IPC / {fq_piped}"
    );

    // 3. FP queue size: the paper's 15 entries vs double.
    let (fq15, fq15_conf, _) = run(base.clone(), &fp_mix, CYCLES);
    let mut big_fq = base.clone();
    big_fq.fp_queue = 30;
    let (fq30, fq30_conf, _) = run(big_fq, &fp_mix, CYCLES);
    println!(
        "fp queue size     15 entries {fq15:.3} IPC / {fq15_conf} conflicts   \
         30 entries {fq30:.3} IPC / {fq30_conf} conflicts"
    );

    // 4. Misprediction penalty sweep on a branchy mix.
    let branchy = [Go, Gcc, Gcc];
    for penalty in [0u64, 7, 14] {
        let mut cfg = base.clone();
        cfg.branch.mispredict_penalty = penalty;
        let (ipc, _, mis) = run(cfg, &branchy, CYCLES);
        println!("mispredict penalty {penalty:>2} cycles    GO+GCC+GCC {ipc:.3} IPC ({mis:.1}% mispredicted)");
    }

    // 5. Branch-table size: shared-table interference shrinks with capacity.
    for bits in [10u32, 12, 16] {
        let mut cfg = base.clone();
        cfg.branch.table_bits = bits;
        let (ipc, _, mis) = run(cfg, &branchy, CYCLES);
        println!("branch table 2^{bits:<2} entries        GO+GCC+GCC {ipc:.3} IPC ({mis:.1}% mispredicted)");
    }

    // 6. SMT level scaling on the 12-job mix's first threads.
    let many = [Fp, Mg, Wave, Swim, Su2cor, Turb3d];
    for smt in [1usize, 2, 3, 4, 6] {
        let cfg = MachineConfig::alpha21264_like(smt);
        let (ipc, ..) = run(cfg, &many[..smt], CYCLES);
        println!("SMT level {smt}                     {ipc:.3} total IPC");
    }
}

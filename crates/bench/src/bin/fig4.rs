//! Reproduces Figure 4: improvements in weighted speedup achievable by SOS
//! using hierarchical symbiosis (choosing both the coschedules and the
//! number of contexts per multithreaded job) at SMT levels 2, 3, 4, and 6.
//!
//! Usage: `cargo run --release -p sos-bench --bin fig4 [cycle_scale]`

use sos_core::hier::evaluate_hierarchical;

fn main() {
    let scale = sos_bench::scale_from_args();
    let cfg = sos_bench::config(scale);
    eprintln!("# running hierarchical symbiosis at SMT levels 2, 3, 4, 6 (1/{scale} scale) ...");

    let levels = vec![2usize, 3, 4, 6];
    let reports = sos_bench::parallel_map(levels, |level| evaluate_hierarchical(level, 4, &cfg));

    println!("Figure 4 — hierarchical symbiosis: % WS improvement of the predicted");
    println!("(allocation, schedule) pair over the average and worst alternatives");
    println!(
        "{:<10} {:>8} {:>9} {:>9} {:>12} {:>12}",
        "SMT level", "picked", "avg", "worst", "vs avg", "vs worst"
    );
    for r in &reports {
        println!(
            "{:<10} {:>8.3} {:>9.3} {:>9.3} {:>11.1}% {:>11.1}%",
            r.smt,
            r.picked_ws(),
            r.average_ws(),
            r.worst_ws(),
            r.improvement_over_average(),
            r.improvement_over_worst()
        );
        let pick = &r.outcomes[r.score_pick];
        println!(
            "           picked allocation {:?} schedule {}",
            pick.threads_per_job, pick.notation
        );
    }
    println!();
    println!("expected shape: the picked pair beats average and worst at every SMT level.");
}

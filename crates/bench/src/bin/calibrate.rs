//! Prints solo IPC and microarchitectural profile of every benchmark model.
use smtsim::{MachineConfig, Processor, StreamId};
use workloads::spec::Benchmark;

fn main() {
    println!(
        "{:<8} {:>6} {:>7} {:>7} {:>8} {:>7}",
        "bench", "IPC", "dl1%", "br-mis%", "l2miss", "fp%"
    );
    for b in Benchmark::ALL {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(1));
        let mut s = b.stream(StreamId(0), 42);
        let _ = cpu.run_timeslice(&mut [&mut *s], 200_000); // warm-up
        let st = cpu.run_timeslice(&mut [&mut *s], 500_000);
        let t = &st.threads[0];
        let fp_pct = 100.0 * t.fp_ops() as f64 / t.committed.max(1) as f64;
        println!(
            "{:<8} {:>6.3} {:>7.2} {:>7.2} {:>8} {:>7.1}",
            b.name(),
            st.total_ipc(),
            st.cache.dl1_hit_pct(),
            st.branches.mispredict_pct(),
            st.cache.l2_misses,
            fp_pct
        );
    }
}

//! Validates the synthetic workload models: for every benchmark, compares
//! the generated stream's measured statistics against its profile targets
//! (instruction-class mix, dependency distance, branch density).
//!
//! Usage: `cargo run --release -p sos-bench --bin workload_stats`

use smtsim::trace::{Fetch, InstrClass, InstructionSource, StreamId};
use workloads::spec::Benchmark;
use workloads::synth::SyntheticStream;

fn main() {
    const N: usize = 300_000;
    println!(
        "{:<8} {:>8} {:>8}   {:>8} {:>8}   {:>8} {:>8}   {:>8} {:>8}",
        "bench", "fp%", "target", "ld%", "target", "br%", "target", "dep", "target"
    );
    for b in Benchmark::ALL {
        let profile = b.profile();
        let mut s = SyntheticStream::new(profile.clone(), StreamId(0), 42);
        let mut counts = [0u64; 8];
        let mut dep_sum = 0u64;
        let mut dep_n = 0u64;
        for _ in 0..N {
            if let Fetch::Instr(i) = s.next_instr() {
                let Some(idx) = InstrClass::ALL.iter().position(|&c| c == i.class) else {
                    // Unreachable while ALL enumerates every class; a new
                    // class missing from ALL should show up as a loud
                    // diagnostic, not a panicking stats binary.
                    eprintln!(
                        "workload_stats: {:?} emitted class {:?} absent from InstrClass::ALL; skipping",
                        b.name(),
                        i.class
                    );
                    continue;
                };
                counts[idx] += 1;
                if i.dep_dist > 0 && i.class != InstrClass::Branch {
                    dep_sum += u64::from(i.dep_dist);
                    dep_n += 1;
                }
            }
        }
        let total: u64 = counts.iter().sum();
        let pct = |idxs: &[usize]| {
            100.0 * idxs.iter().map(|&i| counts[i]).sum::<u64>() as f64 / total as f64
        };
        let fp_meas = pct(&[2, 3, 4]);
        let ld_meas = pct(&[5]);
        let br_meas = pct(&[7]);
        let t = profile.mix.total();
        let fp_target = 100.0 * (profile.mix.fp_add + profile.mix.fp_mul + profile.mix.fp_div) / t;
        let ld_target = 100.0 * profile.mix.load / t;
        let br_target = 100.0 * profile.mix.branch / t;
        let dep_meas = dep_sum as f64 / dep_n.max(1) as f64;
        println!(
            "{:<8} {:>7.1}% {:>7.1}%   {:>7.1}% {:>7.1}%   {:>7.1}% {:>7.1}%   {:>8.2} {:>8.2}",
            b.name(),
            fp_meas,
            fp_target,
            ld_meas,
            ld_target,
            br_meas,
            br_target,
            dep_meas,
            profile.dep_mean
        );
    }
    println!();
    println!("fp/ld percentages are of all instructions (branch slots excluded from the mix),");
    println!("so measured values sit slightly below the non-branch targets by design.");
}

//! Reproduces Table 3: detailed sample-phase predictor data and symbios-phase
//! weighted speedup for every schedule of Jsb(6,3,3).
//!
//! Usage: `cargo run --release -p sos-bench --bin table3 [cycle_scale]`
//! (default scale 1000; use 1 for full paper scale).

use sos_core::sos::SosScheduler;
use sos_core::{ExperimentSpec, SosConfig};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1000);
    let spec: ExperimentSpec = "Jsb(6,3,3)".parse().expect("valid label");
    let cfg = SosConfig {
        cycle_scale: scale,
        ..SosConfig::default()
    };

    sos_bench::init_cache();
    eprintln!("# running {spec} at 1/{scale} paper scale ...");
    let report = SosScheduler::evaluate_experiment(&spec, &cfg);

    println!("Table 3 — jobmix Jsb(6,3,3): sample-phase predictors vs. symbios WS");
    println!(
        "{:<9} {:>6} {:>8} {:>7} {:>6} {:>6} {:>6} {:>9} {:>8} {:>9} {:>6}",
        "Schedule",
        "IPC",
        "AllConf",
        "Dcache",
        "FQ",
        "FP",
        "Sum2",
        "Diversity",
        "Balance",
        "Composite",
        "WS(t)"
    );
    let composite = sos_core::predictor::composite_scores(&report.samples);
    for (i, s) in report.samples.iter().enumerate() {
        println!(
            "{:<9} {:>6.3} {:>8.2} {:>7.2} {:>6.2} {:>6.2} {:>6.2} {:>9.2} {:>8.3} {:>9.2} {:>6.3}",
            s.notation,
            s.ipc,
            s.allconf,
            s.dcache,
            s.fq,
            s.fp,
            s.sum2,
            s.diversity,
            s.balance,
            composite[i],
            report.symbios_ws[i]
        );
    }
    println!();
    println!(
        "best WS = {:.3}  worst = {:.3}  avg = {:.3}",
        report.best_ws(),
        report.worst_ws(),
        report.average_ws()
    );
    println!(
        "best over worst: {:+.1}%   best over avg: {:+.1}%",
        100.0 * (report.best_ws() / report.worst_ws() - 1.0),
        100.0 * (report.best_ws() / report.average_ws() - 1.0)
    );
    println!();
    println!("predictor picks:");
    for (p, idx) in &report.picks {
        println!(
            "  {:<10} -> {:<9} WS {:.3} ({:+.1}% vs avg)",
            p.name(),
            report.candidates[*idx],
            report.symbios_ws[*idx],
            100.0 * (report.symbios_ws[*idx] / report.average_ws() - 1.0)
        );
    }
}

//! Reproduces §8 (warmstart scheduling): the symbiosis gain from swapping
//! only one job per timeslice instead of the whole running set.
//!
//! Compares the average symbios WS of the swap-all experiments against their
//! swap-one counterparts, at the big timeslice (both cold-start-amortization
//! effects present) and at the little timeslice (isolating the reduced
//! memory-subsystem pressure).
//!
//! Usage: `cargo run --release -p sos-bench --bin warmstart [cycle_scale]`

use sos_core::sos::SosScheduler;
use sos_core::ExperimentSpec;

fn main() {
    let scale = sos_bench::scale_from_args();
    let cfg = sos_bench::config(scale);
    sos_bench::init_cache();
    eprintln!("# running warmstart comparisons at 1/{scale} paper scale ...");

    // (swap-all baseline, swap-one big timeslice, swap-one little timeslice)
    let groups: Vec<(&str, &str, Option<&str>)> = vec![
        ("Jsb(5,2,2)", "Jsb(5,2,1)", None),
        ("Jsb(6,3,3)", "Jsb(6,3,1)", Some("Jsl(6,3,1)")),
        ("Jsb(8,4,4)", "Jsb(8,4,1)", Some("Jsl(8,4,1)")),
    ];

    let mut labels: Vec<String> = Vec::new();
    for (a, b, c) in &groups {
        labels.push((*a).into());
        labels.push((*b).into());
        if let Some(c) = c {
            labels.push((*c).into());
        }
    }
    let reports = sos_bench::parallel_map(labels.clone(), |label| {
        let spec: ExperimentSpec = label.parse().expect("valid label");
        SosScheduler::evaluate_experiment(&spec, &cfg)
    });
    let avg_of = |label: &str| -> f64 {
        let idx = labels.iter().position(|l| l == label).expect("ran");
        reports[idx].average_ws()
    };

    println!("§8 — warmstart scheduling (average symbios WS across sampled schedules)");
    let mut big_gains = Vec::new();
    for (a, b, c) in &groups {
        let base = avg_of(a);
        let warm = avg_of(b);
        let gain = sos_bench::pct_over(warm, base);
        big_gains.push(gain);
        print!("{a} -> {b}: {base:.3} -> {warm:.3} ({gain:+.1}%)");
        if let Some(c) = c {
            let little = avg_of(c);
            print!(
                "   {c}: {little:.3} ({:+.1}% vs {a})",
                sos_bench::pct_over(little, base)
            );
        }
        println!();
    }
    println!();
    println!(
        "swap-one gain at the big timeslice: avg {:+.1}% (paper: ~7%); little-timeslice",
        big_gains.iter().sum::<f64>() / big_gains.len() as f64
    );
    println!("swap-one gains are expected to be smaller (paper: negligible).");
}

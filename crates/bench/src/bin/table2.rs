//! Reproduces Table 2: the number of distinct possible schedules for each
//! jobmix, and the time to profile at most 10 schedules in the sample phase.
//!
//! This table is analytic (schedule combinatorics and cycle accounting), so
//! the output matches the paper exactly regardless of scale.

use sos_core::ExperimentSpec;

fn main() {
    println!("Table 2 — distinct schedules and sample-phase cycles");
    println!(
        "{:<14} {:>18} {:>22}",
        "Experiment", "Distinct Schedules", "Million Sample Cycles"
    );
    for spec in ExperimentSpec::all_paper_experiments() {
        println!(
            "{:<14} {:>18} {:>22.0}",
            spec.label(),
            spec.distinct_schedules(),
            spec.paper_sample_cycles() as f64 / 1e6
        );
    }
}

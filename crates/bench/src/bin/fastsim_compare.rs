//! `fastsim-compare` — speedup-versus-error harness for phase-aware
//! sampled fast simulation (`smtsim::fastsim`).
//!
//! Two measurements, both against the identical seeded workload:
//!
//! 1. **Accuracy** — a full open-system scenario (the fig5/fig6 engine,
//!    SOS policy) runs once in full detail and once per `--thresholds`
//!    entry in fast mode. The table reports wall speedup, extrapolated
//!    fraction, and the relative error of aggregate weighted speedup,
//!    mean response time, and the p95/p99 response and slowdown
//!    percentiles. The open-system loop keeps all its scheduling machinery
//!    (sampling phases always run detailed), so this is the honest
//!    end-to-end number. Error assertions gate on the p95 percentiles:
//!    p99 over a few hundred jobs is the 1–2 most extreme jobs, which flips
//!    on any completion-order change and measures tail noise, not
//!    extrapolation bias (p99 stays in the table and the bench record).
//! 2. **Raw throughput** — a steady fixed-schedule `Runner` workload
//!    (no resampling) measures the ceiling: detailed vs fast
//!    sim-cycles/sec on the hot `run_timeslice` path.
//!
//! CI gates (`--assert-ws-error`, `--assert-response-error`,
//! `--assert-slowdown-error`, `--assert-speedup`, `--assert-raw-speedup`)
//! exit 1 when a threshold's run lands outside the envelope; the
//! `fastsim-accuracy` workflow job runs this with ±2% error bounds.
//!
//! `--bench-out FILE` appends one `kind:"fastsim"` JSON line per threshold
//! (see `sos_bench::serve::FastSimBenchRecord`), conventionally to
//! `BENCH_serve.json`.
//!
//! Usage: `fastsim-compare [--smt N] [--jobs N] [--mean-interarrival C]
//! [--mean-length C] [--phased-fraction F] [--timeslice C] [--seed S]
//! [--seeds N] [--thresholds F,F,...] [--raw-rotations N] [--bench-out FILE]
//! [--assert-ws-error PCT] [--assert-response-error PCT]
//! [--assert-slowdown-error PCT] [--assert-speedup X]
//! [--assert-raw-speedup X]`

use smtsim::{FastSimPolicy, MachineConfig};
use sos_bench::serve::{FastSimBenchRecord, FASTSIM_BENCH_RECORD_VERSION};
use sos_core::job::JobPool;
use sos_core::online::{OnlineEngine, SchedulerKind};
use sos_core::opensys::{arrival_trace, calibrate_benchmarks, JobArrival, OpenSystemConfig};
use sos_core::report::{percentiles, Percentiles};
use sos_core::runner::Runner;
use sos_core::schedule::Schedule;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use workloads::spec::Benchmark;
use workloads::JobSpec;

struct Args {
    smt: usize,
    jobs: usize,
    mean_interarrival: u64,
    mean_length: u64,
    phased_fraction: f64,
    timeslice: u64,
    seed: u64,
    seeds: usize,
    thresholds: Vec<f64>,
    raw_rotations: usize,
    bench_out: Option<PathBuf>,
    assert_ws_error: Option<f64>,
    assert_response_error: Option<f64>,
    assert_slowdown_error: Option<f64>,
    assert_speedup: Option<f64>,
    assert_raw_speedup: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            smt: 4,
            jobs: 120,
            mean_interarrival: 400_000,
            mean_length: 1_200_000,
            phased_fraction: 0.25,
            timeslice: 5_000,
            seed: 42,
            seeds: 1,
            thresholds: vec![0.05, 0.10, 0.20],
            raw_rotations: 400,
            bench_out: None,
            assert_ws_error: None,
            assert_response_error: None,
            assert_slowdown_error: None,
            assert_speedup: None,
            assert_raw_speedup: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--smt" => args.smt = num(&value("--smt")?, "--smt")?,
            "--jobs" => args.jobs = num(&value("--jobs")?, "--jobs")?,
            "--mean-interarrival" => {
                args.mean_interarrival = num(&value("--mean-interarrival")?, "--mean-interarrival")?
            }
            "--mean-length" => args.mean_length = num(&value("--mean-length")?, "--mean-length")?,
            "--phased-fraction" => {
                args.phased_fraction = num(&value("--phased-fraction")?, "--phased-fraction")?
            }
            "--timeslice" => args.timeslice = num(&value("--timeslice")?, "--timeslice")?,
            "--seed" => args.seed = num(&value("--seed")?, "--seed")?,
            "--seeds" => args.seeds = num(&value("--seeds")?, "--seeds")?,
            "--thresholds" => {
                let v = value("--thresholds")?;
                args.thresholds = v
                    .split(',')
                    .map(|t| num(t.trim(), "--thresholds"))
                    .collect::<Result<_, _>>()?;
            }
            "--raw-rotations" => {
                args.raw_rotations = num(&value("--raw-rotations")?, "--raw-rotations")?
            }
            "--bench-out" => args.bench_out = Some(PathBuf::from(value("--bench-out")?)),
            "--assert-ws-error" => {
                args.assert_ws_error = Some(num(&value("--assert-ws-error")?, "--assert-ws-error")?)
            }
            "--assert-response-error" => {
                args.assert_response_error = Some(num(
                    &value("--assert-response-error")?,
                    "--assert-response-error",
                )?)
            }
            "--assert-slowdown-error" => {
                args.assert_slowdown_error = Some(num(
                    &value("--assert-slowdown-error")?,
                    "--assert-slowdown-error",
                )?)
            }
            "--assert-speedup" => {
                args.assert_speedup = Some(num(&value("--assert-speedup")?, "--assert-speedup")?)
            }
            "--assert-raw-speedup" => {
                args.assert_raw_speedup = Some(num(
                    &value("--assert-raw-speedup")?,
                    "--assert-raw-speedup",
                )?)
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.jobs == 0 || args.seeds == 0 || args.thresholds.is_empty() {
        return Err("--jobs, --seeds and --thresholds must be non-zero".into());
    }
    if args.thresholds.iter().any(|&t| !(t > 0.0)) {
        return Err("--thresholds entries must be positive".into());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?} for {flag}"))
}

/// One open-system run's summary: everything the comparison table needs.
/// Raw per-job vectors are kept so multi-seed runs can pool them before
/// taking percentiles (percentiles of the pooled population are what
/// fig5/fig6 report, and pooling is what makes tail comparisons stable).
struct RunSummary {
    wall_secs: f64,
    /// Makespan in simulated cycles (identical across modes when the
    /// extrapolator is faithful — the schedule stream is deterministic).
    sim_cycles: u64,
    /// Busy machine cycles (`timeslices × timeslice`).
    busy_cycles: u64,
    extrapolated_slices: u64,
    timeslices: u64,
    /// Solo-equivalent cycles of all completed jobs (WS numerator).
    solo_cycles: f64,
    responses: Vec<f64>,
    slowdowns: Vec<f64>,
}

/// Pools per-seed runs of one mode into the aggregate the table compares.
struct Pooled {
    wall_secs: f64,
    sim_cycles: u64,
    extrapolated_slices: u64,
    timeslices: u64,
    ws: f64,
    mean_response: f64,
    response: Percentiles,
    slowdown: Percentiles,
}

fn pool(runs: &[RunSummary]) -> Pooled {
    let busy: u64 = runs.iter().map(|r| r.busy_cycles).sum();
    let responses: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.responses.iter().copied())
        .collect();
    let slowdowns: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.slowdowns.iter().copied())
        .collect();
    Pooled {
        wall_secs: runs.iter().map(|r| r.wall_secs).sum(),
        sim_cycles: runs.iter().map(|r| r.sim_cycles).sum(),
        extrapolated_slices: runs.iter().map(|r| r.extrapolated_slices).sum(),
        timeslices: runs.iter().map(|r| r.timeslices).sum(),
        ws: runs.iter().map(|r| r.solo_cycles).sum::<f64>() / busy.max(1) as f64,
        mean_response: responses.iter().sum::<f64>() / responses.len().max(1) as f64,
        response: percentiles(&responses),
        slowdown: percentiles(&slowdowns),
    }
}

/// Drives the canonical open-system loop (submit due arrivals, step while
/// busy, jump idle gaps) against one engine and summarizes it.
fn run_scenario(
    cfg: &OpenSystemConfig,
    trace: &[JobArrival],
    solo: &HashMap<Benchmark, f64>,
    fastsim: Option<FastSimPolicy>,
) -> RunSummary {
    let mut online = cfg.online();
    online.fastsim = fastsim;
    let mut engine = OnlineEngine::new(SchedulerKind::Sos, &online);
    let started = Instant::now();
    let mut completed = Vec::with_capacity(trace.len());
    let mut next = 0usize;
    while completed.len() < trace.len() {
        while next < trace.len() && trace[next].arrival <= engine.now() {
            engine.submit(trace[next].clone());
            next += 1;
        }
        if engine.live_count() == 0 {
            engine.jump_to(trace[next].arrival);
            continue;
        }
        completed.extend(engine.step());
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let solo_ipc = |b: Benchmark| solo.get(&b).copied().unwrap_or(1.0).max(1e-9);
    let responses: Vec<f64> = completed.iter().map(|r| r.response() as f64).collect();
    let slowdowns: Vec<f64> = completed
        .iter()
        .map(|r| {
            r.response() as f64 / (r.arrival.instructions as f64 / solo_ipc(r.arrival.benchmark))
        })
        .collect();
    let solo_total: f64 = completed
        .iter()
        .map(|r| r.arrival.instructions as f64 / solo_ipc(r.arrival.benchmark))
        .sum();
    let busy_cycles = engine.timeslices() * online.timeslice;
    RunSummary {
        wall_secs,
        sim_cycles: engine.now(),
        busy_cycles,
        extrapolated_slices: engine
            .fastsim_counters()
            .map(|c| c.extrapolated_slices)
            .unwrap_or(0),
        timeslices: engine.timeslices(),
        solo_cycles: solo_total,
        responses,
        slowdowns,
    }
}

/// Relative error of `fast` against `detail`, as a fraction.
fn rel_err(fast: f64, detail: f64) -> f64 {
    if detail == 0.0 {
        if fast == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (fast - detail).abs() / detail.abs()
    }
}

/// Raw-throughput ceiling: a steady 8-job pool on a fixed round-robin
/// schedule (no resampling machinery), detailed vs fast. Returns
/// `(detail_cps, fast_cps, extrapolated_fraction)` in sim-cycles/sec.
fn raw_throughput(smt: usize, timeslice: u64, rotations: usize, seed: u64) -> (f64, f64, f64) {
    let specs: Vec<JobSpec> = [
        Benchmark::Fp,
        Benchmark::Gcc,
        Benchmark::Mg,
        Benchmark::Go,
        Benchmark::Swim,
        Benchmark::Is,
        Benchmark::Array,
        Benchmark::Fp,
    ]
    .iter()
    .map(|&b| JobSpec::single(b))
    .collect();
    let y = smt.clamp(1, specs.len());
    let schedule = Schedule::new((0..specs.len()).collect(), y, y);
    let run = |fast: bool| {
        let pool = JobPool::from_specs(&specs, seed);
        let mut runner = Runner::new(MachineConfig::alpha21264_like(smt), pool, timeslice);
        if fast {
            runner.set_fastsim(Some(FastSimPolicy::default()));
        }
        // One warmup rotation so cold caches don't bill the detailed run.
        let _ = runner.run_schedule(&schedule, 1);
        let started = Instant::now();
        let rots = runner.run_schedule(&schedule, rotations);
        let wall = started.elapsed().as_secs_f64();
        let cycles: u64 = rots.iter().map(|r| r.cycles()).sum();
        if let Some(c) = runner.fastsim_counters() {
            eprintln!(
                "# raw fast run: {} detailed / {} extrapolated slices, {} locks, {} fallbacks, {} resamples ok, {} resyncs",
                c.detailed_slices,
                c.extrapolated_slices,
                c.phase_locks,
                c.fallbacks,
                c.resamples_ok,
                c.resyncs
            );
        }
        let extrap = runner
            .fastsim_counters()
            .map(|c| c.extrapolated_fraction())
            .unwrap_or(0.0);
        (cycles as f64 / wall.max(1e-9), extrap)
    };
    let (detail_cps, _) = run(false);
    let (fast_cps, extrap) = run(true);
    (detail_cps, fast_cps, extrap)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fastsim-compare: {e}");
            std::process::exit(2);
        }
    };
    sos_bench::init_cache();

    // One scenario per seed: same shape, independent arrival traces. The
    // table compares the pooled populations.
    let mut scenarios = Vec::new();
    for i in 0..args.seeds {
        let mut cfg = OpenSystemConfig::scaled(args.smt);
        cfg.mean_job_cycles = args.mean_length;
        cfg.mean_interarrival = args.mean_interarrival;
        cfg.timeslice = args.timeslice;
        cfg.num_jobs = args.jobs;
        cfg.phased_fraction = args.phased_fraction;
        cfg.predictor = sos_core::PredictorKind::Ipc;
        cfg.seed = args.seed + 9973 * i as u64;
        let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
        let trace = arrival_trace(&cfg, &solo);
        scenarios.push((cfg, trace, solo));
    }
    let total_jobs: usize = scenarios.iter().map(|(_, t, _)| t.len()).sum();

    eprintln!(
        "# fastsim-compare: SMT {}, {} jobs over {} seed(s) from {}: full detail first ...",
        args.smt, total_jobs, args.seeds, args.seed
    );
    let detail_runs: Vec<RunSummary> = scenarios
        .iter()
        .map(|(cfg, trace, solo)| run_scenario(cfg, trace, solo, None))
        .collect();
    let detail = pool(&detail_runs);
    println!(
        "full detail: wall {:.2}s  {:.2}M sim-cycles/s  WS {:.4}  mean response {:.0}  p99 {:.0}  slowdown p99 {:.3}",
        detail.wall_secs,
        detail.sim_cycles as f64 / detail.wall_secs.max(1e-9) / 1e6,
        detail.ws,
        detail.mean_response,
        detail.response.p99,
        detail.slowdown.p99
    );
    println!();
    println!(
        "{:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "threshold",
        "speedup",
        "extrap%",
        "WSerr%",
        "meanRTe%",
        "p95RTe%",
        "p99RTe%",
        "p95SDe%",
        "p99SDe%",
        "cyc-err"
    );

    let mut failures = Vec::new();
    for &threshold in &args.thresholds {
        let policy = FastSimPolicy::with_threshold(threshold);
        let fast_runs: Vec<RunSummary> = scenarios
            .iter()
            .map(|(cfg, trace, solo)| run_scenario(cfg, trace, solo, Some(policy.clone())))
            .collect();
        let fast = pool(&fast_runs);
        let speedup = detail.wall_secs / fast.wall_secs.max(1e-9);
        let extrap_pct = 100.0 * fast.extrapolated_slices as f64 / fast.timeslices.max(1) as f64;
        let ws_err = rel_err(fast.ws, detail.ws);
        let mean_rt_err = rel_err(fast.mean_response, detail.mean_response);
        let p95_rt_err = rel_err(fast.response.p95, detail.response.p95);
        let p99_rt_err = rel_err(fast.response.p99, detail.response.p99);
        let p95_sd_err = rel_err(fast.slowdown.p95, detail.slowdown.p95);
        let p99_sd_err = rel_err(fast.slowdown.p99, detail.slowdown.p99);
        let cycle_err = rel_err(fast.sim_cycles as f64, detail.sim_cycles as f64);
        println!(
            "{:>9.3} {:>7.2}x {:>7.1}% {:>8.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.4}",
            threshold,
            speedup,
            extrap_pct,
            100.0 * ws_err,
            100.0 * mean_rt_err,
            100.0 * p95_rt_err,
            100.0 * p99_rt_err,
            100.0 * p95_sd_err,
            100.0 * p99_sd_err,
            cycle_err
        );

        let mut check = |name: &str, bound_pct: Option<f64>, err: f64| {
            if let Some(b) = bound_pct {
                if 100.0 * err > b {
                    failures.push(format!(
                        "threshold {threshold}: {name} error {:.3}% exceeds ±{b}%",
                        100.0 * err
                    ));
                }
            }
        };
        check("WS", args.assert_ws_error, ws_err);
        check("mean response", args.assert_response_error, mean_rt_err);
        check("p95 response", args.assert_response_error, p95_rt_err);
        check("p95 slowdown", args.assert_slowdown_error, p95_sd_err);
        if let Some(min) = args.assert_speedup {
            if speedup < min {
                failures.push(format!(
                    "threshold {threshold}: end-to-end speedup {speedup:.2}x below {min}x"
                ));
            }
        }

        if let Some(path) = &args.bench_out {
            let record = FastSimBenchRecord {
                schema: FASTSIM_BENCH_RECORD_VERSION,
                kind: "fastsim".to_string(),
                unix_secs: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0),
                seed: args.seed,
                jobs: total_jobs as u64,
                fastsim: policy.describe(),
                detail_wall_secs: detail.wall_secs,
                fast_wall_secs: fast.wall_secs,
                speedup,
                detail_sim_cycles_per_sec: detail.sim_cycles as f64 / detail.wall_secs.max(1e-9),
                fast_sim_cycles_per_sec: fast.sim_cycles as f64 / fast.wall_secs.max(1e-9),
                extrapolated_fraction: fast.extrapolated_slices as f64
                    / fast.timeslices.max(1) as f64,
                detail_ws: detail.ws,
                fast_ws: fast.ws,
                ws_rel_error: ws_err,
                response_rel_error: mean_rt_err,
                response_p95_rel_error: p95_rt_err,
                response_p99_rel_error: p99_rt_err,
                slowdown_p95_rel_error: p95_sd_err,
                slowdown_p99_rel_error: p99_sd_err,
            };
            if let Err(e) = record.append_to(path) {
                eprintln!("fastsim-compare: bench-out {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    println!();
    let (detail_cps, fast_cps, extrap) =
        raw_throughput(args.smt, args.timeslice, args.raw_rotations, args.seed);
    let raw_speedup = fast_cps / detail_cps.max(1e-9);
    println!(
        "raw runner throughput: detailed {:.2}M cycles/s  fast {:.2}M cycles/s  speedup {:.1}x  ({:.1}% slices extrapolated)",
        detail_cps / 1e6,
        fast_cps / 1e6,
        raw_speedup,
        100.0 * extrap
    );
    if let Some(min) = args.assert_raw_speedup {
        if raw_speedup < min {
            failures.push(format!(
                "raw runner speedup {raw_speedup:.1}x below required {min}x"
            ));
        }
    }

    if !failures.is_empty() {
        eprintln!("fastsim-compare: FAILED");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("fastsim-compare: all assertions passed");
}

//! `sos-serve` — a long-running online job-scheduling daemon.
//!
//! Accepts job submissions over a local TCP socket (JSON lines; see
//! `sos_bench::serve` for the protocol) and schedules them on a simulated
//! SMT machine through `sos_core::online::OnlineEngine`, under either the
//! naive arrival-order policy or SOS with live resampling. The daemon is
//! the serving-layer counterpart of the batch §9 reproduction (`fig5`,
//! `fig6`): same engine, driven by wire events instead of a pre-generated
//! trace.
//!
//! Service behaviour:
//! * **Admission control** — at most `--queue-cap` jobs in the system;
//!   excess submissions get an explicit `backpressure` error reply.
//! * **Graceful drain** — `drain`/`shutdown` stop admission and complete
//!   every in-flight job before replying / exiting 0.
//! * **Snapshot/restore** — scheduler accounting is written atomically to
//!   `<snapshot-dir>/snapshot.json` every `--snapshot-every` completions
//!   and on shutdown; on restart, completed-job accounting is restored
//!   exactly and in-flight jobs are re-queued from their arrival records.
//! * **Live metrics** — every request, error, departure, and engine
//!   timeslice feeds a `sos_core::metrics::MetricsHub`; the `metrics` verb
//!   returns the versioned snapshot plus a Prometheus text exposition, and
//!   the `stats` verb reports exact and histogram-approximated p50/p95/p99
//!   along with per-class protocol error counts.
//! * **Latency SLOs** — per-job response time and slowdown are tracked
//!   against `--slo-response` / `--slo-slowdown` at `--slo-objective`,
//!   with attainment and error-budget burn rate in the `metrics` snapshot.
//! * **Request-scoped tracing** — with `--trace FILE`, every job's life
//!   (admit → queue wait → schedule decision → timeslices → complete) is
//!   recorded as Perfetto-compatible spans and written as a Chrome trace
//!   at shutdown.
//!
//! * **Fast simulation** — `--fast` (optionally `--fast-threshold F`)
//!   starts the engine with phase-aware sampled fast simulation; the
//!   `fastsim` verb toggles it at runtime, and `status` echoes the active
//!   policy plus the extrapolated-timeslice count.
//!
//! * **Learned prediction** — `--predictor learned|bandit` (any
//!   `PredictorKind` name is accepted) runs the SOS optimize phase on the
//!   `sos_core::learn` online model; the learner's state rides in the
//!   snapshot so restarts keep the trained model, and its counters surface
//!   under `learn.*` in the `metrics` verb.
//!
//! Usage: `sos-serve [--port P] [--policy sos|naive] [--smt N]
//! [--queue-cap N] [--timeslice C] [--predictor NAME] [--snapshot-dir DIR]
//! [--snapshot-every N] [--seed S] [--fast] [--fast-threshold F]
//! [--metrics FILE] [--trace FILE]
//! [--slo-response CYCLES] [--slo-slowdown X] [--slo-objective F]
//! [--metrics-window CYCLES]`
//!
//! The daemon prints `sos-serve listening on ADDR` once ready (with
//! `--port 0` the OS picks the port; parse it from this line).

use smtsim::FastSimPolicy;
use sos_bench::serve::{
    CompletedJob, MetricsReply, Request, Response, Snapshot, StatsReply, StatusReply,
};
use sos_core::metrics::{Counter, EngineMetrics, Gauge, LearnMetrics, MetricsHub};
use sos_core::online::{OnlineConfig, OnlineEngine, SchedulerKind};
use sos_core::opensys::{calibrate_benchmarks, JobArrival, JOB_KINDS};
use sos_core::report::{percentiles, Percentiles};
use sos_core::telemetry;
use sos_core::PredictorKind;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::spec::Benchmark;

/// The protocol verbs with per-verb request counters and latency series.
const VERBS: [&str; 7] = [
    "submit", "status", "stats", "metrics", "fastsim", "drain", "shutdown",
];

struct Args {
    port: u16,
    policy: SchedulerKind,
    smt: usize,
    timeslice: u64,
    queue_cap: usize,
    predictor: PredictorKind,
    sample_schedules: usize,
    base_interval: u64,
    calibration_cycles: u64,
    seed: u64,
    fast: bool,
    fast_threshold: Option<f64>,
    snapshot_dir: PathBuf,
    snapshot_every: u64,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    slo_response: u64,
    slo_slowdown: f64,
    slo_objective: f64,
    metrics_window: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            port: 7077,
            policy: SchedulerKind::Sos,
            smt: 4,
            timeslice: 5_000,
            queue_cap: 64,
            predictor: PredictorKind::Ipc,
            sample_schedules: 6,
            base_interval: 500_000,
            calibration_cycles: 60_000,
            seed: 0x5E54E,
            fast: false,
            fast_threshold: None,
            snapshot_dir: PathBuf::from("results/serve"),
            snapshot_every: 16,
            metrics: None,
            trace: None,
            slo_response: 2_000_000,
            slo_slowdown: 8.0,
            slo_objective: 0.95,
            metrics_window: 1_000_000,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--port" => args.port = num(&value("--port")?, "--port")?,
            "--policy" => {
                let v = value("--policy")?;
                args.policy = SchedulerKind::parse(&v)
                    .ok_or_else(|| format!("unknown policy {v:?} (naive|sos)"))?;
            }
            "--smt" => args.smt = num(&value("--smt")?, "--smt")?,
            "--timeslice" => args.timeslice = num(&value("--timeslice")?, "--timeslice")?,
            "--queue-cap" => args.queue_cap = num(&value("--queue-cap")?, "--queue-cap")?,
            "--predictor" => {
                let v = value("--predictor")?;
                args.predictor = PredictorKind::parse(&v).ok_or_else(|| {
                    format!(
                        "unknown predictor {v:?} (one of {})",
                        PredictorKind::names()
                    )
                })?;
            }
            "--sample-schedules" => {
                args.sample_schedules = num(&value("--sample-schedules")?, "--sample-schedules")?
            }
            "--base-interval" => {
                args.base_interval = num(&value("--base-interval")?, "--base-interval")?
            }
            "--calibration-cycles" => {
                args.calibration_cycles =
                    num(&value("--calibration-cycles")?, "--calibration-cycles")?
            }
            "--seed" => args.seed = num(&value("--seed")?, "--seed")?,
            "--fast" => args.fast = true,
            "--fast-threshold" => {
                args.fast = true;
                args.fast_threshold = Some(num(&value("--fast-threshold")?, "--fast-threshold")?);
            }
            "--snapshot-dir" => args.snapshot_dir = PathBuf::from(value("--snapshot-dir")?),
            "--snapshot-every" => {
                args.snapshot_every = num(&value("--snapshot-every")?, "--snapshot-every")?
            }
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--slo-response" => {
                args.slo_response = num(&value("--slo-response")?, "--slo-response")?
            }
            "--slo-slowdown" => {
                args.slo_slowdown = num(&value("--slo-slowdown")?, "--slo-slowdown")?
            }
            "--slo-objective" => {
                args.slo_objective = num(&value("--slo-objective")?, "--slo-objective")?
            }
            "--metrics-window" => {
                args.metrics_window = num(&value("--metrics-window")?, "--metrics-window")?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.smt == 0 || args.timeslice == 0 || args.queue_cap == 0 {
        return Err("--smt, --timeslice, and --queue-cap must be positive".into());
    }
    if !(args.slo_objective > 0.0 && args.slo_objective <= 1.0) {
        return Err("--slo-objective must be in (0, 1]".into());
    }
    let slowdown_ok = args.slo_slowdown > 0.0; // false for NaN too
    if !slowdown_ok || args.slo_response == 0 || args.metrics_window == 0 {
        return Err("--slo-response, --slo-slowdown, and --metrics-window must be positive".into());
    }
    if let Some(t) = args.fast_threshold {
        if !(t > 0.0) {
            return Err("--fast-threshold must be positive".into());
        }
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?} for {flag}"))
}

/// One request routed from a connection thread to the scheduler thread.
struct Msg {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// Counter/gauge handles for the serve loop, resolved once at startup so
/// the per-request and per-departure cost is a relaxed atomic write.
struct ServeMetrics {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    snapshot_age: Arc<Gauge>,
    snapshot_write_us: Arc<Gauge>,
    cache_hits: Arc<Gauge>,
    cache_misses: Arc<Gauge>,
    err_unparsable: Arc<Counter>,
    err_unknown_cmd: Arc<Counter>,
    err_bad_submit: Arc<Counter>,
    err_backpressure: Arc<Counter>,
    err_draining: Arc<Counter>,
}

impl ServeMetrics {
    fn register(hub: &MetricsHub) -> Self {
        ServeMetrics {
            submitted: hub.counter("serve.submitted"),
            completed: hub.counter("serve.completed"),
            rejected: hub.counter("serve.rejected"),
            queue_depth: hub.gauge("serve.queue_depth"),
            snapshot_age: hub.gauge("serve.snapshot_age_cycles"),
            snapshot_write_us: hub.gauge("serve.snapshot_write_us"),
            cache_hits: hub.gauge("serve.cache_hits"),
            cache_misses: hub.gauge("serve.cache_misses"),
            err_unparsable: hub.counter("serve.errors.unparsable"),
            err_unknown_cmd: hub.counter("serve.errors.unknown_cmd"),
            err_bad_submit: hub.counter("serve.errors.bad_submit"),
            err_backpressure: hub.counter("serve.errors.backpressure"),
            err_draining: hub.counter("serve.errors.draining"),
        }
    }

    /// The error counters by wire-visible class name, for the `stats` verb.
    fn error_classes(&self) -> BTreeMap<String, u64> {
        [
            ("unparsable", &self.err_unparsable),
            ("unknown_cmd", &self.err_unknown_cmd),
            ("bad_submit", &self.err_bad_submit),
            ("backpressure", &self.err_backpressure),
            ("draining", &self.err_draining),
        ]
        .into_iter()
        .map(|(k, c)| (k.to_string(), c.get()))
        .collect()
    }
}

/// The scheduler thread's full state.
struct Daemon {
    engine: OnlineEngine,
    solo: HashMap<Benchmark, f64>,
    hub: Arc<MetricsHub>,
    sm: ServeMetrics,
    queue_cap: usize,
    draining: bool,
    shutdown: bool,
    drain_waiters: Vec<mpsc::Sender<Response>>,
    completed: Vec<CompletedJob>,
    restored: u64,
    rejected: u64,
    /// Jobs accounted in the restored snapshot but not resubmitted to this
    /// process's engine (so `submitted_base + engine.submitted()` is the
    /// lifetime total across restarts).
    submitted_base: u64,
    snapshot_dir: PathBuf,
    snapshot_every: u64,
    since_snapshot: u64,
    last_snapshot_cycles: u64,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
}

impl Daemon {
    fn policy(&self) -> &'static str {
        self.engine.kind().name()
    }

    fn solo_ipc(&self, bench: Benchmark) -> f64 {
        self.solo.get(&bench).copied().unwrap_or(1.0).max(1e-6)
    }

    fn handle(&mut self, msg: Msg) {
        let start = Instant::now();
        let verb = VERBS
            .iter()
            .copied()
            .find(|v| *v == msg.req.cmd)
            .unwrap_or("unknown");
        self.hub.counter(&format!("serve.requests.{verb}")).inc();
        let reply = match msg.req.cmd.as_str() {
            "submit" => Some(self.handle_submit(&msg.req)),
            "status" => Some(self.handle_status()),
            "stats" => Some(self.handle_stats()),
            "metrics" => Some(self.handle_metrics()),
            "fastsim" => Some(self.handle_fastsim(&msg.req)),
            "drain" | "shutdown" => {
                self.draining = true;
                if msg.req.cmd == "shutdown" {
                    self.shutdown = true;
                }
                if self.engine.live_count() == 0 {
                    Some(Response::ok())
                } else {
                    // Deferred: answered when the last in-flight job departs.
                    self.drain_waiters.push(msg.reply.clone());
                    None
                }
            }
            other => {
                self.sm.err_unknown_cmd.inc();
                Some(Response::err(format!(
                    "unknown cmd {other:?} (submit|status|stats|metrics|fastsim|drain|shutdown)"
                )))
            }
        };
        if verb != "unknown" {
            self.hub.record(
                &format!("serve.request_us.{verb}"),
                self.engine.now(),
                start.elapsed().as_micros() as u64,
            );
        }
        if let Some(reply) = reply {
            let _ = msg.reply.send(reply);
        }
    }

    fn handle_submit(&mut self, req: &Request) -> Response {
        if self.draining {
            self.sm.err_draining.inc();
            return Response::err("draining");
        }
        if self.engine.live_count() >= self.queue_cap {
            self.rejected += 1;
            self.sm.rejected.inc();
            self.sm.err_backpressure.inc();
            return Response::err("backpressure");
        }
        let Some(name) = req.bench.as_deref() else {
            self.sm.err_bad_submit.inc();
            return Response::err("submit requires a bench field");
        };
        let Some(benchmark) = JOB_KINDS
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
        else {
            self.sm.err_bad_submit.inc();
            let known: Vec<&str> = JOB_KINDS.iter().map(|b| b.name()).collect();
            return Response::err(format!("unknown bench {name:?} (one of {known:?})"));
        };
        let instructions = match (req.instructions, req.cycles) {
            (Some(i), _) => i,
            (None, Some(c)) => ((c as f64 * self.solo_ipc(benchmark)) as u64).max(1_000),
            (None, None) => {
                self.sm.err_bad_submit.inc();
                return Response::err("submit requires cycles or instructions");
            }
        };
        if instructions == 0 {
            self.sm.err_bad_submit.inc();
            return Response::err("job length must be positive");
        }
        let arrival = JobArrival {
            arrival: self.engine.now(),
            benchmark,
            instructions,
            phased: req.phased.unwrap_or(false),
        };
        let key = self.engine.submit(arrival);
        self.sm.submitted.inc();
        self.sm.queue_depth.set(self.engine.live_count() as f64);
        let mut r = Response::ok();
        r.id = Some(self.submitted_base + key as u64);
        r
    }

    fn handle_status(&mut self) -> Response {
        let mut r = Response::ok();
        r.status = Some(StatusReply {
            policy: self.policy().to_string(),
            smt: self.engine.config().smt as u64,
            live: self.engine.live_count() as u64,
            queue_cap: self.queue_cap as u64,
            submitted: self.submitted_base + self.engine.submitted() as u64,
            completed: self.completed.len() as u64,
            rejected: self.rejected,
            now_cycles: self.engine.now(),
            draining: self.draining,
            restored: self.restored,
            fastsim: self.engine.fastsim_policy().map(|p| p.describe()),
            extrapolated_slices: self
                .engine
                .fastsim_counters()
                .map(|c| c.extrapolated_slices),
        });
        r
    }

    /// Answers the `fastsim` verb: switches phase-aware sampled fast
    /// simulation on or off at runtime and echoes the new status. Detailed
    /// re-sampling restarts from scratch after every toggle (phase state is
    /// rebuilt, never carried across policies).
    fn handle_fastsim(&mut self, req: &Request) -> Response {
        let enable = req.fast.unwrap_or(true);
        let policy = if enable {
            Some(match req.fast_threshold {
                Some(t) if t > 0.0 => FastSimPolicy::with_threshold(t),
                Some(t) => {
                    return Response::err(format!("fast_threshold must be positive, got {t}"))
                }
                None => FastSimPolicy::default(),
            })
        } else {
            None
        };
        self.engine.set_fastsim(policy);
        self.handle_status()
    }

    fn handle_stats(&mut self) -> Response {
        let responses: Vec<f64> = self.completed.iter().map(|c| c.response as f64).collect();
        let slowdowns: Vec<f64> = self.completed.iter().map(|c| c.slowdown).collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let response_approx = self
            .hub
            .with_histogram("serve.response_cycles", |h| h.merged().percentile_summary())
            .unwrap_or(Percentiles {
                p50: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
            });
        let cache = sos_core::cache::stats();
        let mut r = Response::ok();
        r.stats = Some(StatsReply {
            completed: self.completed.len() as u64,
            mean_response: mean(&responses),
            response: percentiles(&responses),
            mean_slowdown: mean(&slowdowns),
            slowdown: percentiles(&slowdowns),
            response_approx,
            resamples: self.engine.resamples(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            errors: Some(self.sm.error_classes()),
        });
        r
    }

    /// Answers the `metrics` verb: refresh the point-in-time gauges, then
    /// snapshot the hub as versioned JSON plus a Prometheus exposition.
    fn handle_metrics(&mut self) -> Response {
        self.refresh_gauges();
        let snapshot = self.hub.snapshot(self.engine.now());
        let prometheus = snapshot.prometheus_text();
        let mut r = Response::ok();
        r.metrics = Some(Box::new(MetricsReply {
            snapshot,
            prometheus,
        }));
        r
    }

    /// Updates gauges that are sampled (not event-driven): queue depth,
    /// snapshot age, evaluation-cache hit/miss totals.
    fn refresh_gauges(&self) {
        self.sm.queue_depth.set(self.engine.live_count() as f64);
        self.sm
            .snapshot_age
            .set(self.engine.now().saturating_sub(self.last_snapshot_cycles) as f64);
        let cache = sos_core::cache::stats();
        self.sm.cache_hits.set(cache.hits as f64);
        self.sm.cache_misses.set(cache.misses as f64);
    }

    /// Books a batch of departures: SLO accounting, hub metrics, periodic
    /// snapshot, drain notifications.
    fn after_step(&mut self, departed: Vec<sos_core::online::JobRecord>) {
        let n = departed.len() as u64;
        let now = self.engine.now();
        for rec in departed {
            let response = rec.response();
            let service = rec.arrival.instructions as f64 / self.solo_ipc(rec.arrival.benchmark);
            let slowdown = if service > 0.0 {
                response as f64 / service
            } else {
                f64::NAN
            };
            self.sm.completed.inc();
            self.hub.record("serve.response_cycles", now, response);
            self.hub.observe_slo("serve.response_cycles", response);
            if slowdown.is_finite() {
                let x100 = (slowdown * 100.0) as u64;
                self.hub.record("serve.slowdown_x100", now, x100);
                self.hub.observe_slo("serve.slowdown_x100", x100);
            }
            self.completed.push(CompletedJob {
                arrival: rec.arrival.arrival,
                response,
                slowdown,
            });
        }
        if n == 0 {
            return;
        }
        self.sm.queue_depth.set(self.engine.live_count() as f64);
        self.since_snapshot += n;
        if self.since_snapshot >= self.snapshot_every {
            self.write_snapshot();
        }
        if self.engine.live_count() == 0 && self.draining {
            for w in self.drain_waiters.drain(..) {
                let _ = w.send(Response::ok());
            }
        }
    }

    fn write_snapshot(&mut self) {
        self.since_snapshot = 0;
        let started = Instant::now();
        let snap = Snapshot {
            version: sos_bench::serve::SNAPSHOT_VERSION,
            policy: self.policy().to_string(),
            smt: self.engine.config().smt as u64,
            seed: self.engine.config().seed,
            now_cycles: self.engine.now(),
            submitted: self.submitted_base + self.engine.submitted() as u64,
            rejected: self.rejected,
            completed: self.completed.clone(),
            inflight: self.engine.live_arrivals(),
            learner: self.engine.learner().cloned(),
        };
        if let Err(e) = snap.store(&self.snapshot_dir) {
            eprintln!(
                "sos-serve: snapshot to {} failed: {e} (continuing without persistence)",
                self.snapshot_dir.display()
            );
        } else {
            self.last_snapshot_cycles = self.engine.now();
            self.sm.snapshot_age.set(0.0);
            self.sm
                .snapshot_write_us
                .set(started.elapsed().as_micros() as f64);
        }
    }

    /// Writes end-of-life telemetry: the Chrome trace of request spans to
    /// `--trace`, and drained events plus a hub metrics snapshot (in the
    /// PR-1 registry line format) appended to `--metrics`.
    fn export_telemetry(&mut self) {
        if self.metrics.is_none() && self.trace.is_none() {
            return;
        }
        let snap = telemetry::global().drain();
        if let Some(path) = self.trace.clone() {
            if let Err(e) = std::fs::write(&path, snap.chrome_trace_json()) {
                eprintln!("sos-serve: trace export to {} failed: {e}", path.display());
            }
        }
        if let Some(path) = self.metrics.clone() {
            let mut out = telemetry::events_to_jsonl(&snap.events);
            let mut metrics = snap.metrics;
            self.refresh_gauges();
            metrics.extend(self.hub.snapshot(self.engine.now()).to_registry_metrics());
            out.push_str(&telemetry::metrics_to_jsonl(&metrics));
            let res = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = res {
                eprintln!(
                    "sos-serve: metrics export to {} failed: {e}",
                    path.display()
                );
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sos-serve: {e}");
            std::process::exit(2);
        }
    };
    if args.metrics.is_some() || args.trace.is_some() {
        telemetry::enable();
    }
    sos_bench::init_cache();
    eprintln!(
        "# sos-serve: calibrating {} benchmarks at SMT {} ...",
        JOB_KINDS.len(),
        args.smt
    );
    let solo = calibrate_benchmarks(args.smt, args.calibration_cycles, args.seed);

    let hub = Arc::new(MetricsHub::new());
    for verb in VERBS {
        hub.register_histogram(&format!("serve.request_us.{verb}"), args.metrics_window, 8);
    }
    hub.register_histogram("serve.response_cycles", args.metrics_window, 8);
    hub.register_histogram("serve.slowdown_x100", args.metrics_window, 8);
    hub.register_slo(
        "serve.response_cycles",
        args.slo_response,
        args.slo_objective,
    );
    hub.register_slo(
        "serve.slowdown_x100",
        (args.slo_slowdown * 100.0).round() as u64,
        args.slo_objective,
    );
    let sm = ServeMetrics::register(&hub);

    let fastsim = if args.fast {
        Some(match args.fast_threshold {
            Some(t) => FastSimPolicy::with_threshold(t),
            None => FastSimPolicy::default(),
        })
    } else {
        None
    };
    let cfg = OnlineConfig {
        smt: args.smt,
        timeslice: args.timeslice,
        sample_schedules: args.sample_schedules,
        predictor: args.predictor,
        drift_threshold: Some(0.35),
        base_interval: args.base_interval,
        seed: args.seed,
        fastsim,
        learn: None,
    };
    if let Some(p) = &cfg.fastsim {
        eprintln!("# sos-serve: fastsim on ({})", p.describe());
    }
    let mut engine = OnlineEngine::new(args.policy, &cfg);
    engine.attach_metrics(EngineMetrics::register(&hub));
    if cfg.effective_learn().is_some() {
        eprintln!(
            "# sos-serve: learned prediction on ({})",
            args.predictor.name()
        );
        engine.attach_learn_metrics(LearnMetrics::register(&hub));
    }
    if args.trace.is_some() {
        engine.set_job_spans(true);
    }

    // Restore the latest snapshot, if one matches this configuration.
    let mut daemon_completed = Vec::new();
    let mut restored = 0u64;
    let mut rejected = 0u64;
    let mut submitted_base = 0u64;
    if let Some(snap) = Snapshot::load(&args.snapshot_dir) {
        if snap.policy == args.policy.name() && snap.smt == args.smt as u64 {
            engine.jump_to(snap.now_cycles);
            restored = snap.completed.len() as u64;
            rejected = snap.rejected;
            submitted_base = snap.submitted.saturating_sub(snap.inflight.len() as u64);
            daemon_completed = snap.completed;
            let inflight = snap.inflight.len();
            for job in snap.inflight {
                engine.submit(job);
            }
            // Restore the model only when this run is actually learning —
            // a fixed-predictor restart ignores a stale learner rather
            // than silently turning shadow training back on.
            let learned = match snap.learner {
                Some(learner) if cfg.effective_learn().is_some() => {
                    engine.restore_learner(learner);
                    ", learner restored"
                }
                _ => "",
            };
            eprintln!(
                "# sos-serve: restored snapshot ({restored} completed, {inflight} in-flight re-queued{learned})"
            );
        } else {
            eprintln!(
                "# sos-serve: ignoring snapshot for policy={} smt={} (running policy={} smt={})",
                snap.policy,
                snap.smt,
                args.policy.name(),
                args.smt
            );
        }
    }

    let err_unparsable = sm.err_unparsable.clone();
    let mut daemon = Daemon {
        engine,
        solo,
        hub,
        sm,
        queue_cap: args.queue_cap,
        draining: false,
        shutdown: false,
        drain_waiters: Vec::new(),
        completed: daemon_completed,
        restored,
        rejected,
        submitted_base,
        snapshot_dir: args.snapshot_dir.clone(),
        snapshot_every: args.snapshot_every.max(1),
        since_snapshot: 0,
        last_snapshot_cycles: 0,
        metrics: args.metrics.clone(),
        trace: args.trace.clone(),
    };

    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sos-serve: cannot bind 127.0.0.1:{}: {e}", args.port);
            std::process::exit(2);
        }
    };
    let addr = listener.local_addr().expect("bound socket has an address");
    println!("sos-serve listening on {addr}");
    let _ = std::io::stdout().flush();

    let (tx, rx) = mpsc::channel::<Msg>();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let tx = tx.clone();
                    let unparsable = err_unparsable.clone();
                    std::thread::spawn(move || serve_connection(stream, tx, unparsable));
                }
                Err(e) => eprintln!("sos-serve: accept failed: {e}"),
            }
        }
    });

    // The scheduler loop: drain control messages, then either run one
    // timeslice or block briefly waiting for work.
    loop {
        loop {
            match rx.try_recv() {
                Ok(msg) => daemon.handle(msg),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        }
        if daemon.shutdown && daemon.engine.live_count() == 0 {
            break;
        }
        if daemon.engine.live_count() > 0 {
            let departed = daemon.engine.step();
            daemon.after_step(departed);
        } else {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(msg) => daemon.handle(msg),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    daemon.write_snapshot();
    daemon.export_telemetry();
    sos_bench::print_cache_stats();
    eprintln!(
        "# sos-serve: shutdown after {} completed jobs at cycle {}",
        daemon.completed.len(),
        daemon.engine.now()
    );
    // Give connection threads a beat to flush the shutdown reply before the
    // process (and its sockets) go away.
    std::thread::sleep(Duration::from_millis(200));
    std::process::exit(0);
}

/// Reads JSON-line requests off one connection, routing well-formed ones to
/// the scheduler thread and answering malformed ones directly with a
/// diagnostic error reply (counted under `serve.errors.unparsable`).
fn serve_connection(stream: TcpStream, tx: mpsc::Sender<Msg>, unparsable: Arc<Counter>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sos-serve: cannot clone stream for {peer}: {e}");
            return;
        }
    });
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Err(e) => {
                unparsable.inc();
                Response::err(format!("unparsable request: {e}"))
            }
            Ok(req) => {
                let (rtx, rrx) = mpsc::channel();
                if tx.send(Msg { req, reply: rtx }).is_err() {
                    break; // scheduler is gone; daemon is exiting
                }
                match rrx.recv() {
                    Ok(r) => r,
                    Err(_) => break,
                }
            }
        };
        let json = match serde_json::to_string(&response) {
            Ok(j) => j,
            Err(e) => format!("{{\"ok\":false,\"error\":\"reply serialization: {e}\"}}"),
        };
        if writer
            .write_all(json.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

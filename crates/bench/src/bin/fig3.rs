//! Reproduces Figure 3: weighted speedup achieved by SOS for all 13 jobmix /
//! SMT-level / replacement-policy combinations, per predictor.
//!
//! Also prints the Figure 3 headline statistics: the Score predictor's gain
//! over unlucky (worst) schedules and over the expected value of random
//! schedules, excluding the Jpb(10,2,2) outlier as the paper does.
//!
//! Usage: `cargo run --release -p sos-bench --bin fig3 [cycle_scale]`

use sos_core::sos::SosScheduler;
use sos_core::{ExperimentSpec, PredictorKind};

fn main() {
    let scale = sos_bench::scale_from_args();
    let cfg = sos_bench::config(scale);
    sos_bench::init_cache();
    eprintln!("# running 13 experiments at 1/{scale} paper scale ...");

    let specs = ExperimentSpec::all_paper_experiments();
    let reports =
        sos_bench::parallel_map(specs, |spec| SosScheduler::evaluate_experiment(&spec, &cfg));

    println!("Figure 3 — weighted speedup achieved by SOS for several jobmixes");
    for report in &reports {
        sos_bench::print_experiment_summary(report);
        sos_bench::print_predictor_bars(report);
    }

    // Headline: Score vs worst and vs average, excluding Jpb(10,2,2).
    let mut over_worst = Vec::new();
    let mut over_avg = Vec::new();
    for report in &reports {
        if report.spec.parallel && !report.spec.loose_sync {
            continue; // the Jpb(10,2,2) artifact case (§6)
        }
        let score_ws = report.ws_with(PredictorKind::Score);
        over_worst.push(sos_bench::pct_over(score_ws, report.worst_ws()));
        over_avg.push(sos_bench::pct_over(score_ws, report.average_ws()));
    }
    println!();
    println!(
        "Score predictor vs worst: avg {:+.1}% (paper: +22%);  vs average: avg {:+.1}% (paper: +7%)",
        over_worst.iter().sum::<f64>() / over_worst.len() as f64,
        over_avg.iter().sum::<f64>() / over_avg.len() as f64,
    );
}

//! `sos-top` — live terminal dashboard for a running `sos-serve`.
//!
//! Polls the daemon's `metrics` verb and renders the snapshot as a
//! `top`-style text dashboard: request and engine counters with rates
//! (derived from successive snapshots — counts per wall-clock second),
//! gauges, a percentile table for every windowed histogram
//! (p50/p95/p99/p999, flagged `~` when the window sample cap forced the
//! log2-bucket approximation), and SLO attainment / error-budget burn rate.
//!
//! Usage: `sos-top [--addr HOST:PORT] [--interval-ms N] [--once] [--prom]`
//!
//! * `--once` fetches a single snapshot, prints it without clearing the
//!   screen, and exits 0 — the mode CI uses.
//! * `--prom` dumps the raw Prometheus text exposition and exits 0 (pipe it
//!   to a file to scrape the daemon without a Prometheus server).
//! * Otherwise the dashboard refreshes every `--interval-ms` (default
//!   1000) until interrupted or the daemon goes away.

use sos_bench::serve::{Client, Request};
use sos_core::metrics::MetricsSnapshot;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    interval_ms: u64,
    once: bool,
    prom: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7077".to_string(),
            interval_ms: 1_000,
            once: false,
            prom: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--interval-ms" => args.interval_ms = num(&value("--interval-ms")?, "--interval-ms")?,
            "--once" => args.once = true,
            "--prom" => args.prom = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.interval_ms == 0 {
        return Err("--interval-ms must be positive".into());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?} for {flag}"))
}

fn fetch(client: &mut Client) -> Result<(MetricsSnapshot, String), String> {
    let resp = client
        .request(&Request::verb("metrics"))
        .map_err(|e| format!("metrics request failed: {e}"))?;
    if !resp.ok {
        return Err(format!(
            "daemon refused metrics: {}",
            resp.error.as_deref().unwrap_or("unknown error")
        ));
    }
    match resp.metrics {
        Some(m) => Ok((m.snapshot, m.prometheus)),
        None => Err("metrics reply carried no payload (daemon too old?)".into()),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sos-top: {e}");
            std::process::exit(2);
        }
    };
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sos-top: cannot connect to {}: {e}", args.addr);
            std::process::exit(2);
        }
    };

    if args.prom {
        match fetch(&mut client) {
            Ok((_, prometheus)) => {
                print!("{prometheus}");
                return;
            }
            Err(e) => {
                eprintln!("sos-top: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut prev: Option<(Instant, MetricsSnapshot)> = None;
    loop {
        let (snap, _) = match fetch(&mut client) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sos-top: {e}");
                std::process::exit(if args.once { 1 } else { 0 });
            }
        };
        let taken = Instant::now();
        if !args.once {
            // Clear screen, home cursor.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(&args.addr, &snap, prev.as_ref()));
        if args.once {
            return;
        }
        prev = Some((taken, snap));
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
}

/// Renders one dashboard frame. `prev` (when present) turns counters into
/// per-second rates over the wall time between the two snapshots.
fn render(addr: &str, snap: &MetricsSnapshot, prev: Option<&(Instant, MetricsSnapshot)>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sos-top — {addr}   snapshot v{}   sim clock {} cycles\n\n",
        snap.version, snap.now_cycles
    ));

    let elapsed = prev.map(|(t, _)| t.elapsed().as_secs_f64());
    out.push_str(&format!(
        "{:<34} {:>14} {:>12}\n",
        "COUNTER", "TOTAL", "RATE/S"
    ));
    for (name, &v) in &snap.counters {
        let rate = match (elapsed, prev.and_then(|(_, p)| p.counters.get(name))) {
            (Some(secs), Some(&was)) if secs > 0.0 => {
                format!("{:.1}", v.saturating_sub(was) as f64 / secs)
            }
            _ => "-".to_string(),
        };
        out.push_str(&format!("{name:<34} {v:>14} {rate:>12}\n"));
    }

    out.push_str(&format!("\n{:<34} {:>14}\n", "GAUGE", "VALUE"));
    for (name, &v) in &snap.gauges {
        out.push_str(&format!("{name:<34} {v:>14.1}\n"));
    }

    out.push_str(&format!(
        "\n{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "HISTOGRAM (live windows)", "COUNT", "P50", "P95", "P99", "P99.9"
    ));
    for (name, h) in &snap.histograms {
        let approx = if h.exact { "" } else { "~" };
        out.push_str(&format!(
            "{name:<34} {:>8} {approx}{:>9.0} {approx}{:>9.0} {approx}{:>9.0} {approx}{:>9.0}\n",
            h.count, h.quantiles.p50, h.quantiles.p95, h.quantiles.p99, h.quantiles.p999
        ));
    }

    out.push_str(&format!(
        "\n{:<34} {:>8} {:>10} {:>12} {:>10} {:>6}\n",
        "SLO", "TARGET", "GOOD/TOTAL", "ATTAINMENT", "BURN", "MET"
    ));
    for (name, s) in &snap.slos {
        out.push_str(&format!(
            "{name:<34} {:>8} {:>10} {:>11.1}% {:>10.2} {:>6}\n",
            s.target,
            format!("{}/{}", s.good, s.total),
            s.attainment * 100.0,
            s.burn_rate,
            if s.met { "yes" } else { "NO" }
        ));
    }
    out
}

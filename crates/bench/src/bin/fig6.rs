//! Reproduces Figure 6: response-time improvements of SOS over a random
//! scheduler for various mean arrival rates λ, with the SMT level held
//! constant at 3.
//!
//! λ is swept as a fraction of the machine's estimated capacity; each point
//! is a matched-pair comparison (identical arrival traces) averaged over
//! several seeds.
//!
//! Usage: `cargo run --release -p sos-bench --bin fig6 [cycle_scale] [num_jobs] [seeds]
//! [--fast] [--fast-threshold F]`
//!
//! `--fast` runs both schedulers under phase-aware sampled fast simulation
//! (`--fast-threshold` sets the phase-stability threshold and implies
//! `--fast`). Without it, every timeslice executes in full detail and the
//! output is byte-identical to earlier revisions.

use smtsim::FastSimPolicy;
use sos_core::opensys::{
    arrival_trace, calibrate_benchmarks, measure_capacity, run_open_system_on_trace,
    OpenSystemConfig, SchedulerKind,
};
use sos_core::report::percentiles;

fn main() {
    // Strip the fast-sim flags before positional parsing so
    // `fig6 6000 --fast` and `fig6 --fast 6000` both work.
    let mut positional = Vec::new();
    let mut fast = false;
    let mut fast_threshold: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--fast-threshold" => {
                fast = true;
                fast_threshold = it.next().and_then(|v| v.parse().ok());
            }
            _ => positional.push(a),
        }
    }
    let fastsim = fast.then(|| match fast_threshold {
        Some(t) => FastSimPolicy::with_threshold(t),
        None => FastSimPolicy::default(),
    });
    let scale: u64 = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(6000);
    let num_jobs: usize = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let seeds: u64 = positional.get(2).and_then(|a| a.parse().ok()).unwrap_or(3);
    let smt = 3usize;
    let mean_job_cycles = 2_000_000_000 / scale.max(1);
    // Offered load as a fraction of measured capacity; λ = T / (ρ · capacity).
    let rhos = vec![0.90, 1.00, 1.10, 1.20];

    sos_bench::init_cache();
    eprintln!("# open system at SMT 3, 1/{scale} paper scale, {num_jobs} jobs x {seeds} seeds ...");
    if let Some(p) = &fastsim {
        eprintln!("# fastsim: {}", p.describe());
    }
    println!("Figure 6 — response-time improvement vs arrival rate (SMT 3)");
    println!(
        "{:<8} {:<14} {:>16} {:>16} {:>13}",
        "load ρ", "λ (cycles)", "naive (cycles)", "SOS (cycles)", "improvement"
    );

    let rows = sos_bench::parallel_map(rhos, |rho| {
        let mut naive_total = 0.0;
        let mut sos_total = 0.0;
        let mut lambda_avg = 0u64;
        let mut naive_rt = Vec::new();
        let mut sos_rt = Vec::new();
        for seed in 0..seeds {
            let mut cfg = OpenSystemConfig::scaled(smt);
            cfg.mean_job_cycles = mean_job_cycles;
            // The timeslice needs to amortize pipeline fill and give the sample
            // phase usable counter windows, so it scales less aggressively
            // than job lengths (T/timeslice ≈ 130 vs the paper's 400).
            cfg.timeslice = 2_500;
            cfg.num_jobs = num_jobs;
            cfg.predictor = sos_core::PredictorKind::Ipc;
            cfg.seed = 0xF166 + 104_729 * seed;
            cfg.fastsim = fastsim.clone();
            let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
            let capacity = measure_capacity(&cfg, &solo, 24);
            cfg.mean_interarrival = (mean_job_cycles as f64 / (rho * capacity)) as u64;
            lambda_avg += cfg.mean_interarrival / seeds;
            let trace = arrival_trace(&cfg, &solo);
            let naive = run_open_system_on_trace(SchedulerKind::Naive, &cfg, &trace);
            let sos = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);
            naive_total += naive.mean_response();
            sos_total += sos.mean_response();
            naive_rt.extend(naive.response_times());
            sos_rt.extend(sos.response_times());
        }
        (
            rho,
            lambda_avg,
            naive_total / seeds as f64,
            sos_total / seeds as f64,
            percentiles(&naive_rt),
            percentiles(&sos_rt),
        )
    });

    for (rho, lambda, naive, sos, _, _) in &rows {
        let improvement = 100.0 * (naive - sos) / naive;
        println!(
            "{:<8.2} {:<14} {:>16.0} {:>16.0} {:>12.1}%",
            rho, lambda, naive, sos, improvement
        );
    }
    println!();
    println!("(paper: positive improvements across λ values, varying with the load)");
    println!();
    println!("response-time percentiles (cycles, jobs pooled across seeds)");
    println!(
        "{:<8} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "load ρ", "naive p50", "naive p95", "naive p99", "SOS p50", "SOS p95", "SOS p99"
    );
    for (rho, _, _, _, np, sp) in &rows {
        println!(
            "{:<8.2} {:>12.0} {:>12.0} {:>12.0}   {:>12.0} {:>12.0} {:>12.0}",
            rho, np.p50, np.p95, np.p99, sp.p50, sp.p95, sp.p99
        );
    }
}

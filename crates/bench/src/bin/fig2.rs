//! Reproduces Figure 2: weighted speedup achieved with each dynamic
//! predictor on Jsb(6,3,3), alongside the best, worst, and average schedule.
//!
//! Usage: `cargo run --release -p sos-bench --bin fig2 [cycle_scale]`

use sos_core::sos::SosScheduler;
use sos_core::ExperimentSpec;

fn main() {
    let scale = sos_bench::scale_from_args();
    let cfg = sos_bench::config(scale);
    let spec: ExperimentSpec = "Jsb(6,3,3)".parse().expect("valid label");
    sos_bench::init_cache();
    eprintln!("# running {spec} at 1/{scale} paper scale ...");
    let report = SosScheduler::evaluate_experiment(&spec, &cfg);
    sos_bench::print_cache_stats();

    println!("Figure 2 — weighted speedup with several dynamic predictors on Jsb(6,3,3)");
    println!("    {:<10} WS {:>6.3}", "Best", report.best_ws());
    println!("    {:<10} WS {:>6.3}", "Worst", report.worst_ws());
    println!("    {:<10} WS {:>6.3}", "Average", report.average_ws());
    sos_bench::print_predictor_bars(&report);
    println!();
    println!(
        "best is {:+.1}% over worst and {:+.1}% over average (paper: 17% and 9%)",
        sos_bench::pct_over(report.best_ws(), report.worst_ws()),
        sos_bench::pct_over(report.best_ws(), report.average_ws()),
    );
}

//! `sos-loadgen` — deterministic open-loop load generator for `sos-serve`.
//!
//! Replays a seeded exponential arrival trace (the same `ArrivalTrace`
//! generator the batch §9 experiments use, so a given seed always produces
//! the same job sequence) against a running daemon, then drains it and
//! prints the completed-job count and response-time percentiles.
//!
//! Open-loop means arrivals are paced by the trace, not by completions: the
//! generator never waits for a job to finish before submitting the next, so
//! an overloaded daemon answers `backpressure` (counted and reported) rather
//! than silently slowing the offered load.
//!
//! Usage: `sos-loadgen [--addr HOST:PORT] [--jobs N]
//! [--mean-interarrival CYCLES] [--mean-length CYCLES]
//! [--phased-fraction F] [--seed S] [--pace CYCLES_PER_MS] [--no-shutdown]
//! [--fast] [--fast-threshold F] [--bench-out FILE]`
//!
//! `--fast` asks the daemon (via the `fastsim` verb) to run under
//! phase-aware sampled fast simulation before offering load;
//! `--fast-threshold` sets the phase-stability threshold and implies
//! `--fast`. The daemon's active policy is echoed in the bench record.
//!
//! Job lengths are submitted in solo *cycles*; the daemon converts them to
//! instructions with its own calibrated solo IPC. `--pace` maps trace
//! interarrival gaps to wall-clock sleeps (0 = submit as fast as possible).
//! A `backpressure` reply is retried every `--retry-ms` milliseconds (the
//! daemon keeps draining the queue meanwhile); `--retry-ms 0` disables the
//! retry so overload shows up as a rejected count instead — either way the
//! retry count and the total wall time spent backing off appear in the
//! final report, so queueing delay absorbed by the generator is visible.
//! By default the daemon is told to `shutdown` after the drain; pass
//! `--no-shutdown` to leave it running for another client.
//!
//! With `--bench-out FILE`, one machine-readable `BenchRecord` JSON line
//! ({throughput, response/slowdown percentiles, SLO attainment, retries})
//! is appended to `FILE` — the cross-PR perf trajectory for the serving
//! layer (conventionally `BENCH_serve.json`).

use sos_bench::serve::{BenchRecord, Client, Request, BENCH_RECORD_VERSION};
use sos_core::opensys::{ArrivalTrace, ArrivalTraceSpec};
use std::path::PathBuf;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

struct Args {
    addr: String,
    jobs: usize,
    mean_interarrival: u64,
    mean_length: u64,
    phased_fraction: f64,
    seed: u64,
    pace: u64,
    retry_ms: u64,
    shutdown: bool,
    fast: bool,
    fast_threshold: Option<f64>,
    bench_out: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7077".to_string(),
            jobs: 200,
            mean_interarrival: 400_000,
            mean_length: 1_200_000,
            phased_fraction: 0.25,
            seed: 42,
            pace: 0,
            retry_ms: 2,
            shutdown: true,
            fast: false,
            fast_threshold: None,
            bench_out: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--jobs" => args.jobs = num(&value("--jobs")?, "--jobs")?,
            "--mean-interarrival" => {
                args.mean_interarrival = num(&value("--mean-interarrival")?, "--mean-interarrival")?
            }
            "--mean-length" => args.mean_length = num(&value("--mean-length")?, "--mean-length")?,
            "--phased-fraction" => {
                args.phased_fraction = num(&value("--phased-fraction")?, "--phased-fraction")?
            }
            "--seed" => args.seed = num(&value("--seed")?, "--seed")?,
            "--pace" => args.pace = num(&value("--pace")?, "--pace")?,
            "--retry-ms" => args.retry_ms = num(&value("--retry-ms")?, "--retry-ms")?,
            "--no-shutdown" => args.shutdown = false,
            "--fast" => args.fast = true,
            "--fast-threshold" => {
                args.fast = true;
                args.fast_threshold = Some(num(&value("--fast-threshold")?, "--fast-threshold")?);
            }
            "--bench-out" => args.bench_out = Some(PathBuf::from(value("--bench-out")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.jobs == 0 {
        return Err("--jobs must be positive".into());
    }
    if args.mean_interarrival == 0 || args.mean_length == 0 {
        return Err("--mean-interarrival and --mean-length must be positive".into());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?} for {flag}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sos-loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Job lengths stay in solo cycles (unit IPC): the daemon owns the
    // cycles→instructions conversion via its calibrated solo IPC table.
    let trace = ArrivalTrace::generate_in_cycles(&ArrivalTraceSpec {
        mean_interarrival: args.mean_interarrival,
        mean_job_cycles: args.mean_length,
        num_jobs: args.jobs,
        phased_fraction: args.phased_fraction,
        seed: args.seed,
    });

    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sos-loadgen: cannot connect to {}: {e}", args.addr);
            std::process::exit(2);
        }
    };

    // Ask the daemon to switch into fast simulation before offering load;
    // the echoed status confirms the active policy.
    let mut fastsim_policy = None;
    if args.fast {
        match client.request(&Request::fastsim(true, args.fast_threshold)) {
            Ok(resp) if resp.ok => {
                fastsim_policy = resp.status.and_then(|s| s.fastsim);
                println!(
                    "# fastsim on: {}",
                    fastsim_policy.as_deref().unwrap_or("(default policy)")
                );
            }
            Ok(resp) => {
                eprintln!(
                    "sos-loadgen: fastsim refused: {}",
                    resp.error.as_deref().unwrap_or("unknown error")
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("sos-loadgen: fastsim failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let started = Instant::now();
    let start_cycles = now_cycles(&mut client);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut retries = 0usize;
    let mut retry_wait = Duration::ZERO;
    let mut prev_arrival = 0u64;
    for job in &trace.jobs {
        let gap_cycles = job.arrival.saturating_sub(prev_arrival);
        if let Some(gap_ms) = gap_cycles.checked_div(args.pace) {
            std::thread::sleep(Duration::from_millis(gap_ms));
        }
        prev_arrival = job.arrival;
        let req = Request::submit_cycles(job.benchmark.name(), job.instructions, job.phased);
        loop {
            match client.request(&req) {
                Ok(resp) if resp.ok => {
                    accepted += 1;
                    break;
                }
                Ok(resp) if resp.error.as_deref() == Some("backpressure") && args.retry_ms > 0 => {
                    // The daemon keeps simulating while we back off, so a
                    // slot opens as soon as a live job departs.
                    retries += 1;
                    let backoff = Instant::now();
                    std::thread::sleep(Duration::from_millis(args.retry_ms));
                    retry_wait += backoff.elapsed();
                }
                Ok(resp) => {
                    rejected += 1;
                    if resp.error.as_deref() != Some("backpressure") {
                        eprintln!(
                            "sos-loadgen: submit rejected: {}",
                            resp.error.as_deref().unwrap_or("unknown error")
                        );
                    }
                    break;
                }
                Err(e) => {
                    eprintln!("sos-loadgen: submit failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    println!(
        "# offered {} jobs (seed {}): {} accepted, {} rejected",
        trace.jobs.len(),
        args.seed,
        accepted,
        rejected,
    );
    println!(
        "# backpressure: {} retries, {:.1} ms total retry wait",
        retries,
        retry_wait.as_secs_f64() * 1e3
    );

    // Drain: blocks until every in-flight job has departed.
    if let Err(e) = client.request(&Request::verb("drain")) {
        eprintln!("sos-loadgen: drain failed: {e}");
        std::process::exit(1);
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let stats = match client.request(&Request::verb("stats")) {
        Ok(resp) => match resp.stats {
            Some(s) => s,
            None => {
                eprintln!("sos-loadgen: stats reply carried no stats payload");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("sos-loadgen: stats failed: {e}");
            std::process::exit(1);
        }
    };
    println!("completed {}", stats.completed);
    println!(
        "response cycles   mean {:.0}  p50 {:.0}  p95 {:.0}  p99 {:.0}",
        stats.mean_response, stats.response.p50, stats.response.p95, stats.response.p99
    );
    println!(
        "slowdown          mean {:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}",
        stats.mean_slowdown, stats.slowdown.p50, stats.slowdown.p95, stats.slowdown.p99
    );
    println!(
        "response approx   p50 {:.0}  p95 {:.0}  p99 {:.0}  (histogram buckets)",
        stats.response_approx.p50, stats.response_approx.p95, stats.response_approx.p99
    );
    println!(
        "resamples {}  cache {} hits / {} misses",
        stats.resamples, stats.cache_hits, stats.cache_misses
    );

    if let Some(path) = &args.bench_out {
        // SLO attainment comes from the metrics verb; a daemon predating it
        // answers with an error and the record carries NaN instead.
        let (slo_response, slo_slowdown, end_cycles) =
            match client.request(&Request::verb("metrics")) {
                Ok(resp) => match resp.metrics {
                    Some(m) => (
                        m.snapshot
                            .slos
                            .get("serve.response_cycles")
                            .map_or(f64::NAN, |s| s.attainment),
                        m.snapshot
                            .slos
                            .get("serve.slowdown_x100")
                            .map_or(f64::NAN, |s| s.attainment),
                        m.snapshot.now_cycles,
                    ),
                    None => (f64::NAN, f64::NAN, 0),
                },
                Err(e) => {
                    eprintln!("sos-loadgen: metrics failed: {e}");
                    std::process::exit(1);
                }
            };
        let record = BenchRecord {
            schema: BENCH_RECORD_VERSION,
            unix_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            seed: args.seed,
            offered: trace.jobs.len() as u64,
            accepted: accepted as u64,
            rejected: rejected as u64,
            retries: retries as u64,
            retry_wait_ms: retry_wait.as_millis() as u64,
            completed: stats.completed,
            wall_secs,
            throughput_jobs_per_sec: if wall_secs > 0.0 {
                stats.completed as f64 / wall_secs
            } else {
                f64::NAN
            },
            sim_cycles_per_sec: if wall_secs > 0.0 {
                end_cycles.saturating_sub(start_cycles) as f64 / wall_secs
            } else {
                f64::NAN
            },
            mean_response: stats.mean_response,
            response: stats.response,
            mean_slowdown: stats.mean_slowdown,
            slowdown: stats.slowdown,
            slo_response_attainment: slo_response,
            slo_slowdown_attainment: slo_slowdown,
            fastsim: fastsim_policy.clone(),
            extrapolated_slices: client
                .request(&Request::verb("status"))
                .ok()
                .and_then(|r| r.status)
                .and_then(|s| s.extrapolated_slices),
        };
        match record.append_to(path) {
            Ok(()) => println!(
                "# bench record appended to {} ({:.1} jobs/s, SLO response {:.3} / slowdown {:.3})",
                path.display(),
                record.throughput_jobs_per_sec,
                record.slo_response_attainment,
                record.slo_slowdown_attainment
            ),
            Err(e) => {
                eprintln!("sos-loadgen: bench-out {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if args.shutdown {
        match client.request(&Request::verb("shutdown")) {
            Ok(resp) if resp.ok => {}
            Ok(resp) => eprintln!(
                "sos-loadgen: shutdown refused: {}",
                resp.error.as_deref().unwrap_or("unknown error")
            ),
            Err(e) => eprintln!("sos-loadgen: shutdown failed: {e}"),
        }
    }
}

/// The daemon's simulated clock right now (0 when `status` fails — the
/// record's cycle rate then over-counts rather than crashing the run).
fn now_cycles(client: &mut Client) -> u64 {
    client
        .request(&Request::verb("status"))
        .ok()
        .and_then(|r| r.status)
        .map(|s| s.now_cycles)
        .unwrap_or(0)
}

//! `sos-cluster` — the shard-scaling bench for the two-level cluster
//! scheduler (`sos_core::cluster`).
//!
//! Replays a seeded exponential arrival trace (the same generator the §9
//! experiments and `sos-loadgen` use) through a [`ClusterEngine`] of N
//! per-core shards, drains it, and reports cluster-wide weighted speedup,
//! response-time percentiles, migration counts, and simulation throughput.
//! Because every shard advances its own machine clock, a cluster of N
//! shards simulates N machine-cycles per cluster cycle — the scaling claim
//! the record captures is `sim_cycles = shards × makespan` against wall
//! time, cluster vs the single fat shard (`--shards 1`).
//!
//! Usage: `sos-cluster [--shards N] [--dispatch POLICY] [--policy sos|naive]
//! [--predictor NAME] [--jobs N] [--mean-interarrival CYCLES]
//! [--mean-length CYCLES]
//! [--phased-fraction F] [--seed S] [--smt N] [--timeslice CYCLES]
//! [--slices-per-round N] [--rebalance-every N] [--steal-threshold N]
//! [--fast] [--fast-threshold F]
//! [--bench-out FILE] [--report-out FILE] [--prom-out FILE]`
//!
//! `--fast` turns on phase-aware sampled fast simulation in every shard
//! engine (`--fast-threshold` sets the phase-stability threshold and
//! implies `--fast`); the policy is echoed in the report and bench record.
//!
//! The run is byte-reproducible for a fixed seed and shard count:
//! `--report-out` writes a deterministic `ClusterReport` JSON (no
//! wall-clock fields), so two runs of the same configuration can be
//! compared with `cmp`. `--bench-out` appends a `kind:"cluster"` JSON line
//! to the cross-PR perf trajectory (conventionally `BENCH_serve.json`);
//! `--prom-out` dumps the final Prometheus exposition of the cluster
//! metrics hub (per-shard queue/clock gauges, migration counters,
//! response/slowdown histograms).

use smtsim::FastSimPolicy;
use sos_bench::serve::{ClusterBenchRecord, CLUSTER_BENCH_RECORD_VERSION};
use sos_core::cluster::{run_cluster_on_trace, ClusterConfig, ClusterEngine, DispatchPolicy};
use sos_core::metrics::MetricsHub;
use sos_core::online::{OnlineConfig, SchedulerKind};
use sos_core::opensys::{calibrate_benchmarks, ArrivalTrace, ArrivalTraceSpec};
use sos_core::predictor::PredictorKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Args {
    shards: usize,
    dispatch: DispatchPolicy,
    policy: SchedulerKind,
    jobs: usize,
    mean_interarrival: u64,
    mean_length: u64,
    phased_fraction: f64,
    seed: u64,
    smt: usize,
    timeslice: u64,
    predictor: PredictorKind,
    sample_schedules: usize,
    base_interval: u64,
    calibration_cycles: u64,
    slices_per_round: u64,
    rebalance_every: u64,
    steal_threshold: usize,
    fast: bool,
    fast_threshold: Option<f64>,
    bench_out: Option<PathBuf>,
    report_out: Option<PathBuf>,
    prom_out: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            shards: 4,
            dispatch: DispatchPolicy::Symbiosis,
            policy: SchedulerKind::Sos,
            jobs: 60,
            mean_interarrival: 400_000,
            mean_length: 1_200_000,
            phased_fraction: 0.25,
            seed: 42,
            smt: 4,
            timeslice: 5_000,
            predictor: PredictorKind::Ipc,
            sample_schedules: 6,
            base_interval: 500_000,
            calibration_cycles: 60_000,
            slices_per_round: 8,
            rebalance_every: 8,
            steal_threshold: 4,
            fast: false,
            fast_threshold: None,
            bench_out: None,
            report_out: None,
            prom_out: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--shards" => args.shards = num(&value("--shards")?, "--shards")?,
            "--dispatch" => {
                let v = value("--dispatch")?;
                args.dispatch = DispatchPolicy::parse(&v)
                    .ok_or_else(|| format!("bad dispatch policy {v:?}"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                args.policy =
                    SchedulerKind::parse(&v).ok_or_else(|| format!("bad policy {v:?}"))?;
            }
            "--jobs" => args.jobs = num(&value("--jobs")?, "--jobs")?,
            "--mean-interarrival" => {
                args.mean_interarrival = num(&value("--mean-interarrival")?, "--mean-interarrival")?
            }
            "--mean-length" => args.mean_length = num(&value("--mean-length")?, "--mean-length")?,
            "--phased-fraction" => {
                args.phased_fraction = num(&value("--phased-fraction")?, "--phased-fraction")?
            }
            "--seed" => args.seed = num(&value("--seed")?, "--seed")?,
            "--smt" => args.smt = num(&value("--smt")?, "--smt")?,
            "--timeslice" => args.timeslice = num(&value("--timeslice")?, "--timeslice")?,
            "--predictor" => {
                let v = value("--predictor")?;
                args.predictor = PredictorKind::parse(&v).ok_or_else(|| {
                    format!(
                        "unknown predictor {v:?} (one of {})",
                        PredictorKind::names()
                    )
                })?;
            }
            "--sample-schedules" => {
                args.sample_schedules = num(&value("--sample-schedules")?, "--sample-schedules")?
            }
            "--base-interval" => {
                args.base_interval = num(&value("--base-interval")?, "--base-interval")?
            }
            "--calibration-cycles" => {
                args.calibration_cycles =
                    num(&value("--calibration-cycles")?, "--calibration-cycles")?
            }
            "--slices-per-round" => {
                args.slices_per_round = num(&value("--slices-per-round")?, "--slices-per-round")?
            }
            "--rebalance-every" => {
                args.rebalance_every = num(&value("--rebalance-every")?, "--rebalance-every")?
            }
            "--steal-threshold" => {
                args.steal_threshold = num(&value("--steal-threshold")?, "--steal-threshold")?
            }
            "--fast" => args.fast = true,
            "--fast-threshold" => {
                args.fast = true;
                args.fast_threshold = Some(num(&value("--fast-threshold")?, "--fast-threshold")?);
            }
            "--bench-out" => args.bench_out = Some(PathBuf::from(value("--bench-out")?)),
            "--report-out" => args.report_out = Some(PathBuf::from(value("--report-out")?)),
            "--prom-out" => args.prom_out = Some(PathBuf::from(value("--prom-out")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.shards == 0 || args.jobs == 0 {
        return Err("--shards and --jobs must be positive".into());
    }
    if args.mean_interarrival == 0 || args.mean_length == 0 {
        return Err("--mean-interarrival and --mean-length must be positive".into());
    }
    Ok(args)
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?} for {flag}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sos-cluster: {e}");
            std::process::exit(2);
        }
    };

    // Calibrate solo IPC once (shared cache makes this cheap across runs)
    // and generate the arrival trace — a pure function of the seed, so
    // every shard count sees the identical offered workload.
    let solo = calibrate_benchmarks(args.smt, args.calibration_cycles, args.seed);
    let trace = ArrivalTrace::generate(
        &ArrivalTraceSpec {
            mean_interarrival: args.mean_interarrival,
            mean_job_cycles: args.mean_length,
            num_jobs: args.jobs,
            phased_fraction: args.phased_fraction,
            seed: args.seed,
        },
        &solo,
    );

    let fastsim = if args.fast {
        Some(match args.fast_threshold {
            Some(t) => FastSimPolicy::with_threshold(t),
            None => FastSimPolicy::default(),
        })
    } else {
        None
    };
    let shard = OnlineConfig {
        smt: args.smt,
        timeslice: args.timeslice,
        sample_schedules: args.sample_schedules,
        predictor: args.predictor,
        drift_threshold: Some(0.35),
        base_interval: args.base_interval,
        seed: args.seed,
        fastsim,
        learn: None,
    };
    let mut cfg = ClusterConfig::new(args.shards, args.dispatch, args.policy, shard);
    cfg.slices_per_round = args.slices_per_round;
    cfg.rebalance_every = args.rebalance_every;
    cfg.steal_threshold = args.steal_threshold;

    let hub = Arc::new(MetricsHub::new());
    let mut engine = ClusterEngine::with_metrics(&cfg, Some(&hub));
    engine.set_solo_ipc(solo);

    println!(
        "# sos-cluster: {} shard(s), dispatch {}, policy {}, {} jobs, seed {}",
        args.shards,
        args.dispatch.name(),
        args.policy.name(),
        args.jobs,
        args.seed
    );
    if let Some(p) = &cfg.shard.fastsim {
        println!("# fastsim: {}", p.describe());
    }
    let started = Instant::now();
    let departed = run_cluster_on_trace(&mut engine, &trace.jobs, u64::MAX);
    let wall_secs = started.elapsed().as_secs_f64();
    let report = engine.report();

    if departed.len() != trace.jobs.len() {
        eprintln!(
            "sos-cluster: only {}/{} jobs completed",
            departed.len(),
            trace.jobs.len()
        );
        std::process::exit(1);
    }

    // shards × makespan: every shard clock advanced to `now`.
    let sim_cycles = args.shards as u64 * report.now_cycles;
    println!(
        "completed {}  migrations {}  makespan {} cycles",
        report.completed, report.migrations, report.now_cycles
    );
    println!(
        "aggregate WS {:.3}  response p50 {:.0} p95 {:.0} p99 {:.0}  slowdown p99 {:.2}",
        report.aggregate_ws,
        report.response.p50,
        report.response.p95,
        report.response.p99,
        report.slowdown.p99
    );
    println!(
        "wall {:.2}s  sim {:.1}M cycles ({} shards)  {:.2}M sim-cycles/s",
        wall_secs,
        sim_cycles as f64 / 1e6,
        args.shards,
        sim_cycles as f64 / wall_secs.max(1e-9) / 1e6
    );
    if report.fastsim.is_some() {
        println!(
            "fastsim: {}/{} busy timeslices extrapolated ({:.1}%)",
            report.extrapolated_slices,
            report.timeslices,
            100.0 * report.extrapolated_slices as f64 / report.timeslices.max(1) as f64
        );
    }
    println!("shard  submitted  migr-in  migr-out  completed  timeslices  depth");
    for s in &report.per_shard {
        println!(
            "{:>5}  {:>9}  {:>7}  {:>8}  {:>9}  {:>10}  {:>5}",
            s.shard,
            s.submitted,
            s.migrated_in,
            s.migrated_out,
            s.completed,
            s.timeslices,
            s.final_queue_depth
        );
    }
    if report.per_shard.iter().any(|s| s.learn.is_some()) {
        println!("shard  train-updates  err-ewma  bandit-pulls  regret  contexts");
        for s in &report.per_shard {
            if let Some(l) = &s.learn {
                println!(
                    "{:>5}  {:>13}  {:>8.4}  {:>12}  {:>6.3}  {:>8}",
                    s.shard,
                    l.train_updates,
                    l.err_ewma,
                    l.bandit_pulls,
                    l.bandit_regret,
                    l.contexts
                );
            }
        }
    }

    if let Some(path) = &args.report_out {
        // Strip nothing: the report is already wall-clock-free, so the
        // bytes are a determinism witness for (seed, shard count).
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("sos-cluster: report-out {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("# report written to {}", path.display());
    }

    if let Some(path) = &args.prom_out {
        let prom = hub.snapshot(report.now_cycles).prometheus_text();
        if let Err(e) = std::fs::write(path, prom) {
            eprintln!("sos-cluster: prom-out {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("# prometheus exposition written to {}", path.display());
    }

    if let Some(path) = &args.bench_out {
        let record = ClusterBenchRecord {
            schema: CLUSTER_BENCH_RECORD_VERSION,
            kind: "cluster".to_string(),
            unix_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            shards: args.shards as u64,
            dispatch: args.dispatch.name().to_string(),
            policy: args.policy.name().to_string(),
            seed: args.seed,
            jobs: trace.jobs.len() as u64,
            completed: report.completed,
            migrations: report.migrations,
            wall_secs,
            sim_cycles,
            sim_cycles_per_sec: sim_cycles as f64 / wall_secs.max(1e-9),
            throughput_jobs_per_sec: report.completed as f64 / wall_secs.max(1e-9),
            aggregate_ws: report.aggregate_ws,
            mean_response: {
                let sum: f64 = report
                    .per_shard
                    .iter()
                    .flat_map(|s| s.records.iter())
                    .map(|r| r.response() as f64)
                    .sum();
                sum / report.completed.max(1) as f64
            },
            response: report.response,
            slowdown: report.slowdown,
            fastsim: report.fastsim.clone(),
            extrapolated_slices: report
                .fastsim
                .is_some()
                .then_some(report.extrapolated_slices),
        };
        match record.append_to(path) {
            Ok(()) => println!(
                "# cluster bench record appended to {} ({:.2}M sim-cycles/s, WS {:.3})",
                path.display(),
                record.sim_cycles_per_sec / 1e6,
                record.aggregate_ws
            ),
            Err(e) => {
                eprintln!("sos-cluster: bench-out {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

//! The predictor league table: runs all 13 paper experiments and reports,
//! for every predictor (plus the sampled-WS oracle and the best possible
//! schedule), the mean and worst-case percent gain over the random-scheduler
//! expectation.
//!
//! This regenerates the per-predictor summary in EXPERIMENTS.md. Pass a
//! second argument to also dump the full reports as JSON.
//!
//! Usage: `cargo run --release -p sos-bench --bin predictor_matrix [cycle_scale] [json_path]`

use sos_core::report::{format_league_table, league_table};
use sos_core::sos::SosScheduler;
use sos_core::ExperimentSpec;

fn main() {
    let scale = sos_bench::scale_from_args();
    let json_path = std::env::args().nth(2);
    let cfg = sos_bench::config(scale);
    sos_bench::init_cache();
    eprintln!("# running 13 experiments at 1/{scale} paper scale ...");

    let specs = ExperimentSpec::all_paper_experiments();
    let reports =
        sos_bench::parallel_map(specs, |spec| SosScheduler::evaluate_experiment(&spec, &cfg));
    sos_bench::print_cache_stats();

    println!(
        "Predictor league table over {} experiments (% vs random expectation)",
        reports.len()
    );
    print!("{}", format_league_table(&league_table(&reports)));

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        std::fs::write(&path, json).expect("write JSON");
        eprintln!("# full reports written to {path}");
    }
}

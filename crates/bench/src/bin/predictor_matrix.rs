//! The predictor league table: runs all 13 paper experiments and reports,
//! for every predictor (plus the sampled-WS oracle and the best possible
//! schedule), the mean and worst-case percent gain over the random-scheduler
//! expectation.
//!
//! This regenerates the per-predictor summary in EXPERIMENTS.md. Pass a
//! second argument to also dump the full reports as JSON.
//!
//! With `--learned` or `--bandit` the binary instead runs the learned
//! evaluation sweep (`sos_bench::learn_eval`): a grid of experiments ×
//! seeds fed sequentially through one online learner, producing a league
//! table with `Learned` and `Bandit` rows, a deterministic
//! `learn_summary.json` artifact under `--out-dir` (two runs of the same
//! grid `cmp` equal), and — with `--bench-out` — a `kind:"learn"` JSON
//! line for the cross-PR trajectory.
//!
//! Usage:
//! `predictor_matrix [cycle_scale] [json_path]` (the classic table), or
//! `predictor_matrix [--learned] [--bandit] [--grid small|wide]
//!  [--scale N] [--seeds S1,S2,...] [--out-dir DIR] [--bench-out FILE]`

use sos_bench::learn_eval::{self, LearnEvalOptions};
use sos_core::report::{format_league_table, league_table};
use sos_core::sos::SosScheduler;
use sos_core::ExperimentSpec;
use std::path::PathBuf;

struct Args {
    /// Classic positional args (kept for existing drivers and CI).
    scale: u64,
    json_path: Option<String>,
    /// Learned-sweep mode.
    learned: bool,
    grid: String,
    seeds: Vec<u64>,
    out_dir: PathBuf,
    bench_out: Option<PathBuf>,
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.map_err(|_| format!("bad seed {s:?}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 1000,
        json_path: None,
        learned: false,
        grid: "wide".to_string(),
        seeds: learn_eval::DEFAULT_SEEDS.to_vec(),
        out_dir: PathBuf::from("results/learn"),
        bench_out: None,
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--learned" | "--bandit" => args.learned = true,
            "--grid" => {
                let v = value("--grid")?;
                if learn_eval::grid(&v).is_none() {
                    return Err(format!("unknown grid {v:?} (small|wide)"));
                }
                args.grid = v;
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "bad value for --scale".to_string())?;
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .split(',')
                    .map(parse_seed)
                    .collect::<Result<_, _>>()?;
                if args.seeds.is_empty() {
                    return Err("--seeds needs at least one seed".to_string());
                }
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--bench-out" => args.bench_out = Some(PathBuf::from(value("--bench-out")?)),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            other => {
                match positional {
                    0 => {
                        args.scale = other
                            .parse()
                            .map_err(|_| format!("bad cycle_scale {other:?}"))?
                    }
                    1 => args.json_path = Some(other.to_string()),
                    _ => return Err(format!("unexpected argument {other:?}")),
                }
                positional += 1;
            }
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("predictor_matrix: {e}");
            std::process::exit(2);
        }
    };
    sos_bench::init_cache();

    if args.learned {
        run_learned(&args);
        return;
    }

    let cfg = sos_bench::config(args.scale);
    eprintln!(
        "# running 13 experiments at 1/{} paper scale ...",
        args.scale
    );
    let specs = ExperimentSpec::all_paper_experiments();
    let reports =
        sos_bench::parallel_map(specs, |spec| SosScheduler::evaluate_experiment(&spec, &cfg));
    sos_bench::print_cache_stats();

    println!(
        "Predictor league table over {} experiments (% vs random expectation)",
        reports.len()
    );
    print!("{}", format_league_table(&league_table(&reports)));

    if let Some(path) = args.json_path {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        std::fs::write(&path, json).expect("write JSON");
        eprintln!("# full reports written to {path}");
    }
}

fn run_learned(args: &Args) {
    let opts = LearnEvalOptions {
        grid: args.grid.clone(),
        seeds: args.seeds.clone(),
        scale: args.scale,
        ..LearnEvalOptions::new(&args.grid, args.scale)
    };
    eprintln!(
        "# learned sweep: grid {} × {} seed(s) at 1/{} paper scale ...",
        opts.grid,
        opts.seeds.len(),
        opts.scale
    );
    let (reports, summary) = learn_eval::run(&opts);
    sos_bench::print_cache_stats();

    println!(
        "Learned-predictor league table over {} experiments (% vs random expectation)",
        reports.len()
    );
    print!("{}", format_league_table(&league_table(&reports)));
    println!(
        "best fixed  {:<10} mean WS {:.4}",
        summary.best_fixed, summary.best_fixed_ws
    );
    println!(
        "worst fixed {:<10} mean WS {:.4}",
        summary.worst_fixed, summary.worst_fixed_ws
    );
    println!(
        "Learned mean WS {:.4}  Bandit mean WS {:.4}  oracle {:.4}",
        summary.learned_ws, summary.bandit_ws, summary.oracle_mean_ws
    );
    println!(
        "learner: {} train updates, err EWMA {:.4}, {} bandit pulls over {} contexts, regret {:.3}",
        summary.learner.train_updates,
        summary.learner.err_ewma,
        summary.learner.bandit_pulls,
        summary.learner.contexts,
        summary.learner.bandit_regret
    );
    println!(
        "acceptance (learned/bandit ≥ best fixed AND bandit ≥ worst fixed + 2%): {}",
        if summary.meets_acceptance() {
            "PASS"
        } else {
            "MISS"
        }
    );

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!(
            "predictor_matrix: cannot create {}: {e}",
            args.out_dir.display()
        );
        std::process::exit(1);
    }
    let summary_path = args.out_dir.join("learn_summary.json");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    if let Err(e) = std::fs::write(&summary_path, json + "\n") {
        eprintln!(
            "predictor_matrix: write {} failed: {e}",
            summary_path.display()
        );
        std::process::exit(1);
    }
    println!("# sweep summary written to {}", summary_path.display());

    if let Some(path) = &args.bench_out {
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let record = summary.to_bench_record(unix_secs);
        match record.append_to(path) {
            Ok(()) => println!("# learn bench record appended to {}", path.display()),
            Err(e) => {
                eprintln!("predictor_matrix: bench-out {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

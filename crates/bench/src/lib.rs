//! Shared helpers for the experiment-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). They all accept an optional first
//! argument: the cycle scale divisor (default 1000; 1 = full paper scale).

use sos_core::sos::ExperimentReport;
use sos_core::{PredictorKind, SosConfig};

/// Parses the common `[cycle_scale]` argument.
pub fn scale_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1000)
}

/// The default harness configuration at the given scale.
pub fn config(scale: u64) -> SosConfig {
    SosConfig {
        cycle_scale: scale,
        ..SosConfig::default()
    }
}

/// Percent by which `a` exceeds `b`; NaN when either input is non-finite or
/// the baseline is zero (the same guard as `sos_core::report::pct_over`, so
/// a degenerate run prints `NaN` instead of `±inf`).
pub fn pct_over(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() || b == 0.0 {
        f64::NAN
    } else {
        100.0 * (a / b - 1.0)
    }
}

/// Formats one experiment's best/worst/average WS as the rows of Figure 1.
pub fn print_experiment_summary(report: &ExperimentReport) {
    println!(
        "{:<14} best {:>6.3}  worst {:>6.3}  avg {:>6.3}  (best/worst {:+.1}%, best/avg {:+.1}%)",
        report.spec.label(),
        report.best_ws(),
        report.worst_ws(),
        report.average_ws(),
        pct_over(report.best_ws(), report.worst_ws()),
        pct_over(report.best_ws(), report.average_ws()),
    );
}

/// Prints the per-predictor weighted speedups for one experiment
/// (one group of Figure 2/3 bars), plus the sampling-oracle baseline.
pub fn print_predictor_bars(report: &ExperimentReport) {
    for p in PredictorKind::ALL {
        let ws = report.ws_with(p);
        println!(
            "    {:<10} WS {:>6.3}  ({:+5.1}% vs avg)",
            p.name(),
            ws,
            pct_over(ws, report.average_ws())
        );
    }
    println!(
        "    {:<10} WS {:>6.3}  ({:+5.1}% vs avg)",
        "SampledWS",
        report.oracle_ws(),
        pct_over(report.oracle_ws(), report.average_ws())
    );
}

/// Runs `f` over `items` on a pool of OS threads (experiments are
/// independent and single-threaded, so this scales to the 13 paper
/// configurations on a multicore host). The fan-out is capped at
/// [`std::thread::available_parallelism`], so oversubscription does not
/// distort per-experiment timing on small hosts. Results keep input order.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    parallel_map_with_workers(items, workers, f)
}

/// [`parallel_map`] with an explicit worker count. Results keep input order
/// regardless of `workers`, so a run is reproducible across pool sizes — the
/// replay tests pin this by comparing `workers = 1` against `workers = N`.
pub fn parallel_map_with_workers<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_over_math() {
        assert!((pct_over(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((pct_over(0.9, 1.0) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn pct_over_guards_degenerate_baselines() {
        // A worst-case WS of 0 used to print as +inf; it must be NaN, like
        // the report module's pct_over.
        assert!(pct_over(1.0, 0.0).is_nan());
        assert!(pct_over(f64::NAN, 1.0).is_nan());
        assert!(pct_over(1.0, f64::NEG_INFINITY).is_nan());
    }

    #[test]
    fn default_config_uses_requested_scale() {
        let cfg = config(500);
        assert_eq!(cfg.cycle_scale, 500);
        assert_eq!(cfg.predictor, PredictorKind::Score);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![3u64, 1, 4, 1, 5], |x| x * 2);
        assert_eq!(out, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = parallel_map_with_workers(items.clone(), 1, |x| x + 7);
        let pooled = parallel_map_with_workers(items, 8, |x| x + 7);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn parallel_map_handles_more_items_than_cores() {
        // Far more items than any host's parallelism: exercises the work
        // queue (each worker handles many items) and order preservation.
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items.clone(), |x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }
}

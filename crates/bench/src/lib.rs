//! Shared helpers for the experiment-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). They all accept an optional first
//! argument: the cycle scale divisor (default 1000; 1 = full paper scale).

use sos_core::sos::ExperimentReport;
use sos_core::{PredictorKind, SosConfig};

pub mod learn_eval;
pub mod serve;

/// Parses the common `[cycle_scale]` argument.
pub fn scale_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1000)
}

/// The default harness configuration at the given scale.
pub fn config(scale: u64) -> SosConfig {
    SosConfig {
        cycle_scale: scale,
        ..SosConfig::default()
    }
}

/// Percent by which `a` exceeds `b`; NaN when either input is non-finite or
/// the baseline is zero (the same guard as `sos_core::report::pct_over`, so
/// a degenerate run prints `NaN` instead of `±inf`).
pub fn pct_over(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() || b == 0.0 {
        f64::NAN
    } else {
        100.0 * (a / b - 1.0)
    }
}

/// Formats one experiment's best/worst/average WS as the rows of Figure 1.
pub fn print_experiment_summary(report: &ExperimentReport) {
    println!(
        "{:<14} best {:>6.3}  worst {:>6.3}  avg {:>6.3}  (best/worst {:+.1}%, best/avg {:+.1}%)",
        report.spec.label(),
        report.best_ws(),
        report.worst_ws(),
        report.average_ws(),
        pct_over(report.best_ws(), report.worst_ws()),
        pct_over(report.best_ws(), report.average_ws()),
    );
}

/// Prints the per-predictor weighted speedups for one experiment
/// (one group of Figure 2/3 bars), plus the sampling-oracle baseline.
pub fn print_predictor_bars(report: &ExperimentReport) {
    for p in PredictorKind::ALL {
        let ws = report.ws_with(p);
        println!(
            "    {:<10} WS {:>6.3}  ({:+5.1}% vs avg)",
            p.name(),
            ws,
            pct_over(ws, report.average_ws())
        );
    }
    println!(
        "    {:<10} WS {:>6.3}  ({:+5.1}% vs avg)",
        "SampledWS",
        report.oracle_ws(),
        pct_over(report.oracle_ws(), report.average_ws())
    );
}

// The parallel-map helpers moved into `sos_core` (the scheduler itself now
// evaluates candidates concurrently); re-exported here so the binaries keep
// their old import paths.
pub use sos_core::par::{parallel_map, parallel_map_with_workers};

/// Enables the process-wide evaluation cache for an experiment binary and
/// attaches the on-disk store.
///
/// * `SOS_CACHE=off` leaves the cache disabled entirely (forces a cold run).
/// * `SOS_CACHE_DIR=<dir>` overrides the store directory (default
///   `results/cache/`).
///
/// A disk failure degrades to the in-memory layer with a note on stderr;
/// the run itself is unaffected (caching is best-effort).
pub fn init_cache() {
    if std::env::var("SOS_CACHE")
        .map(|v| v == "off")
        .unwrap_or(false)
    {
        return;
    }
    sos_core::cache::enable();
    let dir = std::env::var("SOS_CACHE_DIR").unwrap_or_else(|_| "results/cache".to_string());
    match sos_core::cache::attach_disk(std::path::Path::new(&dir)) {
        Ok(loaded) => eprintln!("# cache: {loaded} entries loaded from {dir}"),
        Err(e) => eprintln!("# cache: disk store unavailable ({e}); in-memory only"),
    }
}

/// Prints the process-wide cache's hit/miss totals to stderr (a no-op while
/// the cache is disabled, so `SOS_CACHE=off` runs stay quiet).
pub fn print_cache_stats() {
    if sos_core::cache::is_enabled() {
        let stats = sos_core::cache::stats();
        eprintln!("# cache: {} hits, {} misses", stats.hits, stats.misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_over_math() {
        assert!((pct_over(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((pct_over(0.9, 1.0) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn pct_over_guards_degenerate_baselines() {
        // A worst-case WS of 0 used to print as +inf; it must be NaN, like
        // the report module's pct_over.
        assert!(pct_over(1.0, 0.0).is_nan());
        assert!(pct_over(f64::NAN, 1.0).is_nan());
        assert!(pct_over(1.0, f64::NEG_INFINITY).is_nan());
    }

    #[test]
    fn default_config_uses_requested_scale() {
        let cfg = config(500);
        assert_eq!(cfg.cycle_scale, 500);
        assert_eq!(cfg.predictor, PredictorKind::Score);
    }

    #[test]
    fn parallel_map_reexport_preserves_order() {
        // The implementation (and its full test suite) lives in
        // `sos_core::par`; this pins the re-exported path binaries use.
        let out = parallel_map(vec![3u64, 1, 4, 1, 5], |x| x * 2);
        assert_eq!(out, vec![6, 2, 8, 2, 10]);
        let serial = parallel_map_with_workers(vec![1u64, 2, 3], 1, |x| x + 7);
        assert_eq!(serial, vec![8, 9, 10]);
    }
}

//! Multithreaded (parallel) jobs with barrier synchronization.
//!
//! The paper's parallel program ARRAY "does tight synchronization between its
//! threads. If these threads are not coscheduled, very poor performance
//! results." A [`ParallelJob`] models this: its threads share barrier state,
//! and a thread that reaches a barrier before all its siblings reports
//! [`Fetch::Blocked`] until they catch up. A sibling that is not scheduled
//! cannot catch up, so the scheduled thread spins uselessly for the rest of
//! the timeslice — exactly the pathology §6 of the paper studies.
//!
//! The loosely-synchronizing variant (`J2pb`'s ARRAY) simply uses a barrier
//! period much longer than a timeslice.

use crate::spec::Benchmark;
use crate::synth::SyntheticStream;
use smtsim::trace::{Fetch, InstructionSource, StreamId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared barrier bookkeeping for the threads of one parallel job.
#[derive(Debug)]
struct BarrierCore {
    /// Instructions completed per thread.
    counts: Vec<AtomicU64>,
    /// Instructions between barriers (0 = no synchronization).
    period: u64,
}

impl BarrierCore {
    /// The slowest sibling's instruction count.
    fn min_count(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }
}

/// One thread of a parallel job.
///
/// Produced by [`ParallelJob::into_threads`]; implements
/// [`InstructionSource`] and can be scheduled like any single-threaded job.
pub struct ParallelThread {
    inner: SyntheticStream,
    core: Arc<BarrierCore>,
    index: usize,
}

impl ParallelThread {
    /// Instructions this thread has emitted.
    pub fn emitted(&self) -> u64 {
        self.inner.emitted()
    }

    /// Index of this thread within its job.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Instructions between barriers (0 = free-running).
    pub fn barrier_period(&self) -> u64 {
        self.core.period
    }

    /// Whether this thread is currently held at a barrier (its next
    /// instruction is past a barrier some sibling has not reached).
    pub fn at_barrier(&self) -> bool {
        let c = self.inner.emitted();
        self.core.period > 0
            && c > 0
            && c.is_multiple_of(self.core.period)
            && self.core.min_count() < c
    }
}

impl InstructionSource for ParallelThread {
    fn next_instr(&mut self) -> Fetch {
        if self.at_barrier() {
            return Fetch::Blocked;
        }
        let f = self.inner.next_instr();
        if matches!(f, Fetch::Instr(_)) {
            self.core.counts[self.index].store(self.inner.emitted(), Ordering::Relaxed);
        }
        f
    }

    fn id(&self) -> StreamId {
        self.inner.id()
    }
}

impl std::fmt::Debug for ParallelThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelThread")
            .field("index", &self.index)
            .field("emitted", &self.inner.emitted())
            .field("period", &self.core.period)
            .finish_non_exhaustive()
    }
}

/// A parallel job: `n` synthetic threads of the same benchmark sharing
/// barrier state.
///
/// # Example
///
/// ```
/// use workloads::parallel::ParallelJob;
/// use workloads::spec::Benchmark;
/// use smtsim::StreamId;
///
/// // The paper's tightly-synchronizing ARRAY with 2 threads.
/// let job = ParallelJob::new(Benchmark::Array, 2, ParallelJob::TIGHT_SYNC_PERIOD,
///                            StreamId(4), 99);
/// let threads = job.into_threads();
/// assert_eq!(threads.len(), 2);
/// ```
pub struct ParallelJob {
    threads: Vec<ParallelThread>,
}

impl ParallelJob {
    /// Barrier period of the tightly-synchronizing ARRAY (instructions).
    /// Far shorter than any timeslice — even the 1/1000-scale 5k-cycle
    /// timeslice — so a thread whose sibling is unscheduled stalls almost
    /// immediately and wastes its whole timeslice.
    pub const TIGHT_SYNC_PERIOD: u64 = 100;

    /// Barrier period of the loosely-synchronizing ARRAY variant used by the
    /// paper's J2pb experiment: much longer than a timeslice, so coscheduling
    /// the siblings is unnecessary.
    pub const LOOSE_SYNC_PERIOD: u64 = 400_000;

    /// Builds a parallel job with `n` threads of `benchmark`, synchronizing
    /// every `period` instructions (`0` disables barriers). Thread `i` gets
    /// stream id `base_id + i`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(benchmark: Benchmark, n: usize, period: u64, base_id: StreamId, seed: u64) -> Self {
        assert!(n > 0, "a parallel job needs at least one thread");
        let core = Arc::new(BarrierCore {
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            period,
        });
        let threads = (0..n)
            .map(|i| ParallelThread {
                inner: SyntheticStream::new(
                    benchmark.profile(),
                    StreamId(base_id.0 + i as u64),
                    seed.wrapping_add(i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                ),
                core: Arc::clone(&core),
                index: i,
            })
            .collect();
        ParallelJob { threads }
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the job has no threads (never true; see [`ParallelJob::new`]).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Consumes the job, yielding its schedulable threads.
    pub fn into_threads(self) -> Vec<ParallelThread> {
        self.threads
    }
}

impl std::fmt::Debug for ParallelJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelJob")
            .field("threads", &self.threads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(t: &mut ParallelThread, n: usize) -> (u64, u64) {
        // Returns (instructions produced, blocked polls).
        let mut produced = 0;
        let mut blocked = 0;
        for _ in 0..n {
            match t.next_instr() {
                Fetch::Instr(_) => produced += 1,
                Fetch::Blocked => blocked += 1,
                Fetch::Finished => break,
            }
        }
        (produced, blocked)
    }

    #[test]
    fn lone_thread_blocks_at_first_barrier() {
        let mut threads = ParallelJob::new(Benchmark::Array, 2, 100, StreamId(0), 1).into_threads();
        let (produced, blocked) = drive(&mut threads[0], 500);
        assert_eq!(produced, 100, "must stop exactly at the barrier");
        assert_eq!(blocked, 400);
        assert!(threads[0].at_barrier());
    }

    #[test]
    fn coscheduled_threads_progress_through_barriers() {
        let mut threads = ParallelJob::new(Benchmark::Array, 2, 100, StreamId(0), 1).into_threads();
        let mut produced = [0u64; 2];
        // Interleave fetches as a coschedule would.
        for _ in 0..1000 {
            for (i, t) in threads.iter_mut().enumerate() {
                if let Fetch::Instr(_) = t.next_instr() {
                    produced[i] += 1;
                }
            }
        }
        assert!(
            produced[0] >= 900,
            "coscheduled threads must flow: {produced:?}"
        );
        assert!(
            produced[1] >= 900,
            "coscheduled threads must flow: {produced:?}"
        );
        // Threads never drift more than one barrier apart.
        let gap = produced[0].abs_diff(produced[1]);
        assert!(gap <= 100, "barrier must bound drift, gap {gap}");
    }

    #[test]
    fn sibling_release_unblocks() {
        let mut threads = ParallelJob::new(Benchmark::Array, 2, 100, StreamId(0), 1).into_threads();
        let (p0, _) = drive(&mut threads[0], 200);
        assert_eq!(p0, 100);
        // Catch the sibling up.
        let (p1, _) = drive(&mut threads[1], 100);
        assert_eq!(p1, 100);
        // Thread 0 can now run to the next barrier.
        let (p0b, _) = drive(&mut threads[0], 200);
        assert_eq!(p0b, 100);
    }

    #[test]
    fn zero_period_never_blocks() {
        let mut threads = ParallelJob::new(Benchmark::Ep, 3, 0, StreamId(0), 2).into_threads();
        for t in &mut threads {
            let (produced, blocked) = drive(t, 1000);
            assert_eq!(produced, 1000);
            assert_eq!(blocked, 0);
        }
    }

    #[test]
    fn distinct_stream_ids_and_seeds() {
        let threads = ParallelJob::new(Benchmark::Array, 3, 100, StreamId(7), 1).into_threads();
        let ids: Vec<u64> = threads.iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn threads_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        let threads = ParallelJob::new(Benchmark::Array, 2, 100, StreamId(0), 1).into_threads();
        assert_send(&threads[0]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ParallelJob::new(Benchmark::Array, 0, 100, StreamId(0), 1);
    }
}

//! Recorded instruction traces: capture any stream's output and replay it.
//!
//! Useful for deterministic regression fixtures, for replaying an
//! interesting snippet in isolation, and as the entry point for users who
//! have *real* program traces — anything that can be turned into a sequence
//! of [`Instr`]s can drive the simulator.

use serde::{Deserialize, Serialize};
use smtsim::trace::{Fetch, Instr, InstructionSource, StreamId};

/// A finite, replayable instruction trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    id: StreamId,
    instrs: Vec<Instr>,
}

impl RecordedTrace {
    /// Captures up to `n` instructions from `source`. Stops early if the
    /// source finishes; [`Fetch::Blocked`] polls are skipped (they carry no
    /// instruction).
    pub fn record(source: &mut dyn InstructionSource, n: usize) -> Self {
        let id = source.id();
        let mut instrs = Vec::with_capacity(n);
        let mut blocked_polls = 0usize;
        while instrs.len() < n {
            match source.next_instr() {
                Fetch::Instr(i) => {
                    instrs.push(i);
                    blocked_polls = 0;
                }
                Fetch::Blocked => {
                    blocked_polls += 1;
                    // A source that is blocked forever (e.g. a lone barrier
                    // sibling) would spin us indefinitely; give up after a
                    // generous number of consecutive blocked polls.
                    if blocked_polls > 1_000_000 {
                        break;
                    }
                }
                Fetch::Finished => break,
            }
        }
        RecordedTrace { id, instrs }
    }

    /// Builds a trace directly from instructions (e.g. converted from an
    /// external trace format).
    pub fn from_instrs(id: StreamId, instrs: Vec<Instr>) -> Self {
        RecordedTrace { id, instrs }
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The recorded instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// A player over this trace. `looping` controls what happens at the end:
    /// wrap around (an infinite stream) or report `Finished`.
    pub fn player(&self, looping: bool) -> TracePlayer<'_> {
        TracePlayer {
            trace: self,
            pos: 0,
            looping,
        }
    }
}

/// Replays a [`RecordedTrace`].
#[derive(Clone, Debug)]
pub struct TracePlayer<'a> {
    trace: &'a RecordedTrace,
    pos: usize,
    looping: bool,
}

impl TracePlayer<'_> {
    /// Instructions replayed so far (wraps are cumulative).
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl InstructionSource for TracePlayer<'_> {
    fn next_instr(&mut self) -> Fetch {
        if self.trace.instrs.is_empty() {
            return Fetch::Finished;
        }
        if !self.looping && self.pos >= self.trace.instrs.len() {
            return Fetch::Finished;
        }
        let i = self.trace.instrs[self.pos % self.trace.instrs.len()];
        self.pos += 1;
        Fetch::Instr(i)
    }

    fn id(&self) -> StreamId {
        self.trace.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;

    #[test]
    fn record_and_replay_round_trips() {
        let mut src = Benchmark::Gcc.stream(StreamId(3), 11);
        let trace = RecordedTrace::record(&mut *src, 500);
        assert_eq!(trace.len(), 500);
        assert_eq!(trace.player(false).id(), StreamId(3));

        let mut player = trace.player(false);
        for expected in trace.instrs() {
            assert_eq!(player.next_instr(), Fetch::Instr(*expected));
        }
        assert_eq!(player.next_instr(), Fetch::Finished);
    }

    #[test]
    fn looping_player_wraps() {
        let trace = RecordedTrace::from_instrs(
            StreamId(0),
            vec![Instr::int_alu(4, 0), Instr::int_alu(8, 1)],
        );
        let mut p = trace.player(true);
        let a = p.next_instr();
        let b = p.next_instr();
        assert_eq!(p.next_instr(), a);
        assert_eq!(p.next_instr(), b);
        assert_eq!(p.position(), 4);
    }

    #[test]
    fn empty_trace_is_finished() {
        let trace = RecordedTrace::from_instrs(StreamId(0), vec![]);
        assert!(trace.is_empty());
        let mut p = trace.player(true);
        assert_eq!(p.next_instr(), Fetch::Finished);
    }

    #[test]
    fn record_stops_at_source_end() {
        let mut src = crate::synth::SyntheticStream::new(Benchmark::Ep.profile(), StreamId(1), 5)
            .with_limit(100);
        let trace = RecordedTrace::record(&mut src, 10_000);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn replay_drives_the_simulator_deterministically() {
        use smtsim::{MachineConfig, Processor};
        let mut src = Benchmark::Ep.stream(StreamId(0), 9);
        let trace = RecordedTrace::record(&mut *src, 20_000);

        let run = |trace: &RecordedTrace| {
            let mut cpu = Processor::new(MachineConfig::alpha21264_like(1));
            let mut p = trace.player(true);
            let mut refs: Vec<&mut dyn InstructionSource> = vec![&mut p];
            cpu.run_timeslice(&mut refs, 5_000)
        };
        assert_eq!(run(&trace), run(&trace));
    }

    #[test]
    fn traces_serialize() {
        let trace = RecordedTrace::from_instrs(StreamId(2), vec![Instr::int_alu(4, 1)]);
        let json = serde_json::to_string(&trace).unwrap();
        let back: RecordedTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}

//! The jobmixes of the paper's Table 1.
//!
//! Each experiment runs a fixed mix of single-threaded benchmarks and
//! (for the `Jp*` experiments and the hierarchical-symbiosis study)
//! multithreaded parallel jobs. A [`JobSpec`] describes one *job*; parallel
//! jobs expand into multiple schedulable threads.

use crate::parallel::ParallelJob;
use crate::spec::Benchmark;
use serde::{Deserialize, Serialize};
use smtsim::trace::StreamId;

/// How a job synchronizes, if it is multithreaded.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncStyle {
    /// Tight barriers (the paper's ARRAY): siblings must be coscheduled.
    Tight,
    /// Rare barriers (the J2pb ARRAY variant): coscheduling is unnecessary.
    Loose,
    /// No synchronization at all (e.g. threads of `mt_EP`).
    None,
}

impl SyncStyle {
    /// The barrier period in instructions this style implies.
    pub fn period(self) -> u64 {
        match self {
            SyncStyle::Tight => ParallelJob::TIGHT_SYNC_PERIOD,
            SyncStyle::Loose => ParallelJob::LOOSE_SYNC_PERIOD,
            SyncStyle::None => 0,
        }
    }
}

/// One job in a jobmix.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which benchmark the job runs.
    pub benchmark: Benchmark,
    /// Number of threads (1 = ordinary single-threaded job).
    pub threads: usize,
    /// Synchronization style among the threads (ignored when `threads == 1`).
    pub sync: SyncStyle,
}

impl JobSpec {
    /// A single-threaded job.
    pub fn single(benchmark: Benchmark) -> Self {
        JobSpec {
            benchmark,
            threads: 1,
            sync: SyncStyle::None,
        }
    }

    /// A multithreaded job with `threads` threads and the given sync style.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn parallel(benchmark: Benchmark, threads: usize, sync: SyncStyle) -> Self {
        assert!(threads > 0, "a job needs at least one thread");
        JobSpec {
            benchmark,
            threads,
            sync,
        }
    }

    /// A display name ("GCC", "mt_ARRAY(2)").
    pub fn label(&self) -> String {
        if self.threads == 1 {
            self.benchmark.name().to_string()
        } else {
            format!("mt_{}({})", self.benchmark.name(), self.threads)
        }
    }

    /// Expands the job into schedulable instruction streams. Thread `i` is
    /// tagged `base_id + i`; the job's RNG seed derives from `seed`.
    pub fn build(
        &self,
        base_id: StreamId,
        seed: u64,
    ) -> Vec<Box<dyn smtsim::trace::InstructionSource + Send>> {
        if self.threads == 1 {
            vec![Box::new(crate::synth::SyntheticStream::new(
                self.benchmark.profile(),
                base_id,
                seed,
            ))]
        } else {
            ParallelJob::new(
                self.benchmark,
                self.threads,
                self.sync.period(),
                base_id,
                seed,
            )
            .into_threads()
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn smtsim::trace::InstructionSource + Send>)
            .collect()
        }
    }
}

/// The single-threaded jobmixes of Table 1, keyed by the number of runnable
/// jobs. Returns `None` for sizes the paper does not use.
///
/// * 4 jobs — FP, MG, GCC, IS (`Jsb(4,2,2)`)
/// * 5 jobs — FP, MG, WAVE, GCC, GO (`Jsb(5,2,2)`, `Jsl(5,2,1)`)
/// * 6 jobs — FP, MG, WAVE, GCC, GCC, GO (`Jsb(6,3,*)`, `Jsl(6,3,1)`)
/// * 8 jobs — FP, MG, WAVE, SWIM, GCC, GCC, GO, IS (`Jsb(8,4,*)`, `Jsl(8,4,1)`)
/// * 12 jobs — FP, MG, WAVE, SWIM, SU2COR, TURB3D, GCC, GCC, GO, IS, CG, EP
///   (`Jsb(12,6,6)`, `Jsb(12,4,4)`)
pub fn single_threaded_mix(jobs: usize) -> Option<Vec<JobSpec>> {
    use Benchmark::*;
    let mix = match jobs {
        4 => vec![Fp, Mg, Gcc, Is],
        5 => vec![Fp, Mg, Wave, Gcc, Go],
        6 => vec![Fp, Mg, Wave, Gcc, Gcc, Go],
        8 => vec![Fp, Mg, Wave, Swim, Gcc, Gcc, Go, Is],
        12 => vec![Fp, Mg, Wave, Swim, Su2cor, Turb3d, Gcc, Gcc, Go, Is, Cg, Ep],
        _ => return None,
    };
    Some(mix.into_iter().map(JobSpec::single).collect())
}

/// The parallel jobmix of `Jpb(10,2,2)` / `J2pb(10,2,2)`: eight
/// single-threaded jobs plus one two-threaded ARRAY (its threads are the two
/// "ARRAY" entries in Table 1). `tight` selects the tightly-synchronizing
/// ARRAY (Jpb) or the loose variant (J2pb).
pub fn parallel_mix(tight: bool) -> Vec<JobSpec> {
    use Benchmark::*;
    let mut jobs: Vec<JobSpec> = [Fp, Mg, Wave, Swim, Su2cor, Turb3d, Gcc, Gcc]
        .into_iter()
        .map(JobSpec::single)
        .collect();
    jobs.push(JobSpec::parallel(
        Array,
        2,
        if tight {
            SyncStyle::Tight
        } else {
            SyncStyle::Loose
        },
    ));
    jobs
}

/// The hierarchical-symbiosis jobmixes of Table 1's "SMT level" rows.
/// Returns `None` for levels the paper does not use.
///
/// * SMT 2 — CG, mt_ARRAY, EP
/// * SMT 3 — FP, MG, WAVE, mt_EP, CG
/// * SMT 4 — FP, MG, WAVE, mt_ARRAY, EP, CG
/// * SMT 6 — FP, MG, WAVE, GO, IS, GCC, mt_ARRAY, EP, CG, FT
///
/// The multithreaded jobs (`mt_*`) are listed with their maximum thread
/// count; the hierarchical scheduler decides how many contexts each actually
/// receives (§7).
pub fn hierarchical_mix(smt_level: usize) -> Option<Vec<JobSpec>> {
    use Benchmark::*;
    let jobs = match smt_level {
        2 => vec![
            JobSpec::single(Cg),
            JobSpec::parallel(Array, 2, SyncStyle::Tight),
            JobSpec::single(Ep),
        ],
        3 => vec![
            JobSpec::single(Fp),
            JobSpec::single(Mg),
            JobSpec::single(Wave),
            JobSpec::parallel(Ep, 2, SyncStyle::None),
            JobSpec::single(Cg),
        ],
        4 => vec![
            JobSpec::single(Fp),
            JobSpec::single(Mg),
            JobSpec::single(Wave),
            JobSpec::parallel(Array, 2, SyncStyle::Tight),
            JobSpec::single(Ep),
            JobSpec::single(Cg),
        ],
        6 => vec![
            JobSpec::single(Fp),
            JobSpec::single(Mg),
            JobSpec::single(Wave),
            JobSpec::single(Go),
            JobSpec::single(Is),
            JobSpec::single(Gcc),
            JobSpec::parallel(Array, 2, SyncStyle::Tight),
            JobSpec::single(Ep),
            JobSpec::single(Cg),
            JobSpec::single(Ft),
        ],
        _ => return None,
    };
    Some(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match() {
        assert_eq!(single_threaded_mix(4).unwrap().len(), 4);
        assert_eq!(single_threaded_mix(5).unwrap().len(), 5);
        assert_eq!(single_threaded_mix(6).unwrap().len(), 6);
        assert_eq!(single_threaded_mix(8).unwrap().len(), 8);
        assert_eq!(single_threaded_mix(12).unwrap().len(), 12);
        assert!(single_threaded_mix(7).is_none());
    }

    #[test]
    fn parallel_mix_has_ten_threads() {
        for tight in [true, false] {
            let jobs = parallel_mix(tight);
            let threads: usize = jobs.iter().map(|j| j.threads).sum();
            assert_eq!(threads, 10);
            assert_eq!(jobs.len(), 9);
        }
    }

    #[test]
    fn jpb_sync_styles_differ() {
        assert_eq!(parallel_mix(true).last().unwrap().sync, SyncStyle::Tight);
        assert_eq!(parallel_mix(false).last().unwrap().sync, SyncStyle::Loose);
    }

    #[test]
    fn hierarchical_rows_exist() {
        for level in [2, 3, 4, 6] {
            let jobs = hierarchical_mix(level).unwrap();
            assert!(
                jobs.iter().any(|j| j.threads > 1),
                "SMT {level} row has an mt job"
            );
        }
        assert!(hierarchical_mix(5).is_none());
    }

    #[test]
    fn six_job_mix_has_two_gccs() {
        let mix = single_threaded_mix(6).unwrap();
        let gccs = mix.iter().filter(|j| j.benchmark == Benchmark::Gcc).count();
        assert_eq!(gccs, 2);
    }

    #[test]
    fn build_expands_threads() {
        let spec = JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight);
        let streams = spec.build(StreamId(0), 42);
        assert_eq!(streams.len(), 2);
        let single = JobSpec::single(Benchmark::Gcc).build(StreamId(5), 1);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(JobSpec::single(Benchmark::Gcc).label(), "GCC");
        assert_eq!(
            JobSpec::parallel(Benchmark::Ep, 3, SyncStyle::None).label(),
            "mt_EP(3)"
        );
    }

    #[test]
    fn sync_periods() {
        assert_eq!(SyncStyle::None.period(), 0);
        assert!(SyncStyle::Tight.period() < SyncStyle::Loose.period());
    }
}

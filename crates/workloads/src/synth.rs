//! The synthetic instruction-stream generator.
//!
//! A [`SyntheticStream`] turns a [`BenchProfile`] into a deterministic
//! instruction stream with the profile's statistics:
//!
//! * **Code layout** — the program is a ring of basic blocks spread over the
//!   profile's code footprint. Each block ends in a conditional branch at a
//!   fixed PC (a *branch site*) with a per-site outcome bias, so the shared
//!   gshare predictor sees realistic, learnable-or-not branch behaviour and
//!   the I-cache sees the real footprint.
//! * **Instruction mix** — non-branch classes are sampled from the profile's
//!   weights; branch frequency is set by the mean basic-block length derived
//!   from the mix's branch weight.
//! * **ILP** — each instruction's register-dependency distance is geometric
//!   with the profile's mean; short distances serialize, long distances leave
//!   instructions effectively independent.
//! * **Memory behaviour** — references hit a hot subset of the data
//!   footprint with probability `locality`, and otherwise either stride
//!   sequentially (streaming scientific codes) or scatter uniformly
//!   (pointer-chasing integer codes) across the whole footprint.
//! * **Phases** — the FP-versus-integer balance of the mix oscillates slowly
//!   with the profile's phase period and amplitude, so sampled IPC is noisy
//!   between timeslices the way the paper observes.

use crate::profile::BenchProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smtsim::trace::{Fetch, Instr, InstrClass, InstructionSource, StreamId};

/// How often (in instructions) the phase-modulated class weights are
/// recomputed. Phases are tens of thousands of instructions long, so this is
/// plenty fine-grained.
const PHASE_REFRESH: u64 = 256;

/// Cap on generated dependency distances (the simulator tracks 8-bit
/// distances; anything this far back is effectively independent anyway).
const MAX_DEP: u8 = 48;

/// A deterministic synthetic instruction stream (see the module docs).
pub struct SyntheticStream {
    id: StreamId,
    profile: BenchProfile,
    rng: SmallRng,
    /// Instructions emitted so far.
    count: u64,
    /// Optional total length; `Finished` is reported after this many.
    limit: Option<u64>,
    // Code layout.
    n_blocks: u64,
    mean_block_len: u64,
    block: u64,
    block_pos: u64,
    block_len: u64,
    // Memory behaviour.
    stride_pos: u64,
    hot_bytes: u64,
    /// Current page for clustered scatter references and refs left in it.
    scatter_page: u64,
    scatter_left: u32,
    /// Random page-aligned placement of the data region within the stream's
    /// address space. Distinct per stream, so jobs do not alias into the same
    /// sets of the physically-indexed shared caches.
    data_base: u64,
    /// Placement of the code region.
    code_base: u64,
    // Class sampling (cumulative weights over non-branch classes).
    cum: [f64; 7],
    phase_offset: f64,
    next_refresh: u64,
}

/// The seven non-branch classes, in cumulative-weight order.
const NON_BRANCH: [InstrClass; 7] = [
    InstrClass::IntAlu,
    InstrClass::IntMul,
    InstrClass::FpAdd,
    InstrClass::FpMul,
    InstrClass::FpDiv,
    InstrClass::Load,
    InstrClass::Store,
];

/// Cheap deterministic 64-bit mix (splitmix64 finalizer).
#[inline]
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl SyntheticStream {
    /// Builds a stream for `profile`, tagged with `id`, seeded with `seed`.
    ///
    /// Streams with the same profile but different seeds model a program at
    /// different points of its execution (the paper starts each benchmark
    /// partially executed).
    ///
    /// # Panics
    /// Panics if the profile fails [`BenchProfile::validate`].
    pub fn new(profile: BenchProfile, id: StreamId, seed: u64) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid benchmark profile: {e}");
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ hash64(id.0 << 32));
        // Branch frequency -> mean basic-block length.
        let total = profile.mix.total();
        let branch_frac = (profile.mix.branch / total).clamp(0.001, 0.5);
        let mean_block_len = (1.0 / branch_frac).round().max(2.0) as u64;
        let n_blocks = (profile.code_bytes / (mean_block_len * 4))
            .max(4)
            .min(profile.branch_sites.max(4) as u64);
        let hot_bytes = ((profile.data_bytes as f64 * profile.hot_fraction) as u64).max(256);
        // Scatter each stream's regions across the 40-bit space (page
        // aligned) so streams do not collide set-for-set in shared caches.
        let data_base =
            (hash64(seed ^ (id.0 << 8) ^ 0xda7a) << 13) & ((1 << (StreamId::ADDR_BITS - 1)) - 1);
        let code_base =
            (hash64(seed ^ (id.0 << 8) ^ 0xc0de) << 13) & ((1 << (StreamId::ADDR_BITS - 1)) - 1);
        let block = rng.gen_range(0..n_blocks);
        let phase_offset = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut s = SyntheticStream {
            id,
            profile,
            rng,
            count: 0,
            limit: None,
            n_blocks,
            mean_block_len,
            block,
            block_pos: 0,
            block_len: 0,
            stride_pos: 0,
            hot_bytes,
            scatter_page: 0,
            scatter_left: 0,
            data_base,
            code_base,
            cum: [0.0; 7],
            phase_offset,
            next_refresh: 0,
        };
        s.block_len = s.len_of_block(s.block);
        s.refresh_weights();
        s
    }

    /// Restricts the stream to `n` total instructions, after which it reports
    /// [`Fetch::Finished`].
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.count
    }

    /// Whether a limited stream has produced all of its instructions.
    /// Always `false` for unlimited streams.
    pub fn is_finished(&self) -> bool {
        self.limit.is_some_and(|l| self.count >= l)
    }

    /// The configured total length, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    /// Deterministic length of basic block `b` (average `mean_block_len`).
    fn len_of_block(&self, b: u64) -> u64 {
        let m = self.mean_block_len;
        if m <= 2 {
            return m.max(1);
        }
        // Uniform in [2, 2m-2], mean m.
        2 + hash64(b ^ 0xb10c) % (2 * m - 3)
    }

    /// Deterministic branch-target block for site `b`.
    fn target_of_block(&self, b: u64) -> u64 {
        // Mostly short backward/forward jumps (loops), occasionally far.
        let h = hash64(b ^ 0x7a26e7);
        if h % 8 < 6 {
            // Loop-like: jump back a few blocks.
            let back = 1 + h % 8;
            (b + self.n_blocks - back.min(b % self.n_blocks + 1)) % self.n_blocks
        } else {
            h % self.n_blocks
        }
    }

    /// Per-site probability that the branch is taken.
    fn taken_prob(&self, b: u64) -> f64 {
        let h = hash64(b ^ 0xb1a5);
        let predictable = (h % 1000) as f64 / 1000.0 < self.profile.branch_predictability;
        if predictable {
            // Strongly biased site; which way depends on the site.
            if h & 1 == 0 {
                0.97
            } else {
                0.03
            }
        } else {
            // Effectively random outcome.
            0.5
        }
    }

    /// PC of the `pos`-th instruction of block `b` (local address; tagging
    /// with the stream id happens at emission).
    fn pc_of(&self, b: u64, pos: u64) -> u64 {
        self.code_base + (b * self.mean_block_len * 4 + pos * 4) % self.profile.code_bytes.max(4)
    }

    /// Recomputes the phase-modulated cumulative class weights.
    fn refresh_weights(&mut self) {
        let p = &self.profile;
        let swing = if p.phase_period == 0 {
            0.0
        } else {
            let theta = std::f64::consts::TAU * (self.count as f64 / p.phase_period as f64)
                + self.phase_offset;
            p.phase_amplitude * theta.sin()
        };
        // Phase shifts work between FP arithmetic and integer arithmetic,
        // modeling loop nests alternating with bookkeeping code.
        let fp_scale = (1.0 + swing).max(0.05);
        let int_scale = (1.0 - swing).max(0.05);
        let w = [
            p.mix.int_alu * int_scale,
            p.mix.int_mul * int_scale,
            p.mix.fp_add * fp_scale,
            p.mix.fp_mul * fp_scale,
            p.mix.fp_div * fp_scale,
            p.mix.load,
            p.mix.store,
        ];
        let mut acc = 0.0;
        for (i, wi) in w.iter().enumerate() {
            acc += wi;
            self.cum[i] = acc;
        }
        self.next_refresh = self.count + PHASE_REFRESH;
    }

    /// Samples a non-branch instruction class.
    fn sample_class(&mut self) -> InstrClass {
        let total = self.cum[6];
        let x = self.rng.gen_range(0.0..total);
        let idx = self.cum.iter().position(|&c| x < c).unwrap_or(6);
        NON_BRANCH[idx]
    }

    /// Samples a geometric dependency distance with the profile's mean.
    fn sample_dep(&mut self) -> u8 {
        let p = 1.0 / self.profile.dep_mean;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let d = (u.ln() / (1.0 - p).max(1e-9).ln()).ceil();
        if d.is_finite() {
            (d as u64).clamp(1, u64::from(MAX_DEP)) as u8
        } else {
            1
        }
    }

    /// Samples a data address (local, 8-byte aligned).
    fn sample_addr(&mut self) -> u64 {
        let p = &self.profile;
        let in_hot = self.rng.gen_bool(p.locality);
        let raw = if in_hot {
            self.rng.gen_range(0..self.hot_bytes / 8) * 8
        } else if p.streaming {
            self.stride_pos = self.stride_pos.wrapping_add(8);
            let a = self.hot_bytes + self.stride_pos % (p.data_bytes - self.hot_bytes).max(8);
            a & !7
        } else {
            // Pointer-chasing codes scatter, but with run lengths: several
            // consecutive references land in the same page before jumping.
            if self.scatter_left == 0 {
                let pages = (p.data_bytes >> 13).max(1);
                self.scatter_page = self.rng.gen_range(0..pages) << 13;
                self.scatter_left = 24;
            }
            self.scatter_left -= 1;
            self.scatter_page + self.rng.gen_range(0..(8192 / 8)) * 8
        };
        self.data_base + raw
    }
}

impl InstructionSource for SyntheticStream {
    fn next_instr(&mut self) -> Fetch {
        if let Some(limit) = self.limit {
            if self.count >= limit {
                return Fetch::Finished;
            }
        }
        if self.count >= self.next_refresh {
            self.refresh_weights();
        }
        let at_branch = self.block_pos + 1 >= self.block_len;
        let pc = self.id.tag_addr(self.pc_of(self.block, self.block_pos));
        let instr = if at_branch {
            let taken = self.rng.gen_bool(self.taken_prob(self.block));
            let next = if taken {
                self.target_of_block(self.block)
            } else {
                (self.block + 1) % self.n_blocks
            };
            self.block = next;
            self.block_pos = 0;
            self.block_len = self.len_of_block(next);
            // Branches depend on the compare that feeds them.
            let mut b = Instr::branch(pc, taken);
            b.dep_dist = self.sample_dep();
            b
        } else {
            self.block_pos += 1;
            let class = self.sample_class();
            let dep = self.sample_dep();
            match class {
                InstrClass::Load => Instr::load(pc, self.id.tag_addr(self.sample_addr()), dep),
                InstrClass::Store => Instr::store(pc, self.id.tag_addr(self.sample_addr()), dep),
                InstrClass::IntAlu => Instr::int_alu(pc, dep),
                InstrClass::IntMul => Instr::int_mul(pc, dep),
                c => Instr::fp(c, pc, dep),
            }
        };
        self.count += 1;
        Fetch::Instr(instr)
    }

    fn id(&self) -> StreamId {
        self.id
    }

    /// O(1) fast-forward: every piece of generator state is re-derived as a
    /// pure function of the new instruction count, instead of drawing `n`
    /// instructions. The fast-sim extrapolator skips millions of
    /// instructions per synthesized timeslice, so this must not be O(n).
    ///
    /// The resumed stream is *statistically* identical (same profile, same
    /// deterministic block ring and placements) but not instruction-identical
    /// with a stream that emitted its way to the same count — acceptable
    /// because the caller only ever skips work whose counters were already
    /// synthesized, and required for determinism: the same (seed, count)
    /// always resumes in the same state.
    fn skip_instructions(&mut self, n: u64) {
        if n == 0 || self.is_finished() {
            return;
        }
        let n = match self.limit {
            Some(l) => n.min(l - self.count),
            None => n,
        };
        self.count += n;
        // Re-place control flow at a deterministic block for this position.
        self.block = hash64(self.count ^ self.code_base ^ 0x5eed) % self.n_blocks;
        self.block_pos = 0;
        self.block_len = self.len_of_block(self.block);
        // Re-seed sampling deterministically from (placement, position);
        // scatter runs restart on the next reference.
        self.rng = SmallRng::seed_from_u64(hash64(self.count ^ self.data_base));
        self.scatter_left = 0;
        // Phase weights are a pure function of `count`; recompute them here
        // rather than waiting for the stale `next_refresh`.
        self.refresh_weights();
    }
}

impl std::fmt::Debug for SyntheticStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticStream")
            .field("profile", &self.profile.name)
            .field("id", &self.id)
            .field("emitted", &self.count)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClassMix;

    fn profile() -> BenchProfile {
        BenchProfile {
            name: "synthtest".into(),
            mix: ClassMix {
                int_alu: 0.35,
                int_mul: 0.02,
                fp_add: 0.15,
                fp_mul: 0.10,
                fp_div: 0.01,
                load: 0.20,
                store: 0.07,
                branch: 0.10,
            },
            dep_mean: 5.0,
            branch_sites: 64,
            branch_predictability: 0.9,
            code_bytes: 16 << 10,
            data_bytes: 128 << 10,
            locality: 0.8,
            hot_fraction: 0.1,
            streaming: false,
            phase_period: 50_000,
            phase_amplitude: 0.3,
        }
    }

    fn collect(n: usize, seed: u64) -> Vec<Instr> {
        let mut s = SyntheticStream::new(profile(), StreamId(1), seed);
        (0..n)
            .map(|_| s.next_instr().instr().expect("infinite stream"))
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(collect(5_000, 7), collect(5_000, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(collect(5_000, 7), collect(5_000, 8));
    }

    #[test]
    fn class_mix_roughly_matches_profile() {
        let instrs = collect(200_000, 3);
        let n = instrs.len() as f64;
        let frac = |c: InstrClass| instrs.iter().filter(|i| i.class == c).count() as f64 / n;
        // Branch fraction should be near the profile's 10%.
        let b = frac(InstrClass::Branch);
        assert!((0.05..0.2).contains(&b), "branch fraction {b}");
        // Loads near 20% of non-branch ~ 18% overall.
        let l = frac(InstrClass::Load);
        assert!((0.1..0.3).contains(&l), "load fraction {l}");
        // FP arithmetic present.
        let f = frac(InstrClass::FpAdd) + frac(InstrClass::FpMul) + frac(InstrClass::FpDiv);
        assert!((0.1..0.4).contains(&f), "fp fraction {f}");
    }

    #[test]
    fn pcs_span_at_most_the_code_footprint() {
        let p = profile();
        let pcs: Vec<u64> = collect(20_000, 5).iter().map(|i| i.pc).collect();
        let lo = *pcs.iter().min().unwrap();
        let hi = *pcs.iter().max().unwrap();
        assert!(
            hi - lo < p.code_bytes,
            "code span {:#x} exceeds {:#x}",
            hi - lo,
            p.code_bytes
        );
        // All PCs carry the stream tag.
        assert!(pcs.iter().all(|pc| pc >> StreamId::ADDR_BITS == 1));
    }

    #[test]
    fn addresses_span_at_most_the_data_footprint() {
        let p = profile();
        let addrs: Vec<u64> = collect(50_000, 5)
            .iter()
            .filter(|i| i.class.is_mem())
            .map(|i| i.addr)
            .collect();
        let lo = *addrs.iter().min().unwrap();
        let hi = *addrs.iter().max().unwrap();
        assert!(
            hi - lo < p.data_bytes,
            "data span {:#x} exceeds {:#x}",
            hi - lo,
            p.data_bytes
        );
        assert!(addrs.iter().all(|a| a >> StreamId::ADDR_BITS == 1));
    }

    #[test]
    fn distinct_streams_use_distinct_placements() {
        let a = SyntheticStream::new(profile(), StreamId(1), 7);
        let b = SyntheticStream::new(profile(), StreamId(2), 7);
        assert_ne!(a.data_base, b.data_base);
        assert_ne!(a.code_base, b.code_base);
    }

    #[test]
    fn dependency_distances_have_roughly_the_right_mean() {
        let instrs = collect(100_000, 11);
        let deps: Vec<f64> = instrs
            .iter()
            .filter(|i| i.dep_dist > 0)
            .map(|i| f64::from(i.dep_dist))
            .collect();
        let mean = deps.iter().sum::<f64>() / deps.len() as f64;
        assert!((3.0..8.0).contains(&mean), "dep mean {mean} vs profile 5.0");
    }

    #[test]
    fn limit_finishes_stream() {
        let mut s = SyntheticStream::new(profile(), StreamId(1), 1).with_limit(100);
        let mut produced = 0;
        loop {
            match s.next_instr() {
                Fetch::Instr(_) => produced += 1,
                Fetch::Finished => break,
                Fetch::Blocked => panic!("synthetic streams never block"),
            }
            assert!(produced <= 100);
        }
        assert_eq!(produced, 100);
        assert_eq!(s.emitted(), 100);
        // Stays finished.
        assert_eq!(s.next_instr(), Fetch::Finished);
    }

    #[test]
    fn skip_advances_count_and_respects_limit() {
        let mut s = SyntheticStream::new(profile(), StreamId(1), 3).with_limit(1_000);
        s.skip_instructions(400);
        assert_eq!(s.emitted(), 400);
        assert!(!s.is_finished());
        // Skipping past the limit clamps and finishes.
        s.skip_instructions(10_000);
        assert_eq!(s.emitted(), 1_000);
        assert!(s.is_finished());
        assert_eq!(s.next_instr(), Fetch::Finished);
        // Skipping a finished stream is a no-op.
        s.skip_instructions(5);
        assert_eq!(s.emitted(), 1_000);
    }

    #[test]
    fn skip_is_deterministic() {
        // Two streams skipped to the same position must continue identically.
        let mut a = SyntheticStream::new(profile(), StreamId(1), 3);
        let mut b = SyntheticStream::new(profile(), StreamId(1), 3);
        a.skip_instructions(123_456);
        b.skip_instructions(123_456);
        let next_a: Vec<Instr> = (0..2_000)
            .map(|_| a.next_instr().instr().unwrap())
            .collect();
        let next_b: Vec<Instr> = (0..2_000)
            .map(|_| b.next_instr().instr().unwrap())
            .collect();
        assert_eq!(next_a, next_b);
        // And a different skip distance lands in a different state.
        let mut c = SyntheticStream::new(profile(), StreamId(1), 3);
        c.skip_instructions(123_457);
        let next_c: Vec<Instr> = (0..2_000)
            .map(|_| c.next_instr().instr().unwrap())
            .collect();
        assert_ne!(next_a, next_c);
    }

    #[test]
    fn skip_preserves_stream_statistics() {
        // After a long skip the stream still honours its profile: addresses
        // stay inside the footprint, classes keep roughly the mix.
        let p = profile();
        let mut s = SyntheticStream::new(p.clone(), StreamId(1), 5);
        s.skip_instructions(1_000_000);
        let instrs: Vec<Instr> = (0..50_000)
            .map(|_| s.next_instr().instr().unwrap())
            .collect();
        let addrs: Vec<u64> = instrs
            .iter()
            .filter(|i| i.class.is_mem())
            .map(|i| i.addr)
            .collect();
        let span = addrs.iter().max().unwrap() - addrs.iter().min().unwrap();
        assert!(span < p.data_bytes, "data span {span:#x}");
        let branches = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Branch)
            .count() as f64
            / instrs.len() as f64;
        assert!(
            (0.05..0.2).contains(&branches),
            "branch fraction {branches}"
        );
    }

    #[test]
    fn branch_outcomes_are_mostly_biased() {
        // With predictability 0.9 most sites are heavily biased, so the
        // overall taken-rate should sit away from 0.5 noise... measured
        // per-site: check that at least some sites are strongly biased.
        let mut s = SyntheticStream::new(profile(), StreamId(1), 13);
        let mut per_site: std::collections::HashMap<u64, (u64, u64)> = Default::default();
        for _ in 0..200_000 {
            if let Fetch::Instr(i) = s.next_instr() {
                if i.class == InstrClass::Branch {
                    let e = per_site.entry(i.pc).or_default();
                    e.0 += u64::from(i.taken);
                    e.1 += 1;
                }
            }
        }
        let hot_sites: Vec<_> = per_site.values().filter(|(_, n)| *n >= 50).collect();
        assert!(!hot_sites.is_empty());
        let biased = hot_sites
            .iter()
            .filter(|(t, n)| {
                let r = *t as f64 / *n as f64;
                !(0.2..=0.8).contains(&r)
            })
            .count();
        assert!(
            biased * 2 > hot_sites.len(),
            "most hot sites should be biased: {biased}/{}",
            hot_sites.len()
        );
    }

    #[test]
    fn streaming_profile_sweeps_addresses() {
        let mut p = profile();
        p.streaming = true;
        p.locality = 0.0;
        let mut s = SyntheticStream::new(p, StreamId(1), 17);
        let mut addrs = Vec::new();
        for _ in 0..10_000 {
            if let Fetch::Instr(i) = s.next_instr() {
                if i.class.is_mem() {
                    addrs.push(i.addr);
                }
            }
        }
        // Sequential sweep: consecutive addresses mostly ascending by 8.
        let ascending = addrs.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(
            ascending * 2 > addrs.len(),
            "streaming refs should stride: {ascending}/{}",
            addrs.len()
        );
    }
}

//! Benchmark profiles: the statistical fingerprint of one program.

use serde::{Deserialize, Serialize};

/// Relative weights of the eight instruction classes a program executes.
///
/// Weights need not sum to 1; the generator normalizes them.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Integer ALU operations.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// FP add/subtract.
    pub fp_add: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// FP divide.
    pub fp_div: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
}

impl ClassMix {
    /// The weights as an array in [`smtsim::InstrClass::ALL`] order.
    pub fn weights(&self) -> [f64; 8] {
        [
            self.int_alu,
            self.int_mul,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.load,
            self.store,
            self.branch,
        ]
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.weights().iter().sum()
    }

    /// Fraction of instructions that are FP arithmetic.
    pub fn fp_fraction(&self) -> f64 {
        (self.fp_add + self.fp_mul + self.fp_div) / self.total()
    }

    /// Validates that all weights are finite, non-negative, and not all zero.
    pub fn validate(&self) -> Result<(), String> {
        let w = self.weights();
        if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err("class-mix weights must be finite and non-negative".into());
        }
        if self.total() <= 0.0 {
            return Err("class-mix weights must not all be zero".into());
        }
        Ok(())
    }
}

/// The full statistical fingerprint of a benchmark.
///
/// These are the knobs the synthetic generator uses; see
/// [`crate::spec::Benchmark`] for the per-benchmark values used in the
/// reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// Human-readable name ("fpppp", "gcc", ...).
    pub name: String,
    /// Instruction-class mix.
    pub mix: ClassMix,
    /// Mean register-dependency distance in dynamic instructions. Larger
    /// values mean more intrinsic ILP. Must be >= 1.
    pub dep_mean: f64,
    /// Number of static branch sites (more sites = more predictor pressure).
    pub branch_sites: usize,
    /// Probability that a branch site is strongly biased (predictable).
    /// Unbiased sites flip nearly randomly.
    pub branch_predictability: f64,
    /// Code footprint in bytes (I-cache pressure).
    pub code_bytes: u64,
    /// Data footprint in bytes (D-cache/L2 pressure).
    pub data_bytes: u64,
    /// Probability that a memory reference hits the hot subset of the data
    /// footprint rather than sweeping the whole footprint.
    pub locality: f64,
    /// Fraction of `data_bytes` forming the hot subset.
    pub hot_fraction: f64,
    /// Whether memory references stride sequentially (streaming FP codes) or
    /// scatter (pointer-chasing integer codes).
    pub streaming: bool,
    /// Instructions per slow phase oscillation (0 disables phases).
    pub phase_period: u64,
    /// Amplitude of the phase swing applied to the FP/memory mix, 0..1.
    pub phase_amplitude: f64,
}

impl BenchProfile {
    /// Validates parameter ranges; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.mix.validate()?;
        if self.dep_mean < 1.0 {
            return Err(format!("{}: dep_mean must be >= 1", self.name));
        }
        if self.branch_sites == 0 {
            return Err(format!("{}: need at least one branch site", self.name));
        }
        if !(0.0..=1.0).contains(&self.branch_predictability) {
            return Err(format!(
                "{}: branch_predictability must be in [0,1]",
                self.name
            ));
        }
        if !(0.0..=1.0).contains(&self.locality) || !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(format!(
                "{}: locality/hot_fraction must be in [0,1]",
                self.name
            ));
        }
        if self.code_bytes < 256 || self.data_bytes < 256 {
            return Err(format!(
                "{}: code/data footprints must be at least 256 bytes",
                self.name
            ));
        }
        if !(0.0..=1.0).contains(&self.phase_amplitude) {
            return Err(format!("{}: phase_amplitude must be in [0,1]", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> ClassMix {
        ClassMix {
            int_alu: 0.3,
            int_mul: 0.01,
            fp_add: 0.2,
            fp_mul: 0.15,
            fp_div: 0.02,
            load: 0.2,
            store: 0.07,
            branch: 0.05,
        }
    }

    fn profile() -> BenchProfile {
        BenchProfile {
            name: "test".into(),
            mix: mix(),
            dep_mean: 4.0,
            branch_sites: 64,
            branch_predictability: 0.9,
            code_bytes: 16 << 10,
            data_bytes: 256 << 10,
            locality: 0.85,
            hot_fraction: 0.1,
            streaming: false,
            phase_period: 100_000,
            phase_amplitude: 0.2,
        }
    }

    #[test]
    fn fp_fraction_math() {
        let m = mix();
        assert!((m.fp_fraction() - 0.37).abs() < 1e-9);
    }

    #[test]
    fn valid_profile_passes() {
        profile().validate().unwrap();
    }

    #[test]
    fn negative_weight_rejected() {
        let mut p = profile();
        p.mix.load = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_mix_rejected() {
        let mut p = profile();
        p.mix = ClassMix {
            int_alu: 0.0,
            int_mul: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.0,
            store: 0.0,
            branch: 0.0,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_dep_mean_rejected() {
        let mut p = profile();
        p.dep_mean = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_locality_rejected() {
        let mut p = profile();
        p.locality = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn tiny_footprint_rejected() {
        let mut p = profile();
        p.data_bytes = 8;
        assert!(p.validate().is_err());
    }
}

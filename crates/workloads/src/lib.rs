//! # workloads — synthetic benchmark models for the SMT simulator
//!
//! The paper evaluates the SOS scheduler on SPEC95 INT/FP programs, NAS
//! Parallel Benchmarks, and a hand-coded parallel-prefix program (ARRAY).
//! We do not have those binaries or traces, so this crate provides
//! *parameterized synthetic instruction streams* whose statistics match the
//! qualitative characterization of each benchmark: instruction-class mix,
//! intrinsic ILP (dependency-distance distribution), branch-site count and
//! predictability, cache working-set size and locality, and slow phase
//! modulation. Every stream is deterministic given its seed.
//!
//! * [`profile`] — the parameter set describing one benchmark.
//! * [`synth`] — the generator turning a profile into an
//!   [`smtsim::InstructionSource`].
//! * [`spec`] — named profiles for every benchmark in the paper's Table 1.
//! * [`parallel`] — multithreaded jobs with barrier synchronization (ARRAY
//!   and its loosely-synchronizing variant; `mt_EP`, `mt_ARRAY`).
//! * [`phased`] — strongly phased jobs (alternating behavioural profiles),
//!   the workload class §9 anticipates beyond SPEC/NPB.
//! * [`recorded`] — capture/replay of instruction traces (regression
//!   fixtures; an entry point for real program traces).
//! * [`jobmix`] — the exact jobmixes of Table 1, keyed by experiment.
//!
//! ## Example
//!
//! ```
//! use workloads::spec::Benchmark;
//! use smtsim::{MachineConfig, Processor};
//!
//! let mut cpu = Processor::new(MachineConfig::alpha21264_like(2));
//! let mut fp = Benchmark::Fp.stream(smtsim::StreamId(0), 42);
//! let mut gcc = Benchmark::Gcc.stream(smtsim::StreamId(1), 43);
//! let stats = cpu.run_timeslice(&mut [&mut *fp, &mut *gcc], 20_000);
//! assert!(stats.total_committed() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod jobmix;
pub mod parallel;
pub mod phased;
pub mod profile;
pub mod recorded;
pub mod spec;
pub mod synth;

pub use jobmix::JobSpec;
pub use parallel::ParallelJob;
pub use phased::PhasedStream;
pub use profile::{BenchProfile, ClassMix};
pub use recorded::{RecordedTrace, TracePlayer};
pub use spec::Benchmark;
pub use synth::SyntheticStream;

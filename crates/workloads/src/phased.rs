//! Strongly phased workloads.
//!
//! §9 of the paper observes that the SPEC and NPB benchmarks have stable
//! resource-utilization profiles, and that "other workloads will experience
//! more phased behavior" — which is what makes resampling worthwhile. A
//! [`PhasedStream`] models such a program: it alternates between distinct
//! behavioural phases (each a full [`SyntheticStream`] with its own profile,
//! code region, and data region), switching every `phase_len` instructions —
//! like a compiler alternating parsing, optimization, and code generation.

use crate::profile::BenchProfile;
use crate::synth::SyntheticStream;
use smtsim::trace::{Fetch, InstructionSource, StreamId};

/// A job that cycles through several behavioural phases.
pub struct PhasedStream {
    phases: Vec<SyntheticStream>,
    phase_len: u64,
    active: usize,
    emitted: u64,
    limit: Option<u64>,
}

impl PhasedStream {
    /// Builds a phased job from the given per-phase profiles, switching every
    /// `phase_len` instructions. All phases share the stream id (they are one
    /// program) but use distinct code/data placements.
    ///
    /// # Panics
    /// Panics if `profiles` is empty, `phase_len == 0`, or any profile fails
    /// validation.
    pub fn new(profiles: Vec<BenchProfile>, phase_len: u64, id: StreamId, seed: u64) -> Self {
        assert!(
            !profiles.is_empty(),
            "a phased job needs at least one phase"
        );
        assert!(phase_len > 0, "phase length must be positive");
        let phases = profiles
            .into_iter()
            .enumerate()
            .map(|(i, p)| SyntheticStream::new(p, id, seed.wrapping_add(0x9e37 * (i as u64 + 1))))
            .collect();
        PhasedStream {
            phases,
            phase_len,
            active: 0,
            emitted: 0,
            limit: None,
        }
    }

    /// Restricts the job to `n` total instructions.
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Index of the currently active phase.
    pub fn active_phase(&self) -> usize {
        self.active
    }

    /// Total instructions emitted across all phases.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether a limited job has finished.
    pub fn is_finished(&self) -> bool {
        self.limit.is_some_and(|l| self.emitted >= l)
    }
}

impl InstructionSource for PhasedStream {
    fn next_instr(&mut self) -> Fetch {
        if self.is_finished() {
            return Fetch::Finished;
        }
        let phase_idx = (self.emitted / self.phase_len) as usize % self.phases.len();
        self.active = phase_idx;
        let f = self.phases[phase_idx].next_instr();
        if matches!(f, Fetch::Instr(_)) {
            self.emitted += 1;
        }
        f
    }

    fn id(&self) -> StreamId {
        self.phases[0].id()
    }

    /// Fast-forward across phase boundaries: the skip is split into chunks
    /// that each stay inside one phase, delegating to the per-phase streams'
    /// O(1) skip, so a multi-million-instruction skip costs O(phases
    /// crossed).
    fn skip_instructions(&mut self, mut n: u64) {
        if let Some(l) = self.limit {
            n = n.min(l.saturating_sub(self.emitted));
        }
        while n > 0 {
            let idx = (self.emitted / self.phase_len) as usize % self.phases.len();
            self.active = idx;
            let within = self.emitted % self.phase_len;
            let chunk = (self.phase_len - within).min(n);
            self.phases[idx].skip_instructions(chunk);
            self.emitted += chunk;
            n -= chunk;
        }
    }
}

impl std::fmt::Debug for PhasedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedStream")
            .field("phases", &self.phases.len())
            .field("phase_len", &self.phase_len)
            .field("active", &self.active)
            .field("emitted", &self.emitted)
            .finish()
    }
}

/// A ready-made strongly-phased job: alternates between a compute-bound
/// FP phase (EP-like) and a branchy integer phase (GCC-like) every
/// `phase_len` instructions.
pub fn fp_int_alternator(phase_len: u64, id: StreamId, seed: u64) -> PhasedStream {
    let fp = crate::spec::Benchmark::Ep.profile();
    let int = crate::spec::Benchmark::Gcc.profile();
    PhasedStream::new(vec![fp, int], phase_len, id, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim::trace::InstrClass;

    fn fp_fraction(instrs: &[smtsim::Instr]) -> f64 {
        let fp = instrs.iter().filter(|i| i.class.is_fp()).count();
        fp as f64 / instrs.len() as f64
    }

    fn drain(s: &mut PhasedStream, n: usize) -> Vec<smtsim::Instr> {
        (0..n).filter_map(|_| s.next_instr().instr()).collect()
    }

    #[test]
    fn phases_alternate_on_schedule() {
        let mut s = fp_int_alternator(1_000, StreamId(0), 5);
        let first = drain(&mut s, 1_000);
        assert_eq!(s.active_phase(), 0);
        let second = drain(&mut s, 1_000);
        assert_eq!(s.active_phase(), 1);
        // The FP phase is FP-heavy, the integer phase has no FP at all.
        assert!(
            fp_fraction(&first) > 0.3,
            "fp phase: {}",
            fp_fraction(&first)
        );
        assert_eq!(fp_fraction(&second), 0.0, "int phase must be integer-only");
    }

    #[test]
    fn phases_cycle_back() {
        let mut s = fp_int_alternator(100, StreamId(0), 5);
        let _ = drain(&mut s, 200);
        let third = drain(&mut s, 100);
        assert_eq!(s.active_phase(), 0, "wraps back to the first phase");
        assert!(fp_fraction(&third) > 0.3);
    }

    #[test]
    fn limit_finishes() {
        let mut s = fp_int_alternator(50, StreamId(0), 5).with_limit(120);
        let got = drain(&mut s, 500);
        assert_eq!(got.len(), 120);
        assert!(s.is_finished());
        assert_eq!(s.next_instr(), Fetch::Finished);
    }

    #[test]
    fn each_phase_resumes_where_it_left_off() {
        // Phase streams keep their own position: returning to phase 0 should
        // not replay the exact same instructions.
        let mut s = fp_int_alternator(100, StreamId(0), 5);
        let a = drain(&mut s, 100);
        let _ = drain(&mut s, 100);
        let b = drain(&mut s, 100);
        assert_ne!(a, b, "second visit to phase 0 continues, not restarts");
    }

    #[test]
    fn deterministic() {
        let mut a = fp_int_alternator(77, StreamId(2), 9);
        let mut b = fp_int_alternator(77, StreamId(2), 9);
        assert_eq!(drain(&mut a, 500), drain(&mut b, 500));
    }

    #[test]
    fn skip_crosses_phase_boundaries() {
        let mut s = fp_int_alternator(100, StreamId(0), 5).with_limit(1_000);
        // Skip one and a half phases: lands 50 into phase 1 (integer).
        s.skip_instructions(150);
        assert_eq!(s.emitted(), 150);
        let instrs = drain(&mut s, 50);
        assert_eq!(s.active_phase(), 1);
        assert_eq!(
            fp_fraction(&instrs),
            0.0,
            "must resume inside the int phase"
        );
        // Skipping past the limit clamps and finishes.
        s.skip_instructions(10_000);
        assert_eq!(s.emitted(), 1_000);
        assert!(s.is_finished());
        assert_eq!(s.next_instr(), Fetch::Finished);
    }

    #[test]
    fn skip_is_deterministic() {
        let mut a = fp_int_alternator(77, StreamId(2), 9);
        let mut b = fp_int_alternator(77, StreamId(2), 9);
        a.skip_instructions(1_234);
        b.skip_instructions(1_234);
        assert_eq!(drain(&mut a, 500), drain(&mut b, 500));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedStream::new(vec![], 10, StreamId(0), 1);
    }

    #[test]
    fn classes_match_phase_profiles() {
        // During the integer phase no FP instruction may appear.
        let mut s = fp_int_alternator(500, StreamId(0), 3);
        let _ = drain(&mut s, 500);
        let int_phase = drain(&mut s, 500);
        assert!(int_phase.iter().all(|i| !matches!(
            i.class,
            InstrClass::FpAdd | InstrClass::FpMul | InstrClass::FpDiv
        )));
    }
}

//! Named benchmark models: the programs of the paper's Table 1.
//!
//! Each profile is a synthetic stand-in whose statistics follow the
//! qualitative characterization of the original program (see DESIGN.md for
//! the substitution rationale): *fpppp* has enormous basic blocks of
//! high-ILP FP code and a tiny data set; *gcc* and *go* are branchy,
//! low-ILP integer codes; *swim* streams through a large array working set;
//! *IS* (NPB integer sort) scatters through a huge footprint; *EP* is
//! compute-bound and cache-resident; and so on.

use crate::profile::{BenchProfile, ClassMix};
use crate::synth::SyntheticStream;
use serde::{Deserialize, Serialize};
use smtsim::trace::StreamId;

/// The benchmarks used in the paper's experiments.
///
/// `Fp` is SPEC95 *fpppp* and `Mg` is *mgrid*, as in the paper's Table 1
/// caption. `Array` is the hand-coded parallel-prefix program; its tightly-
/// and loosely-synchronizing variants are selected when building a
/// [`crate::parallel::ParallelJob`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Fp,
    Mg,
    Wave,
    Swim,
    Su2cor,
    Turb3d,
    Gcc,
    Go,
    Is,
    Cg,
    Ep,
    Ft,
    Array,
}

impl Benchmark {
    /// Every benchmark, in a fixed order.
    pub const ALL: [Benchmark; 13] = [
        Benchmark::Fp,
        Benchmark::Mg,
        Benchmark::Wave,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Turb3d,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Is,
        Benchmark::Cg,
        Benchmark::Ep,
        Benchmark::Ft,
        Benchmark::Array,
    ];

    /// The paper's name for the benchmark.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Fp => "FP",
            Benchmark::Mg => "MG",
            Benchmark::Wave => "WAVE",
            Benchmark::Swim => "SWIM",
            Benchmark::Su2cor => "SU2COR",
            Benchmark::Turb3d => "TURB3D",
            Benchmark::Gcc => "GCC",
            Benchmark::Go => "GO",
            Benchmark::Is => "IS",
            Benchmark::Cg => "CG",
            Benchmark::Ep => "EP",
            Benchmark::Ft => "FT",
            Benchmark::Array => "ARRAY",
        }
    }

    /// Parses the paper's name (case-insensitive).
    pub fn parse(s: &str) -> Option<Benchmark> {
        let up = s.trim().to_ascii_uppercase();
        Benchmark::ALL.into_iter().find(|b| b.name() == up)
    }

    /// The synthetic profile modeling this benchmark.
    pub fn profile(self) -> BenchProfile {
        match self {
            // fpppp: enormous basic blocks of high-ILP FP code, tiny data set.
            Benchmark::Fp => BenchProfile {
                name: "fpppp".into(),
                mix: ClassMix {
                    int_alu: 0.18,
                    int_mul: 0.01,
                    fp_add: 0.28,
                    fp_mul: 0.24,
                    fp_div: 0.02,
                    load: 0.17,
                    store: 0.07,
                    branch: 0.03,
                },
                dep_mean: 8.0,
                branch_sites: 512,
                branch_predictability: 0.98,
                code_bytes: 48 << 10,
                data_bytes: 96 << 10,
                locality: 0.95,
                hot_fraction: 0.083,
                streaming: false,
                phase_period: 120_000,
                phase_amplitude: 0.10,
            },
            // mgrid: streaming multigrid stencil, moderate footprint.
            Benchmark::Mg => BenchProfile {
                name: "mgrid".into(),
                mix: ClassMix {
                    int_alu: 0.16,
                    int_mul: 0.01,
                    fp_add: 0.25,
                    fp_mul: 0.20,
                    fp_div: 0.01,
                    load: 0.25,
                    store: 0.07,
                    branch: 0.05,
                },
                dep_mean: 6.0,
                branch_sites: 512,
                branch_predictability: 0.97,
                code_bytes: 12 << 10,
                data_bytes: 3 << 20,
                locality: 0.80,
                hot_fraction: 0.0026,
                streaming: true,
                phase_period: 90_000,
                phase_amplitude: 0.20,
            },
            // wave5: FP particle/field code, medium footprint.
            Benchmark::Wave => BenchProfile {
                name: "wave5".into(),
                mix: ClassMix {
                    int_alu: 0.22,
                    int_mul: 0.01,
                    fp_add: 0.20,
                    fp_mul: 0.16,
                    fp_div: 0.01,
                    load: 0.24,
                    store: 0.09,
                    branch: 0.07,
                },
                dep_mean: 6.0,
                branch_sites: 800,
                branch_predictability: 0.95,
                code_bytes: 32 << 10,
                data_bytes: 1 << 20,
                locality: 0.85,
                hot_fraction: 0.008,
                streaming: true,
                phase_period: 70_000,
                phase_amplitude: 0.25,
            },
            // swim: shallow-water model, large streaming arrays, memory bound.
            Benchmark::Swim => BenchProfile {
                name: "swim".into(),
                mix: ClassMix {
                    int_alu: 0.12,
                    int_mul: 0.01,
                    fp_add: 0.22,
                    fp_mul: 0.18,
                    fp_div: 0.01,
                    load: 0.30,
                    store: 0.12,
                    branch: 0.04,
                },
                dep_mean: 6.0,
                branch_sites: 256,
                branch_predictability: 0.97,
                code_bytes: 8 << 10,
                data_bytes: 8 << 20,
                locality: 0.75,
                hot_fraction: 0.001,
                streaming: true,
                phase_period: 100_000,
                phase_amplitude: 0.15,
            },
            // su2cor: quantum physics FP code, moderate ILP.
            Benchmark::Su2cor => BenchProfile {
                name: "su2cor".into(),
                mix: ClassMix {
                    int_alu: 0.22,
                    int_mul: 0.02,
                    fp_add: 0.18,
                    fp_mul: 0.15,
                    fp_div: 0.02,
                    load: 0.26,
                    store: 0.08,
                    branch: 0.07,
                },
                dep_mean: 4.5,
                branch_sites: 700,
                branch_predictability: 0.94,
                code_bytes: 40 << 10,
                data_bytes: 2 << 20,
                locality: 0.85,
                hot_fraction: 0.004,
                streaming: false,
                phase_period: 60_000,
                phase_amplitude: 0.30,
            },
            // turb3d: turbulence FFT code, mixed int/FP.
            Benchmark::Turb3d => BenchProfile {
                name: "turb3d".into(),
                mix: ClassMix {
                    int_alu: 0.26,
                    int_mul: 0.02,
                    fp_add: 0.19,
                    fp_mul: 0.14,
                    fp_div: 0.01,
                    load: 0.21,
                    store: 0.09,
                    branch: 0.08,
                },
                dep_mean: 5.5,
                branch_sites: 600,
                branch_predictability: 0.94,
                code_bytes: 24 << 10,
                data_bytes: 1536 << 10,
                locality: 0.85,
                hot_fraction: 0.005,
                streaming: true,
                phase_period: 50_000,
                phase_amplitude: 0.30,
            },
            // gcc: big branchy integer code, large instruction footprint.
            Benchmark::Gcc => BenchProfile {
                name: "gcc".into(),
                mix: ClassMix {
                    int_alu: 0.44,
                    int_mul: 0.01,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.24,
                    store: 0.10,
                    branch: 0.16,
                },
                dep_mean: 2.8,
                branch_sites: 3000,
                branch_predictability: 0.88,
                code_bytes: 192 << 10,
                data_bytes: 512 << 10,
                locality: 0.88,
                hot_fraction: 0.016,
                streaming: false,
                phase_period: 40_000,
                phase_amplitude: 0.20,
            },
            // go: the branchiest SPEC95 integer code; poor predictability.
            Benchmark::Go => BenchProfile {
                name: "go".into(),
                mix: ClassMix {
                    int_alu: 0.47,
                    int_mul: 0.01,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.21,
                    store: 0.08,
                    branch: 0.18,
                },
                dep_mean: 2.3,
                branch_sites: 4000,
                branch_predictability: 0.72,
                code_bytes: 64 << 10,
                data_bytes: 256 << 10,
                locality: 0.90,
                hot_fraction: 0.031,
                streaming: false,
                phase_period: 30_000,
                phase_amplitude: 0.15,
            },
            // IS: NPB integer sort, huge scattered footprint, memory bound.
            Benchmark::Is => BenchProfile {
                name: "is".into(),
                mix: ClassMix {
                    int_alu: 0.36,
                    int_mul: 0.01,
                    fp_add: 0.0,
                    fp_mul: 0.0,
                    fp_div: 0.0,
                    load: 0.33,
                    store: 0.17,
                    branch: 0.08,
                },
                dep_mean: 4.5,
                branch_sites: 300,
                branch_predictability: 0.95,
                code_bytes: 8 << 10,
                data_bytes: 16 << 20,
                locality: 0.90,
                hot_fraction: 0.0005,
                streaming: false,
                phase_period: 80_000,
                phase_amplitude: 0.10,
            },
            // CG: NPB conjugate gradient, irregular sparse-matrix accesses.
            Benchmark::Cg => BenchProfile {
                name: "cg".into(),
                mix: ClassMix {
                    int_alu: 0.28,
                    int_mul: 0.01,
                    fp_add: 0.16,
                    fp_mul: 0.13,
                    fp_div: 0.01,
                    load: 0.30,
                    store: 0.05,
                    branch: 0.06,
                },
                dep_mean: 4.5,
                branch_sites: 400,
                branch_predictability: 0.94,
                code_bytes: 12 << 10,
                data_bytes: 8 << 20,
                locality: 0.88,
                hot_fraction: 0.001,
                streaming: false,
                phase_period: 60_000,
                phase_amplitude: 0.15,
            },
            // EP: NPB embarrassingly parallel — compute bound, cache resident.
            Benchmark::Ep => BenchProfile {
                name: "ep".into(),
                mix: ClassMix {
                    int_alu: 0.24,
                    int_mul: 0.02,
                    fp_add: 0.25,
                    fp_mul: 0.25,
                    fp_div: 0.04,
                    load: 0.11,
                    store: 0.03,
                    branch: 0.06,
                },
                dep_mean: 7.0,
                branch_sites: 200,
                branch_predictability: 0.97,
                code_bytes: 8 << 10,
                data_bytes: 64 << 10,
                locality: 0.95,
                hot_fraction: 0.125,
                streaming: false,
                phase_period: 150_000,
                phase_amplitude: 0.05,
            },
            // FT: NPB 3-D FFT, large strided footprint.
            Benchmark::Ft => BenchProfile {
                name: "ft".into(),
                mix: ClassMix {
                    int_alu: 0.18,
                    int_mul: 0.02,
                    fp_add: 0.23,
                    fp_mul: 0.22,
                    fp_div: 0.01,
                    load: 0.21,
                    store: 0.08,
                    branch: 0.05,
                },
                dep_mean: 6.0,
                branch_sites: 350,
                branch_predictability: 0.96,
                code_bytes: 16 << 10,
                data_bytes: 4 << 20,
                locality: 0.80,
                hot_fraction: 0.002,
                streaming: true,
                phase_period: 70_000,
                phase_amplitude: 0.25,
            },
            // ARRAY: hand-coded parallel prefix over an array.
            Benchmark::Array => BenchProfile {
                name: "array".into(),
                mix: ClassMix {
                    int_alu: 0.26,
                    int_mul: 0.0,
                    fp_add: 0.22,
                    fp_mul: 0.08,
                    fp_div: 0.0,
                    load: 0.27,
                    store: 0.12,
                    branch: 0.05,
                },
                dep_mean: 5.0,
                branch_sites: 64,
                branch_predictability: 0.97,
                code_bytes: 4 << 10,
                data_bytes: 2 << 20,
                locality: 0.75,
                hot_fraction: 0.004,
                streaming: true,
                phase_period: 0,
                phase_amplitude: 0.0,
            },
        }
    }

    /// Builds a single-threaded synthetic stream of this benchmark.
    pub fn stream(self, id: StreamId, seed: u64) -> Box<SyntheticStream> {
        Box::new(SyntheticStream::new(self.profile(), id, seed))
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            b.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn parse_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()), Some(b));
            assert_eq!(Benchmark::parse(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::parse("nonesuch"), None);
    }

    #[test]
    fn integer_codes_have_no_fp() {
        for b in [Benchmark::Gcc, Benchmark::Go, Benchmark::Is] {
            assert_eq!(b.profile().mix.fp_fraction(), 0.0, "{b}");
        }
    }

    #[test]
    fn fp_codes_are_fp_heavy() {
        for b in [Benchmark::Fp, Benchmark::Mg, Benchmark::Swim, Benchmark::Ep] {
            assert!(b.profile().mix.fp_fraction() > 0.3, "{b}");
        }
    }

    #[test]
    fn footprints_are_diverse() {
        let small = Benchmark::Fp.profile().data_bytes;
        let large = Benchmark::Is.profile().data_bytes;
        assert!(large > 50 * small, "IS must dwarf fpppp's working set");
    }
}

//! Seeded arrival-trace generation, shared by the batch open system
//! ([`crate::opensys`]) and the serving-layer load generator (`sos-loadgen`
//! in the bench crate).
//!
//! The trace is a *pure function of the spec* — in particular of its seed —
//! so two schedulers (or a load generator and an offline replay) can be fed
//! byte-identical workloads. Job lengths are drawn in solo-execution cycles
//! (`Exp(T)`) and converted to instructions at each benchmark's solo IPC,
//! which the caller provides per benchmark (pass a unit map to keep lengths
//! in cycles).

use crate::dist::Exponential;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use workloads::spec::Benchmark;

/// The benchmarks open-system jobs are drawn from (the single-threaded jobs
/// of Table 1).
pub const JOB_KINDS: [Benchmark; 12] = [
    Benchmark::Fp,
    Benchmark::Mg,
    Benchmark::Wave,
    Benchmark::Swim,
    Benchmark::Su2cor,
    Benchmark::Turb3d,
    Benchmark::Gcc,
    Benchmark::Go,
    Benchmark::Is,
    Benchmark::Cg,
    Benchmark::Ep,
    Benchmark::Ft,
];

/// One generated job (before execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobArrival {
    /// Arrival time in cycles.
    pub arrival: u64,
    /// Which benchmark the job runs.
    pub benchmark: Benchmark,
    /// Job length in instructions.
    pub instructions: u64,
    /// Whether the job is strongly phased (see
    /// [`crate::opensys::OpenSystemConfig::phased_fraction`]).
    #[serde(default)]
    pub phased: bool,
}

/// Everything the arrival process depends on: the generated trace is a pure
/// function of this spec (plus the caller's solo-IPC map).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTraceSpec {
    /// Mean interarrival time in cycles (the paper's λ).
    pub mean_interarrival: u64,
    /// Mean job length in solo-execution cycles (the paper's `T`, scaled).
    pub mean_job_cycles: u64,
    /// Jobs to generate.
    pub num_jobs: usize,
    /// Fraction of arriving jobs that are strongly phased.
    pub phased_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A generated arrival trace: jobs in nondecreasing arrival order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// The spec the trace was generated from.
    pub spec: ArrivalTraceSpec,
    /// The jobs, in arrival order.
    pub jobs: Vec<JobArrival>,
}

impl ArrivalTrace {
    /// Generates the trace for a spec: exponential interarrivals, a uniform
    /// job-kind draw over [`JOB_KINDS`], and `Exp(T)`-cycle lengths converted
    /// to instructions at the benchmark's solo IPC from `solo` (missing
    /// benchmarks fall back to IPC 1.0, i.e. instructions = cycles).
    ///
    /// # Panics
    /// Panics if `mean_interarrival` or `mean_job_cycles` is zero (the
    /// exponential mean must be positive).
    pub fn generate(spec: &ArrivalTraceSpec, solo: &HashMap<Benchmark, f64>) -> Self {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let inter = Exponential::with_mean(spec.mean_interarrival as f64);
        let length = Exponential::with_mean(spec.mean_job_cycles as f64);
        let mut t = 0u64;
        let mut jobs = Vec::with_capacity(spec.num_jobs);
        for _ in 0..spec.num_jobs {
            t += inter.sample_cycles(&mut rng);
            let benchmark = JOB_KINDS[rng.gen_range(0..JOB_KINDS.len())];
            let cycles = length.sample_cycles(&mut rng);
            let ipc = solo.get(&benchmark).copied().unwrap_or(1.0);
            let instructions = ((cycles as f64 * ipc) as u64).max(1_000);
            let phased = spec.phased_fraction > 0.0 && rng.gen_bool(spec.phased_fraction.min(1.0));
            jobs.push(JobArrival {
                arrival: t,
                benchmark,
                instructions,
                phased,
            });
        }
        ArrivalTrace {
            spec: spec.clone(),
            jobs,
        }
    }

    /// Generates a trace whose job lengths stay in solo cycles (unit IPC for
    /// every benchmark) — the form `sos-loadgen` replays, leaving the
    /// cycles-to-instructions conversion to the serving side's calibration.
    pub fn generate_in_cycles(spec: &ArrivalTraceSpec) -> Self {
        Self::generate(spec, &HashMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::parallel_map_with_workers;

    fn spec() -> ArrivalTraceSpec {
        ArrivalTraceSpec {
            mean_interarrival: 30_000,
            mean_job_cycles: 60_000,
            num_jobs: 40,
            phased_fraction: 0.25,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn same_seed_same_trace_across_runs() {
        let a = ArrivalTrace::generate_in_cycles(&spec());
        let b = ArrivalTrace::generate_in_cycles(&spec());
        assert_eq!(a, b);
        assert!(a.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.jobs.len(), 40);
    }

    #[test]
    fn same_seed_same_trace_across_thread_counts() {
        // Generation must not depend on ambient parallelism: generating the
        // same trace concurrently from many workers yields identical bytes.
        let serial = ArrivalTrace::generate_in_cycles(&spec());
        for workers in [1usize, 2, 8] {
            let copies = parallel_map_with_workers(vec![(); 8], workers, |_| {
                ArrivalTrace::generate_in_cycles(&spec())
            });
            for c in copies {
                assert_eq!(c, serial, "trace diverged at {workers} workers");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalTrace::generate_in_cycles(&spec());
        let mut other = spec();
        other.seed ^= 1;
        let b = ArrivalTrace::generate_in_cycles(&other);
        assert_ne!(a, b);
    }

    #[test]
    fn solo_map_scales_lengths() {
        let fast: HashMap<Benchmark, f64> = JOB_KINDS.iter().map(|&b| (b, 2.0)).collect();
        let unit = ArrivalTrace::generate_in_cycles(&spec());
        let scaled = ArrivalTrace::generate(&spec(), &fast);
        for (u, s) in unit.jobs.iter().zip(scaled.jobs.iter()) {
            assert_eq!(u.arrival, s.arrival);
            assert_eq!(u.benchmark, s.benchmark);
            // 2× IPC ⇒ 2× instructions for the same cycle budget (up to the
            // shared 1000-instruction floor).
            if u.instructions > 1_000 {
                assert_eq!(s.instructions, (u.instructions as f64 * 2.0) as u64);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let t = ArrivalTrace::generate_in_cycles(&spec());
        let json = serde_json::to_string(&t).expect("serializes");
        let back: ArrivalTrace = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, t);
    }
}

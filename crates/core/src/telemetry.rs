//! Zero-dependency telemetry: metrics, an event stream, and trace export.
//!
//! This module gives every layer of the reproduction a common place to report
//! what it is doing, without changing any API signature: a process-wide
//! [`Recorder`] (disabled by default, one relaxed atomic load on the fast
//! path) collects
//!
//! * **metrics** — named counters, gauges, and log2-bucket [`Histogram`]s in
//!   a [`MetricRegistry`], exportable as JSONL;
//! * **events** — a time-stamped [`Event`] stream of spans
//!   (`SpanStart`/`SpanEnd`), instants, and counter samples, exportable as
//!   JSONL or as Chrome `trace_event` JSON loadable in Perfetto
//!   (<https://ui.perfetto.dev>).
//!
//! Timestamps are *simulated cycles* on a global clock. The
//! [`TelemetryObserver`] (an [`smtsim::Observer`] bridge) advances the clock
//! as timeslices retire; open-system code re-syncs it with
//! [`set_clock`] since it already tracks global simulated time. For export,
//! cycles are converted to microseconds at [`TRACE_CLOCK_MHZ`].
//!
//! ## Usage
//!
//! ```
//! use sos_core::telemetry::{self, Attr};
//!
//! telemetry::reset();
//! telemetry::enable();
//! {
//!     let _span = telemetry::span("scheduler", "demo.phase", vec![]);
//!     telemetry::counter_add("demo.widgets", 3);
//!     telemetry::instant("scheduler", "demo.tick", vec![Attr::num("n", 1.0)]);
//! }
//! let snapshot = telemetry::drain();
//! telemetry::disable();
//! assert_eq!(snapshot.events.len(), 3); // span start + instant + span end
//! assert!(snapshot.chrome_trace_json().contains("traceEvents"));
//! ```

use serde::{Deserialize, Serialize};
use smtsim::counters::Resource;
use smtsim::observe::{Observer, StageOccupancy};
use smtsim::TimesliceStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Simulated clock rate assumed when converting cycles to trace time:
/// 500 MHz (a late-90s Alpha 21264), i.e. 500 cycles per microsecond.
pub const TRACE_CLOCK_MHZ: u64 = 500;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What kind of moment an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventPhase {
    /// A span (nested duration) opens.
    SpanStart,
    /// The most recent open span with the same track and name closes.
    SpanEnd,
    /// A point event.
    Instant,
    /// A sampled numeric series (rendered as a counter track in Perfetto).
    Counter,
}

/// One structured attribute on an [`Event`]: a key with a numeric and/or
/// text value. (A struct of two `Option`s rather than an enum keeps the
/// type friendly to minimal serde derives and to JSONL readers.)
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Attr {
    /// Attribute name.
    pub key: String,
    /// Numeric value, if any.
    pub num: Option<f64>,
    /// Text value, if any.
    pub text: Option<String>,
}

impl Attr {
    /// A numeric attribute.
    pub fn num(key: impl Into<String>, value: f64) -> Attr {
        Attr {
            key: key.into(),
            num: Some(value),
            text: None,
        }
    }

    /// A text attribute.
    pub fn text(key: impl Into<String>, value: impl Into<String>) -> Attr {
        Attr {
            key: key.into(),
            num: None,
            text: Some(value.into()),
        }
    }
}

/// One telemetry event on the global simulated-cycle timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global simulated-cycle timestamp.
    pub ts_cycles: u64,
    /// Span/instant/counter discriminator.
    pub phase: EventPhase,
    /// Logical track (rendered as a Perfetto thread): `"smtsim"`,
    /// `"scheduler"`, `"opensys"`, ...
    pub track: String,
    /// Low-cardinality event name, e.g. `"sos.sample_phase"`.
    pub name: String,
    /// Structured details.
    pub attrs: Vec<Attr>,
}

/// Serializes events as JSONL (one JSON object per line).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("event serializes"));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A histogram over `u64` values with logarithmic (power-of-two) buckets.
///
/// Bucket `0` counts zeros; bucket `i > 0` counts values `v` with
/// `2^(i-1) <= v < 2^i`. 65 buckets cover the full `u64` range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see type docs for bucket boundaries).
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; 65],
        }
    }
}

impl Histogram {
    /// Bucket index for `value`.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the lower bound of the bucket
    /// containing the `q`-th ordered value.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_lower_bound(i);
            }
        }
        Self::bucket_lower_bound(64)
    }

    /// The p50/p95/p99 summary of the recorded distribution, from
    /// [`approx_quantile`](Self::approx_quantile) (so each value is the
    /// lower bound of its log2 bucket — a floor, not an interpolation).
    /// All fields are `NaN` when the histogram is empty, matching
    /// [`crate::report::percentiles`] on empty input.
    pub fn percentile_summary(&self) -> crate::report::Percentiles {
        if self.count == 0 {
            return crate::report::Percentiles {
                p50: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
            };
        }
        crate::report::Percentiles {
            p50: self.approx_quantile(0.50) as f64,
            p95: self.approx_quantile(0.95) as f64,
            p99: self.approx_quantile(0.99) as f64,
        }
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Discriminates [`Metric`] payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic `u64` sum.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// Log2-bucket distribution.
    Histogram,
}

/// A named metric snapshot: exactly one of the payload fields is set,
/// matching `kind`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name, e.g. `"smtsim.cycles"`.
    pub name: String,
    /// Payload discriminator.
    pub kind: MetricKind,
    /// Counter value (when `kind == Counter`).
    pub counter: Option<u64>,
    /// Gauge value (when `kind == Gauge`).
    pub gauge: Option<f64>,
    /// Histogram value (when `kind == Histogram`).
    pub histogram: Option<Histogram>,
}

#[derive(Clone)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A registry of named counters, gauges, and histograms.
///
/// Writes with a kind different from the name's existing kind are ignored
/// rather than panicking (telemetry must never take the simulation down).
#[derive(Default)]
pub struct MetricRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricRegistry {
            metrics: BTreeMap::new(),
        }
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let MetricValue::Counter(c) = self
            .metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            *c += delta;
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let MetricValue::Gauge(g) = self
            .metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge(0.0))
        {
            *g = value;
        }
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn histogram_record(&mut self, name: &str, value: u64) {
        if let MetricValue::Histogram(h) = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::default()))
        {
            h.record(value);
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<Metric> {
        self.metrics
            .iter()
            .map(|(name, v)| match v {
                MetricValue::Counter(c) => Metric {
                    name: name.clone(),
                    kind: MetricKind::Counter,
                    counter: Some(*c),
                    gauge: None,
                    histogram: None,
                },
                MetricValue::Gauge(g) => Metric {
                    name: name.clone(),
                    kind: MetricKind::Gauge,
                    counter: None,
                    gauge: Some(*g),
                    histogram: None,
                },
                MetricValue::Histogram(h) => Metric {
                    name: name.clone(),
                    kind: MetricKind::Histogram,
                    counter: None,
                    gauge: None,
                    histogram: Some(h.clone()),
                },
            })
            .collect()
    }

    fn clear(&mut self) {
        self.metrics.clear();
    }
}

/// Serializes metrics as JSONL (one metric object per line, sorted by name).
pub fn metrics_to_jsonl(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        out.push_str(&serde_json::to_string(m).expect("metric serializes"));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// The global recorder
// ---------------------------------------------------------------------------

struct RecorderInner {
    events: Vec<Event>,
    registry: MetricRegistry,
    clock_cycles: u64,
}

/// A telemetry collector: an enable flag, an event buffer, a metric
/// registry, and a simulated-cycle clock.
///
/// The process-wide instance behind the module-level free functions is the
/// normal way to use this; the type is public so tests and embedders can
/// run isolated recorders.
pub struct Recorder {
    enabled: AtomicBool,
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    /// A disabled recorder with an empty buffer and registry.
    pub const fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(RecorderInner {
                events: Vec::new(),
                registry: MetricRegistry::new(),
                clock_cycles: 0,
            }),
        }
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording (buffered data is kept until [`Recorder::drain`] or
    /// [`Recorder::reset`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on. This is the fast path every probe checks
    /// first: a single relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clears events, metrics, and the clock (the enable flag is untouched).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.registry.clear();
        inner.clock_cycles = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        // Telemetry must keep working even if a panicking test poisoned the
        // lock; the data is append-mostly and stays structurally valid.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current simulated-cycle clock.
    pub fn clock(&self) -> u64 {
        self.lock().clock_cycles
    }

    /// Sets the clock (used by code that tracks global simulated time).
    pub fn set_clock(&self, cycles: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().clock_cycles = cycles;
    }

    /// Advances the clock by `cycles`.
    pub fn advance_clock(&self, cycles: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.clock_cycles += cycles;
    }

    fn push_at(
        &self,
        ts_cycles: u64,
        phase: EventPhase,
        track: &str,
        name: &str,
        attrs: Vec<Attr>,
    ) {
        let mut inner = self.lock();
        inner.events.push(Event {
            ts_cycles,
            phase,
            track: track.to_string(),
            name: name.to_string(),
            attrs,
        });
    }

    fn push(&self, phase: EventPhase, track: &str, name: &str, attrs: Vec<Attr>) {
        let mut inner = self.lock();
        let ts = inner.clock_cycles;
        inner.events.push(Event {
            ts_cycles: ts,
            phase,
            track: track.to_string(),
            name: name.to_string(),
            attrs,
        });
    }

    /// Emits a [`EventPhase::SpanStart`] at the current clock.
    pub fn span_start(&self, track: &str, name: &str, attrs: Vec<Attr>) {
        if self.is_enabled() {
            self.push(EventPhase::SpanStart, track, name, attrs);
        }
    }

    /// Emits a [`EventPhase::SpanEnd`] at the current clock.
    pub fn span_end(&self, track: &str, name: &str) {
        if self.is_enabled() {
            self.push(EventPhase::SpanEnd, track, name, Vec::new());
        }
    }

    /// Emits an [`EventPhase::Instant`] at the current clock.
    pub fn instant(&self, track: &str, name: &str, attrs: Vec<Attr>) {
        if self.is_enabled() {
            self.push(EventPhase::Instant, track, name, attrs);
        }
    }

    /// Emits an [`EventPhase::Counter`] sample at an explicit timestamp
    /// (e.g. occupancy sampled mid-timeslice, before the clock advances).
    pub fn counter_sample_at(&self, ts_cycles: u64, track: &str, name: &str, attrs: Vec<Attr>) {
        if self.is_enabled() {
            self.push_at(ts_cycles, EventPhase::Counter, track, name, attrs);
        }
    }

    /// Adds to a named counter metric.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.is_enabled() {
            self.lock().registry.counter_add(name, delta);
        }
    }

    /// Sets a named gauge metric.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.is_enabled() {
            self.lock().registry.gauge_set(name, value);
        }
    }

    /// Records into a named histogram metric.
    pub fn histogram_record(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.lock().registry.histogram_record(name, value);
        }
    }

    /// Takes the buffered events and a metric snapshot, clearing both (the
    /// clock and enable flag are untouched).
    pub fn drain(&self) -> Snapshot {
        let mut inner = self.lock();
        let events = std::mem::take(&mut inner.events);
        let metrics = inner.registry.snapshot();
        inner.registry.clear();
        Snapshot { events, metrics }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

static GLOBAL: Recorder = Recorder::new();

/// The process-wide recorder behind the module-level free functions.
pub fn global() -> &'static Recorder {
    &GLOBAL
}

/// Starts recording on the global recorder.
pub fn enable() {
    GLOBAL.enable()
}

/// Stops recording on the global recorder.
pub fn disable() {
    GLOBAL.disable()
}

/// Whether global recording is on.
#[inline]
pub fn is_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Clears the global recorder's events, metrics, and clock.
pub fn reset() {
    GLOBAL.reset()
}

/// The global simulated-cycle clock.
pub fn clock() -> u64 {
    GLOBAL.clock()
}

/// Sets the global clock.
pub fn set_clock(cycles: u64) {
    GLOBAL.set_clock(cycles)
}

/// Advances the global clock.
pub fn advance_clock(cycles: u64) {
    GLOBAL.advance_clock(cycles)
}

/// Emits a span-start event (see [`span`] for the RAII form).
pub fn span_start(track: &str, name: &str, attrs: Vec<Attr>) {
    GLOBAL.span_start(track, name, attrs)
}

/// Emits a span-end event.
pub fn span_end(track: &str, name: &str) {
    GLOBAL.span_end(track, name)
}

/// Emits an instant event.
pub fn instant(track: &str, name: &str, attrs: Vec<Attr>) {
    GLOBAL.instant(track, name, attrs)
}

/// Emits a counter sample at an explicit timestamp.
pub fn counter_sample_at(ts_cycles: u64, track: &str, name: &str, attrs: Vec<Attr>) {
    GLOBAL.counter_sample_at(ts_cycles, track, name, attrs)
}

/// Adds to a global counter metric.
pub fn counter_add(name: &str, delta: u64) {
    GLOBAL.counter_add(name, delta)
}

/// Sets a global gauge metric.
pub fn gauge_set(name: &str, value: f64) {
    GLOBAL.gauge_set(name, value)
}

/// Records into a global histogram metric.
pub fn histogram_record(name: &str, value: u64) {
    GLOBAL.histogram_record(name, value)
}

/// Drains the global recorder.
pub fn drain() -> Snapshot {
    GLOBAL.drain()
}

/// An RAII span on the global recorder: emits `SpanStart` on creation and
/// `SpanEnd` on drop, so spans close on every exit path.
///
/// Track and name are `'static` by design — span names should be
/// low-cardinality; put per-instance details in `attrs`.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    track: &'static str,
    name: &'static str,
}

/// Opens a span on the global recorder, closed when the guard drops.
pub fn span(track: &'static str, name: &'static str, attrs: Vec<Attr>) -> SpanGuard {
    span_start(track, name, attrs);
    SpanGuard { track, name }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        span_end(self.track, self.name);
    }
}

// ---------------------------------------------------------------------------
// Snapshot and export
// ---------------------------------------------------------------------------

/// Everything drained from a recorder: the event stream and a metric
/// snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Buffered events in emission order.
    pub events: Vec<Event>,
    /// Metric snapshot, sorted by name.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Events as JSONL.
    pub fn events_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// Metrics as JSONL.
    pub fn metrics_jsonl(&self) -> String {
        metrics_to_jsonl(&self.metrics)
    }

    /// The event stream as Chrome `trace_event` JSON (object format), with
    /// cycles converted to microseconds at [`TRACE_CLOCK_MHZ`]. Loadable in
    /// Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        serde_json::to_string_pretty(&chrome_trace_value(&self.events)).expect("trace serializes")
    }
}

fn attr_to_json(attr: &Attr) -> (String, serde::Value) {
    let value = match (&attr.num, &attr.text) {
        (Some(n), _) => serde_json::to_value(n).expect("f64 serializes"),
        (None, Some(t)) => serde::Value::String(t.clone()),
        (None, None) => serde::Value::Null,
    };
    (attr.key.clone(), value)
}

/// Builds the Chrome `trace_event` JSON value for an event stream.
///
/// Layout: one process (`pid` 1), one Perfetto thread per distinct event
/// track (named via `thread_name` metadata events), `ph` values `B`/`E`
/// for spans, `i` for instants, and `C` for counter samples.
pub fn chrome_trace_value(events: &[Event]) -> serde::Value {
    let mut tracks: Vec<&str> = Vec::new();
    for e in events {
        if !tracks.iter().any(|t| *t == e.track) {
            tracks.push(&e.track);
        }
    }
    let tid_of =
        |track: &str| -> u64 { tracks.iter().position(|t| *t == track).unwrap_or(0) as u64 + 1 };

    let mut trace_events: Vec<serde::Value> = Vec::new();
    // Thread-name metadata first, one per track.
    for track in &tracks {
        trace_events.push(serde::Value::Object(vec![
            ("name".into(), serde::Value::String("thread_name".into())),
            ("ph".into(), serde::Value::String("M".into())),
            ("pid".into(), serde_json::to_value(&1u64).unwrap()),
            ("tid".into(), serde_json::to_value(&tid_of(track)).unwrap()),
            (
                "args".into(),
                serde::Value::Object(vec![(
                    "name".into(),
                    serde::Value::String((*track).to_string()),
                )]),
            ),
        ]));
    }

    for e in events {
        let ts_us = e.ts_cycles as f64 / TRACE_CLOCK_MHZ as f64;
        let ph = match e.phase {
            EventPhase::SpanStart => "B",
            EventPhase::SpanEnd => "E",
            EventPhase::Instant => "i",
            EventPhase::Counter => "C",
        };
        let mut obj: Vec<(String, serde::Value)> = vec![
            ("name".into(), serde::Value::String(e.name.clone())),
            ("cat".into(), serde::Value::String(e.track.clone())),
            ("ph".into(), serde::Value::String(ph.into())),
            ("ts".into(), serde_json::to_value(&ts_us).unwrap()),
            ("pid".into(), serde_json::to_value(&1u64).unwrap()),
            (
                "tid".into(),
                serde_json::to_value(&tid_of(&e.track)).unwrap(),
            ),
        ];
        if e.phase == EventPhase::Instant {
            // Thread-scoped instant.
            obj.push(("s".into(), serde::Value::String("t".into())));
        }
        if !e.attrs.is_empty() {
            obj.push((
                "args".into(),
                serde::Value::Object(e.attrs.iter().map(attr_to_json).collect()),
            ));
        }
        trace_events.push(serde::Value::Object(obj));
    }

    serde::Value::Object(vec![
        ("traceEvents".into(), serde::Value::Array(trace_events)),
        ("displayTimeUnit".into(), serde::Value::String("ms".into())),
        (
            "otherData".into(),
            serde::Value::Object(vec![(
                "clockMHz".into(),
                serde_json::to_value(&TRACE_CLOCK_MHZ).unwrap(),
            )]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// The smtsim bridge observer
// ---------------------------------------------------------------------------

/// Bridges [`smtsim::Observer`] pipeline probes into the global recorder:
///
/// * timeslices become `smtsim.timeslice` spans and advance the global
///   clock;
/// * per-cycle conflict events are aggregated locally (no lock in the cycle
///   loop) and flushed as `smtsim.conflict_cycles.<resource>` counters at
///   the timeslice boundary;
/// * sampled [`StageOccupancy`] snapshots become `C` (counter-track) events
///   with the pipeline-structure occupancies.
#[derive(Debug, Default)]
pub struct TelemetryObserver {
    /// Global clock at the current timeslice's cycle 0.
    base_cycle: u64,
    /// Conflict cycles this timeslice, indexed like [`Resource::ALL`].
    conflict_cycles: [u64; 7],
}

impl TelemetryObserver {
    /// A fresh bridge observer.
    pub fn new() -> Self {
        TelemetryObserver::default()
    }
}

impl Observer for TelemetryObserver {
    fn timeslice_start(&mut self, threads: usize, cycles: u64) {
        self.base_cycle = clock();
        self.conflict_cycles = [0; 7];
        span_start(
            "smtsim",
            "smtsim.timeslice",
            vec![
                Attr::num("threads", threads as f64),
                Attr::num("cycles", cycles as f64),
            ],
        );
    }

    fn conflict_cycle(&mut self, _cycle: u64, resource: Resource) {
        let idx = Resource::ALL
            .iter()
            .position(|&r| r == resource)
            .expect("resource in ALL");
        self.conflict_cycles[idx] += 1;
    }

    fn stage_occupancy(&mut self, occ: &StageOccupancy) {
        counter_sample_at(
            self.base_cycle + occ.cycle,
            "smtsim",
            "smtsim.occupancy",
            vec![
                Attr::num("decode", occ.decode as f64),
                Attr::num("int_queue", occ.int_queue as f64),
                Attr::num("fp_queue", occ.fp_queue as f64),
                Attr::num("int_regs", occ.int_regs_in_use as f64),
                Attr::num("fp_regs", occ.fp_regs_in_use as f64),
                Attr::num("inflight", occ.inflight as f64),
            ],
        );
    }

    fn timeslice_end(&mut self, stats: &TimesliceStats) {
        advance_clock(stats.cycles);
        counter_add("smtsim.cycles", stats.cycles);
        counter_add("smtsim.timeslices", 1);
        let committed = stats.total_committed();
        counter_add("smtsim.committed", committed);
        histogram_record("smtsim.timeslice_committed", committed);
        for (i, &r) in Resource::ALL.iter().enumerate() {
            if self.conflict_cycles[i] > 0 {
                counter_add(
                    &format!("smtsim.conflict_cycles.{r}"),
                    self.conflict_cycles[i],
                );
            }
        }
        span_end("smtsim", "smtsim.timeslice");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes global-recorder tests: the test harness runs threads in
    /// parallel and the recorder is process-wide.
    pub(crate) static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::new();
        r.span_start("t", "a", vec![]);
        r.counter_add("c", 5);
        r.advance_clock(100);
        let snap = r.drain();
        assert!(snap.events.is_empty());
        assert!(snap.metrics.is_empty());
        assert_eq!(r.clock(), 0);
    }

    #[test]
    fn recorder_buffers_events_and_metrics() {
        let r = Recorder::new();
        r.enable();
        r.advance_clock(50);
        r.span_start("track", "phase", vec![Attr::text("k", "v")]);
        r.advance_clock(25);
        r.instant("track", "tick", vec![Attr::num("n", 2.0)]);
        r.span_end("track", "phase");
        r.counter_add("jobs", 2);
        r.counter_add("jobs", 3);
        r.gauge_set("load", 0.75);
        r.histogram_record("lat", 100);
        r.histogram_record("lat", 3_000);

        let snap = r.drain();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].ts_cycles, 50);
        assert_eq!(snap.events[1].ts_cycles, 75);
        assert_eq!(snap.events[0].phase, EventPhase::SpanStart);
        assert_eq!(snap.events[2].phase, EventPhase::SpanEnd);

        assert_eq!(snap.metrics.len(), 3);
        let jobs = snap.metrics.iter().find(|m| m.name == "jobs").unwrap();
        assert_eq!(jobs.counter, Some(5));
        let load = snap.metrics.iter().find(|m| m.name == "load").unwrap();
        assert_eq!(load.gauge, Some(0.75));
        let lat = snap.metrics.iter().find(|m| m.name == "lat").unwrap();
        let h = lat.histogram.as_ref().unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 3_100);

        // Drained: a second drain is empty.
        assert!(r.drain().events.is_empty());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4..8
        assert_eq!(h.buckets[4], 1); // 8..16
        assert_eq!(h.buckets[11], 1); // 1024..2048
        assert_eq!(h.count, 8);
        assert_eq!(Histogram::bucket_lower_bound(11), 1024);
        assert!(h.approx_quantile(0.0) <= h.approx_quantile(1.0));
    }

    #[test]
    fn histogram_percentile_summary() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(100); // bucket lower bound 64
        }
        h.record(1 << 20);
        let p = h.percentile_summary();
        assert_eq!(p.p50, 64.0);
        assert_eq!(p.p95, 64.0);
        // The single outlier is the 100th value: p99 still lands in the
        // dense bucket, and the summary is monotone.
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        let empty = Histogram::default().percentile_summary();
        assert!(empty.p50.is_nan() && empty.p95.is_nan() && empty.p99.is_nan());
    }

    #[test]
    fn histogram_merge_adds_observations() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(10);
        b.record(100);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 111);
    }

    #[test]
    fn registry_ignores_kind_mismatches() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("x", 1);
        reg.gauge_set("x", 9.0); // ignored: x is a counter
        reg.histogram_record("x", 4); // ignored
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].kind, MetricKind::Counter);
        assert_eq!(snap[0].counter, Some(1));
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let _l = locked();
        reset();
        enable();
        {
            let _g = span("scheduler", "outer", vec![]);
            instant("scheduler", "mid", vec![]);
        }
        disable();
        let snap = drain();
        let phases: Vec<EventPhase> = snap.events.iter().map(|e| e.phase).collect();
        assert_eq!(
            phases,
            vec![
                EventPhase::SpanStart,
                EventPhase::Instant,
                EventPhase::SpanEnd
            ]
        );
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let events = vec![
            Event {
                ts_cycles: 1_000,
                phase: EventPhase::SpanStart,
                track: "scheduler".into(),
                name: "phase".into(),
                attrs: vec![Attr::text("spec", "Jsb(6,3,3)")],
            },
            Event {
                ts_cycles: 1_500,
                phase: EventPhase::Counter,
                track: "smtsim".into(),
                name: "occupancy".into(),
                attrs: vec![Attr::num("int_queue", 12.0)],
            },
            Event {
                ts_cycles: 2_000,
                phase: EventPhase::SpanEnd,
                track: "scheduler".into(),
                name: "phase".into(),
                attrs: vec![],
            },
        ];
        let value = chrome_trace_value(&events);
        let top = value.as_object().unwrap();
        let trace_events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .unwrap()
            .1
            .as_array()
            .unwrap();
        // 2 thread_name metadata + 3 events.
        assert_eq!(trace_events.len(), 5);
        let get = |v: &serde::Value, k: &str| v.get(k).cloned().unwrap();
        // Metadata first.
        assert_eq!(get(&trace_events[0], "ph").as_str(), Some("M"));
        // Span start: ph B, ts in µs at 500 cycles/µs.
        let b = &trace_events[2];
        assert_eq!(get(b, "ph").as_str(), Some("B"));
        assert_eq!(get(b, "ts").as_f64(), Some(2.0));
        // Tracks map to distinct tids.
        assert_ne!(
            get(&trace_events[2], "tid").as_u64(),
            get(&trace_events[3], "tid").as_u64()
        );
    }

    #[test]
    fn jsonl_round_trips_events_and_metrics() {
        let e = Event {
            ts_cycles: 42,
            phase: EventPhase::Instant,
            track: "opensys".into(),
            name: "arrival".into(),
            attrs: vec![Attr::num("job", 3.0), Attr::text("bench", "gcc")],
        };
        let line = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e);

        let mut h = Histogram::default();
        h.record(77);
        let m = Metric {
            name: "lat".into(),
            kind: MetricKind::Histogram,
            counter: None,
            gauge: None,
            histogram: Some(h),
        };
        let line = serde_json::to_string(&m).unwrap();
        let back: Metric = serde_json::from_str(&line).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn telemetry_observer_bridges_pipeline_events() {
        use smtsim::{MachineConfig, Processor};

        struct Alu {
            pc: u64,
        }
        impl smtsim::trace::InstructionSource for Alu {
            fn next_instr(&mut self) -> smtsim::Fetch {
                self.pc += 4;
                smtsim::Fetch::Instr(smtsim::Instr::int_alu(self.pc, 0))
            }
            fn id(&self) -> smtsim::StreamId {
                smtsim::StreamId(0)
            }
        }

        let _l = locked();
        reset();
        enable();
        let mut p = Processor::new(MachineConfig::alpha21264_like(2));
        p.set_observer(Box::new(TelemetryObserver::new()));
        p.set_occupancy_interval(500);
        let mut job = Alu { pc: 0 };
        let _ = p.run_timeslice(&mut [&mut job], 2_000);
        let _ = p.run_timeslice(&mut [&mut job], 2_000);
        disable();
        let snap = drain();

        assert_eq!(clock() % 4_000, 0);
        let starts = snap
            .events
            .iter()
            .filter(|e| e.name == "smtsim.timeslice" && e.phase == EventPhase::SpanStart)
            .count();
        assert_eq!(starts, 2);
        // Second timeslice's span starts at the advanced clock.
        let start_ts: Vec<u64> = snap
            .events
            .iter()
            .filter(|e| e.name == "smtsim.timeslice" && e.phase == EventPhase::SpanStart)
            .map(|e| e.ts_cycles)
            .collect();
        assert_eq!(start_ts, vec![0, 2_000]);
        // Occupancy counter samples: 4 per slice (cycles 0, 500, 1000, 1500).
        let occ = snap
            .events
            .iter()
            .filter(|e| e.name == "smtsim.occupancy")
            .count();
        assert_eq!(occ, 8);
        let cycles = snap
            .metrics
            .iter()
            .find(|m| m.name == "smtsim.cycles")
            .unwrap();
        assert_eq!(cycles.counter, Some(4_000));
        reset();
    }
}

//! The SOS scheduler: Sample, Optimize, Symbios (§5).
//!
//! SOS "begins to run jobs in groups equal to the multithreading level, using
//! some fair policy ... it permutes the schedule periodically, changing the
//! jobs that are coscheduled" (the *sample* phase), then "picks one that it
//! thinks will be optimal and proceeds to run it in the *symbios* phase."
//!
//! [`SosScheduler::evaluate_experiment`] reproduces the paper's evaluation
//! protocol: sample up to 10 distinct schedules, predict the best with every
//! predictor, then run *all* candidates through a full symbios phase to see
//! how they actually perform (validating the predictions, as in Figures 2
//! and 3).

use crate::cache::{self, SymbiosEval};
use crate::enumerate::sample_distinct;
use crate::experiment::{ExperimentSpec, SAMPLE_SCHEDULES};
use crate::job::JobPool;
use crate::learn::{self, LearnConfig, Learner};
use crate::predictor::PredictorKind;
use crate::runner::{RotationStats, Runner};
use crate::sample::{sample_schedules, ScheduleSample};
use crate::schedule::Schedule;
use crate::telemetry::{self, Attr};
use crate::ws::SoloRates;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smtsim::MachineConfig;

/// Configuration for an SOS run.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SosConfig {
    /// Predictor used to pick the symbios schedule (the paper's best is
    /// `Score`).
    pub predictor: PredictorKind,
    /// Candidate schedules profiled in the sample phase.
    pub sample_schedules: usize,
    /// Rotations each candidate is profiled for (the paper uses the minimum:
    /// one full rotation).
    pub rotations_per_sample: usize,
    /// Divisor applied to the paper's cycle counts (1 = paper scale; the
    /// default experiment harness uses 1000 to keep runs laptop-sized —
    /// see DESIGN.md, substitution 3).
    pub cycle_scale: u64,
    /// Warm-up/measure windows for solo-IPC calibration, in scaled cycles.
    pub calibration_cycles: u64,
    /// RNG seed (schedule sampling and workload construction).
    pub seed: u64,
    /// Learned-prediction configuration ([`crate::learn`]); `None` (the
    /// default) disables learning entirely, leaving every existing output
    /// byte-identical.
    #[serde(default)]
    pub learn: Option<LearnConfig>,
}

impl Default for SosConfig {
    fn default() -> Self {
        SosConfig {
            predictor: PredictorKind::Score,
            sample_schedules: SAMPLE_SCHEDULES,
            // The paper profiles each schedule for one rotation of 5M-cycle
            // timeslices; at reduced cycle scale a single rotation is far
            // noisier, so we profile three to compensate (still a small
            // fraction of the symbios phase).
            rotations_per_sample: 3,
            cycle_scale: 1000,
            calibration_cycles: 60_000,
            seed: 0x0505,
            learn: None,
        }
    }
}

/// The result of evaluating one experiment with the paper's protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// The experiment configuration.
    pub spec: ExperimentSpec,
    /// Paper notation of each candidate schedule.
    pub candidates: Vec<String>,
    /// Sample-phase counter condensates, one per candidate.
    pub samples: Vec<ScheduleSample>,
    /// True weighted speedup of each candidate over its symbios phase.
    pub symbios_ws: Vec<f64>,
    /// The candidate index each predictor picked from the samples.
    pub picks: Vec<(PredictorKind, usize)>,
    /// Weighted speedup *observed during the sample phase* for each
    /// candidate (an oracle upper bound on counter-based prediction: it
    /// measures the target quantity directly, which a real scheduler could
    /// also do given solo rates).
    pub sample_ws: Vec<f64>,
    /// Solo (single-threaded) IPC per schedulable thread.
    pub solo: Vec<f64>,
}

impl ExperimentReport {
    /// Best symbios weighted speedup among the candidates.
    pub fn best_ws(&self) -> f64 {
        self.symbios_ws
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Worst symbios weighted speedup among the candidates.
    pub fn worst_ws(&self) -> f64 {
        self.symbios_ws
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean symbios weighted speedup — "the expected throughput that an
    /// oblivious jobscheduler would obtain."
    pub fn average_ws(&self) -> f64 {
        self.symbios_ws.iter().sum::<f64>() / self.symbios_ws.len().max(1) as f64
    }

    /// Index of the candidate with the best *sample-phase observed* WS.
    pub fn oracle_pick(&self) -> usize {
        crate::predictor::argmax(&self.sample_ws)
    }

    /// The symbios WS achieved by running the candidate whose sampled WS was
    /// best (the sampling-oracle scheduler).
    pub fn oracle_ws(&self) -> f64 {
        self.symbios_ws[self.oracle_pick()]
    }

    /// The symbios WS achieved when scheduling with `predictor`.
    pub fn ws_with(&self, predictor: PredictorKind) -> f64 {
        let idx = self
            .picks
            .iter()
            .find(|(p, _)| *p == predictor)
            .map(|(_, i)| *i)
            .expect("predictor evaluated");
        self.symbios_ws[idx]
    }
}

/// The SOS scheduler entry points.
pub struct SosScheduler;

impl SosScheduler {
    /// Draws the candidate schedules for an experiment (distinct, exhaustive
    /// when the space is at most the sample budget).
    pub fn candidates(spec: &ExperimentSpec, cfg: &SosConfig) -> Vec<Schedule> {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        sample_distinct(
            spec.jobs,
            spec.smt,
            spec.swap,
            cfg.sample_schedules,
            &mut rng,
        )
    }

    /// Runs the sample phase over the given candidates.
    pub fn sample_phase(
        runner: &mut Runner,
        candidates: &[Schedule],
        cfg: &SosConfig,
    ) -> Vec<ScheduleSample> {
        sample_schedules(runner, candidates, cfg.rotations_per_sample)
    }

    /// Runs a symbios phase of at least `cycles` cycles on `schedule`,
    /// returning the measured weighted speedup.
    pub fn symbios_phase(
        runner: &mut Runner,
        schedule: &Schedule,
        cycles: u64,
        solo: &SoloRates,
    ) -> f64 {
        let rotation_cycles = schedule.slices_per_rotation() as u64 * runner.timeslice();
        let rotations = (cycles / rotation_cycles).max(1) as usize;
        let rots = runner.run_schedule(schedule, rotations);
        let total_cycles: u64 = rots.iter().map(|r| r.cycles()).sum();
        let mut committed = vec![0u64; solo.len()];
        for rot in &rots {
            for (t, c) in rot.committed_per_thread(solo.len()).iter().enumerate() {
                committed[t] += c;
            }
        }
        crate::ws::weighted_speedup(&committed, total_cycles, solo)
    }

    /// A fresh runner for one pure evaluation stage: new pool, new
    /// processor, telemetry attached when enabled. Every stage of
    /// [`Self::evaluate_experiment`] starts from this state, which is what
    /// makes each stage a pure function of `(spec, cfg, schedule)` — the
    /// property the evaluation cache and the parallel candidate evaluation
    /// both rely on.
    fn fresh_runner(spec: &ExperimentSpec, cfg: &SosConfig) -> Runner {
        let pool = JobPool::from_specs(&spec.jobmix(), cfg.seed);
        let timeslice = spec.timeslice(cfg.cycle_scale);
        let mut runner = Runner::new(MachineConfig::alpha21264_like(spec.smt), pool, timeslice);
        if telemetry::is_enabled() {
            runner.attach_telemetry();
        }
        runner
    }

    /// Stable machine-config hash for this experiment's processor (the
    /// machine component of every cache key).
    fn machine_hash(spec: &ExperimentSpec) -> u64 {
        MachineConfig::alpha21264_like(spec.smt).stable_hash()
    }

    /// Calibrates the solo (single-threaded) IPC of every pool thread, as a
    /// pure function of `(spec, cfg)`, memoized through
    /// [`cache::solo_rates`] when the cache is enabled.
    pub fn calibrate(spec: &ExperimentSpec, cfg: &SosConfig) -> SoloRates {
        let key = cache::solo_key(
            Self::machine_hash(spec),
            &spec.label(),
            cfg.seed,
            cfg.calibration_cycles,
            cfg.calibration_cycles,
        );
        cache::solo_rates(&key, || {
            Self::fresh_runner(spec, cfg)
                .calibrate_solo(cfg.calibration_cycles, cfg.calibration_cycles)
        })
    }

    /// Profiles one candidate on a fresh runner: one unrecorded warm-up
    /// rotation (so the schedule does not pay the whole memory-system cold
    /// start; the paper starts its benchmarks partially executed for the
    /// same reason), then `rotations_per_sample` recorded rotations.
    /// Memoized through [`cache::sample_rotations`].
    pub fn sample_candidate(
        spec: &ExperimentSpec,
        cfg: &SosConfig,
        schedule: &Schedule,
    ) -> Vec<RotationStats> {
        let rotations = cfg.rotations_per_sample.max(1);
        let key = cache::sample_key(
            Self::machine_hash(spec),
            &spec.label(),
            cfg.seed,
            &cache::schedule_key(schedule),
            spec.timeslice(cfg.cycle_scale),
            rotations,
        );
        cache::sample_rotations(&key, || {
            let mut runner = Self::fresh_runner(spec, cfg);
            let _ = runner.run_schedule(schedule, 1);
            runner.run_schedule(schedule, rotations)
        })
    }

    /// Runs one candidate's symbios phase of at least `cycles` cycles on a
    /// fresh runner (after one unrecorded warm-up rotation), returning the
    /// phase totals. Memoized through [`cache::symbios`].
    pub fn symbios_candidate(
        spec: &ExperimentSpec,
        cfg: &SosConfig,
        schedule: &Schedule,
        cycles: u64,
    ) -> SymbiosEval {
        let key = cache::symbios_key(
            Self::machine_hash(spec),
            &spec.label(),
            cfg.seed,
            &cache::schedule_key(schedule),
            spec.timeslice(cfg.cycle_scale),
            cycles,
        );
        cache::symbios(&key, || {
            let mut runner = Self::fresh_runner(spec, cfg);
            let _ = runner.run_schedule(schedule, 1);
            let threads = runner.pool().len();
            let rotation_cycles = schedule.slices_per_rotation() as u64 * runner.timeslice();
            let rotations = (cycles / rotation_cycles).max(1) as usize;
            let rots = runner.run_schedule(schedule, rotations);
            let total_cycles: u64 = rots.iter().map(RotationStats::cycles).sum();
            let mut committed = vec![0u64; threads];
            for rot in &rots {
                for (t, c) in rot.committed_per_thread(threads).iter().enumerate() {
                    committed[t] += c;
                }
            }
            SymbiosEval {
                committed,
                cycles: total_cycles,
            }
        })
    }

    /// The paper's full evaluation protocol for one experiment: calibrate
    /// solo IPCs, sample candidates, record every predictor's pick, then run
    /// each candidate through a symbios phase and measure its true WS.
    ///
    /// Candidates are evaluated concurrently ([`Self::
    /// evaluate_experiment_with_workers`] with an automatic worker count);
    /// every candidate stage runs on its own fresh runner and results are
    /// merged in input order, so the report is byte-identical across worker
    /// counts.
    pub fn evaluate_experiment(spec: &ExperimentSpec, cfg: &SosConfig) -> ExperimentReport {
        Self::evaluate_experiment_with_workers(spec, cfg, 0)
    }

    /// [`Self::evaluate_experiment`] with an explicit worker count for the
    /// candidate fan-out (`0` = [`std::thread::available_parallelism`]).
    /// When telemetry is enabled the count is forced to 1: the event stream
    /// is ordered by a global simulated clock, and byte-stable traces
    /// require serial evaluation.
    pub fn evaluate_experiment_with_workers(
        spec: &ExperimentSpec,
        cfg: &SosConfig,
        workers: usize,
    ) -> ExperimentReport {
        let _experiment_span = telemetry::span(
            "scheduler",
            "sos.experiment",
            vec![Attr::text("spec", spec.to_string())],
        );
        let stats_before = cache::stats();
        let solo = {
            let _span = telemetry::span("scheduler", "sos.calibrate", vec![]);
            Self::calibrate(spec, cfg)
        };
        let candidates = Self::candidates(spec, cfg);
        telemetry::counter_add("sos.experiments", 1);
        telemetry::counter_add("sos.candidates_sampled", candidates.len() as u64);
        let workers = if telemetry::is_enabled() {
            1
        } else if workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            workers
        };

        let mut samples = Vec::with_capacity(candidates.len());
        let mut sample_ws = Vec::with_capacity(candidates.len());
        {
            let _span = telemetry::span(
                "scheduler",
                "sos.sample_phase",
                vec![Attr::num("candidates", candidates.len() as f64)],
            );
            let rotations =
                crate::par::parallel_map_with_workers(candidates.clone(), workers, |schedule| {
                    let _candidate_span = telemetry::span(
                        "scheduler",
                        "sos.sample_candidate",
                        vec![Attr::text("schedule", schedule.paper_notation())],
                    );
                    Self::sample_candidate(spec, cfg, &schedule)
                });
            for (schedule, rots) in candidates.iter().zip(&rotations) {
                samples.push(crate::sample::ScheduleSample::from_rotations(
                    schedule, rots,
                ));
                let cycles: u64 = rots.iter().map(RotationStats::cycles).sum();
                let mut committed = vec![0u64; solo.len()];
                for rot in rots {
                    for (t, c) in rot.committed_per_thread(solo.len()).iter().enumerate() {
                        committed[t] += c;
                    }
                }
                let ws = crate::ws::weighted_speedup(&committed, cycles, &solo);
                telemetry::instant(
                    "scheduler",
                    "sos.sample_result",
                    vec![
                        Attr::text("schedule", schedule.paper_notation()),
                        Attr::num("ws", ws),
                    ],
                );
                sample_ws.push(ws);
            }
        }

        let picks: Vec<(PredictorKind, usize)> = PredictorKind::ALL
            .iter()
            .map(|&p| {
                let pick = p.choose(&samples);
                if telemetry::is_enabled() {
                    let scores = p.scores(&samples);
                    let mut attrs = vec![
                        Attr::text("predictor", p.name()),
                        Attr::num("pick", pick as f64),
                        Attr::text("schedule", candidates[pick].paper_notation()),
                    ];
                    for (i, s) in scores.iter().enumerate() {
                        attrs.push(Attr::num(format!("score.{i}"), *s));
                    }
                    telemetry::instant("scheduler", "sos.predictor_decision", attrs);
                }
                (p, pick)
            })
            .collect();

        let symbios_cycles = spec.symbios_cycles(cfg.cycle_scale);
        let symbios_evals =
            crate::par::parallel_map_with_workers(candidates.clone(), workers, |s| {
                let _span = telemetry::span(
                    "scheduler",
                    "sos.symbios_phase",
                    vec![Attr::text("schedule", s.paper_notation())],
                );
                Self::symbios_candidate(spec, cfg, &s, symbios_cycles)
            });
        let symbios_ws: Vec<f64> = candidates
            .iter()
            .zip(&symbios_evals)
            .map(|(s, ev)| {
                let ws = crate::ws::weighted_speedup(&ev.committed, ev.cycles, &solo);
                telemetry::instant(
                    "scheduler",
                    "sos.symbios_result",
                    vec![
                        Attr::text("schedule", s.paper_notation()),
                        Attr::num("ws", ws),
                    ],
                );
                ws
            })
            .collect();
        telemetry::gauge_set("sos.best_ws", {
            symbios_ws.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        });
        if cache::is_enabled() {
            let after = cache::stats();
            telemetry::counter_add(
                "sos.cache.hits",
                after.hits.saturating_sub(stats_before.hits),
            );
            telemetry::counter_add(
                "sos.cache.misses",
                after.misses.saturating_sub(stats_before.misses),
            );
        }

        ExperimentReport {
            spec: *spec,
            candidates: candidates.iter().map(Schedule::paper_notation).collect(),
            samples,
            symbios_ws,
            picks,
            sample_ws,
            solo: solo.as_slice().to_vec(),
        }
    }

    /// The coarse jobmix-class context string of an experiment (the bandit's
    /// context; see [`learn::context_of`]).
    pub fn experiment_context(spec: &ExperimentSpec) -> String {
        let benches: Vec<workloads::Benchmark> =
            spec.jobmix().iter().map(|j| j.benchmark).collect();
        learn::context_of(&benches)
    }

    /// [`Self::evaluate_experiment_with_workers`] plus the learned
    /// predictors: appends `Learned` and `Bandit` picks to the report and
    /// advances `learner` prequentially — both picks are made with the model
    /// state *before* this experiment's outcomes are folded in, so a sweep
    /// over many experiments measures honest online performance.
    ///
    /// Training targets are the candidates' *sample-phase realized WS*
    /// (`sample_ws`): the quantity the sampling oracle reads directly, which
    /// a production scheduler also observes given solo rates. The bandit
    /// gets *full-information* feedback — the symbios phase measures every
    /// candidate schedule, so each arm's counterfactual pick has a realized
    /// symbios WS; all eleven are booked, with the pull and regret accounted
    /// against the chosen arm. Rewards are the league metric itself,
    /// `(ws − avg) / avg` — the fractional gain over the oblivious-average
    /// expectation — so an arm's mean reward *is* its league standing.
    /// Phase difficulty varies far more across experiments than the arms
    /// differ within one, but full information books every arm on the same
    /// phases, so that variance is common-mode and cancels when arm means
    /// are compared.
    pub fn evaluate_experiment_learned(
        spec: &ExperimentSpec,
        cfg: &SosConfig,
        learner: &mut Learner,
        workers: usize,
    ) -> ExperimentReport {
        let mut report = Self::evaluate_experiment_with_workers(spec, cfg, workers);
        let context = Self::experiment_context(spec);
        let learned_pick = learner.choose_learned(&report.samples);
        let (arm, bandit_pick) = learner.choose_bandit(&report.samples, &context);
        report.picks.push((PredictorKind::Learned, learned_pick));
        report.picks.push((PredictorKind::Bandit, bandit_pick));
        learner.train(&report.samples, &report.sample_ws);
        let avg = report.average_ws();
        if avg > 0.0 {
            let rewards: Vec<f64> = learn::arms()
                .iter()
                .map(|&kind| {
                    let pick = match kind {
                        PredictorKind::Learned => learned_pick,
                        fixed => fixed.choose(&report.samples),
                    };
                    (report.symbios_ws[pick] - avg) / avg
                })
                .collect();
            learner.reward_all(&context, &rewards, arm);
        }
        telemetry::instant(
            "scheduler",
            "learn.decision",
            vec![
                Attr::text("spec", spec.to_string()),
                Attr::text("context", context),
                Attr::text("arm", learn::arms()[arm].name()),
                Attr::num("learned_pick", learned_pick as f64),
                Attr::num("bandit_pick", bandit_pick as f64),
                Attr::num("train_updates", learner.train_updates() as f64),
                Attr::num("err_ewma", learner.err_ewma()),
                Attr::num("bandit_regret", learner.bandit().total_regret()),
            ],
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SosConfig {
        SosConfig {
            cycle_scale: 20_000, // tiny slices: fast tests
            calibration_cycles: 15_000,
            ..SosConfig::default()
        }
    }

    #[test]
    fn evaluate_small_experiment_end_to_end() {
        let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
        let report = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
        assert_eq!(
            report.candidates.len(),
            3,
            "Jsb(4,2,2) has only 3 schedules"
        );
        assert_eq!(report.samples.len(), 3);
        assert_eq!(report.symbios_ws.len(), 3);
        assert_eq!(report.picks.len(), PredictorKind::ALL.len());
        assert_eq!(report.sample_ws.len(), 3);
        let oracle = report.oracle_ws();
        assert!(oracle >= report.worst_ws() - 1e-12 && oracle <= report.best_ws() + 1e-12);
        assert!(report.best_ws() >= report.average_ws());
        assert!(report.average_ws() >= report.worst_ws());
        assert!(report.worst_ws() > 0.0);
        for p in PredictorKind::ALL {
            let ws = report.ws_with(p);
            assert!(ws >= report.worst_ws() - 1e-12 && ws <= report.best_ws() + 1e-12);
        }
    }

    #[test]
    fn candidates_are_distinct_and_capped() {
        let spec: ExperimentSpec = "Jsb(8,4,1)".parse().unwrap();
        let cands = SosScheduler::candidates(&spec, &SosConfig::default());
        assert_eq!(cands.len(), 10);
        let keys: std::collections::HashSet<_> =
            cands.iter().map(Schedule::canonical_key).collect();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
        let a = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
        let b = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
        assert_eq!(a.symbios_ws, b.symbios_ws);
        assert_eq!(a.picks, b.picks);
    }

    #[test]
    fn learned_evaluation_appends_picks_and_trains() {
        let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
        let cfg = quick_cfg();
        let mut learner = Learner::new(LearnConfig::default());
        let report = SosScheduler::evaluate_experiment_learned(&spec, &cfg, &mut learner, 0);
        assert_eq!(report.picks.len(), PredictorKind::ALL.len() + 2);
        let lw = report.ws_with(PredictorKind::Learned);
        let bw = report.ws_with(PredictorKind::Bandit);
        assert!(lw >= report.worst_ws() - 1e-12 && lw <= report.best_ws() + 1e-12);
        assert!(bw >= report.worst_ws() - 1e-12 && bw <= report.best_ws() + 1e-12);
        // One training update per candidate, one bandit pull.
        assert_eq!(learner.train_updates(), report.samples.len() as u64);
        assert_eq!(learner.bandit().total_pulls(), 1);
        // The base report (first ten picks, WS vectors) is unchanged by the
        // learned pass.
        let base = SosScheduler::evaluate_experiment(&spec, &cfg);
        assert_eq!(report.symbios_ws, base.symbios_ws);
        assert_eq!(&report.picks[..PredictorKind::ALL.len()], &base.picks[..]);
    }

    #[test]
    fn learned_evaluation_is_deterministic() {
        let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
        let cfg = quick_cfg();
        let run = |workers| {
            let mut learner = Learner::new(LearnConfig::default());
            let mut picks = Vec::new();
            for _ in 0..3 {
                let r =
                    SosScheduler::evaluate_experiment_learned(&spec, &cfg, &mut learner, workers);
                picks.push(r.picks);
            }
            (picks, serde_json::to_string(&learner).unwrap())
        };
        let (picks1, learner1) = run(0);
        let (picks2, learner2) = run(2);
        assert_eq!(picks1, picks2);
        assert_eq!(
            learner1, learner2,
            "learner state differs across worker counts"
        );
    }
}

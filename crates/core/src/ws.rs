//! The weighted-speedup metric `WS(t)` (§4 of the paper).
//!
//! ```text
//! WS(t) = Σ_i  realized IPC of job_i  /  single-threaded IPC of job_i
//! ```
//!
//! Realized IPC is measured over the whole interval, including the time a job
//! spends swapped out, so a perfectly time-shared single-threaded system
//! scores exactly 1 and any value above 1 is genuine multithreading benefit.

use serde::{Deserialize, Serialize};

/// Per-thread single-threaded (solo) IPC, used as the WS denominator.
///
/// For threads of a parallel job the denominator is the thread's issue rate
/// when the whole job runs alone (the §7 extension of the metric).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SoloRates(Vec<f64>);

impl SoloRates {
    /// Wraps per-thread solo IPCs.
    ///
    /// # Panics
    /// Panics if any rate is non-finite or non-positive (every runnable
    /// thread makes progress when running alone).
    pub fn new(rates: Vec<f64>) -> Self {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "solo IPCs must be positive and finite: {rates:?}"
        );
        SoloRates(rates)
    }

    /// Solo IPC of thread `i`.
    pub fn rate(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no threads.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The rates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

/// Computes `WS(t)` from per-thread committed instruction counts over an
/// interval of `cycles` cycles.
///
/// `committed[i]` must correspond to `solo.rate(i)`.
///
/// # Panics
/// Panics if the lengths disagree or `cycles == 0`.
///
/// # Example
///
/// ```
/// use sos_core::ws::{weighted_speedup, SoloRates};
/// // Two jobs, solo IPCs 2.0 and 1.0, coscheduled for 1M cycles.
/// let solo = SoloRates::new(vec![2.0, 1.0]);
/// // Each contributes exactly its fair share: WS = 1.
/// assert!((weighted_speedup(&[1_000_000, 500_000], 1_000_000, &solo) - 1.0).abs() < 1e-12);
/// // Utilization gains push WS above 1 (the paper's 1.2 example).
/// assert!((weighted_speedup(&[1_200_000, 600_000], 1_000_000, &solo) - 1.2).abs() < 1e-12);
/// ```
pub fn weighted_speedup(committed: &[u64], cycles: u64, solo: &SoloRates) -> f64 {
    assert_eq!(
        committed.len(),
        solo.len(),
        "one committed count per thread"
    );
    assert!(cycles > 0, "interval must be non-empty");
    committed
        .iter()
        .enumerate()
        .map(|(i, &c)| (c as f64 / cycles as f64) / solo.rate(i))
        .sum()
}

/// Computes `WS(t)` for a subset of threads (by index), e.g. one coschedule.
pub fn weighted_speedup_subset(
    threads: &[usize],
    committed: &[u64],
    cycles: u64,
    solo: &SoloRates,
) -> f64 {
    assert_eq!(committed.len(), threads.len());
    assert!(cycles > 0, "interval must be non-empty");
    threads
        .iter()
        .zip(committed)
        .map(|(&i, &c)| (c as f64 / cycles as f64) / solo.rate(i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_job_scores_one() {
        let solo = SoloRates::new(vec![1.7]);
        let committed = (1.7f64 * 1000.0) as u64;
        let ws = weighted_speedup(&[committed], 1000, &solo);
        assert!((ws - 1.0).abs() < 1e-3);
    }

    #[test]
    fn time_shared_system_scores_one() {
        // Three jobs each run one third of the interval at solo speed.
        let solo = SoloRates::new(vec![2.0, 1.0, 0.5]);
        let cycles = 3000u64;
        let committed = [2000, 1000, 500];
        let ws = weighted_speedup(&committed, cycles, &solo);
        assert!((ws - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unfair_time_sharing_still_scores_one() {
        // Favoring the high-IPC job does not inflate WS.
        let solo = SoloRates::new(vec![2.0, 1.0]);
        let cycles = 1000u64;
        // Job 0 runs 90% of the time, job 1 runs 10%.
        let committed = [(0.9 * 2.0 * 1000.0) as u64, (0.1 * 1.0 * 1000.0) as u64];
        let ws = weighted_speedup(&committed, cycles, &solo);
        assert!((ws - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pathological_interaction_scores_below_one() {
        let solo = SoloRates::new(vec![1.0, 1.0]);
        let ws = weighted_speedup(&[300, 300], 1000, &solo);
        assert!(ws < 1.0);
    }

    #[test]
    fn subset_matches_full_on_identity() {
        let solo = SoloRates::new(vec![2.0, 1.0, 0.5]);
        let full = weighted_speedup(&[100, 200, 300], 1000, &solo);
        let sub = weighted_speedup_subset(&[0, 1, 2], &[100, 200, 300], 1000, &solo);
        assert!((full - sub).abs() < 1e-12);
    }

    #[test]
    fn subset_reorders_correctly() {
        let solo = SoloRates::new(vec![2.0, 1.0]);
        let a = weighted_speedup_subset(&[1, 0], &[500, 1000], 1000, &solo);
        let b = weighted_speedup(&[1000, 500], 1000, &solo);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_solo_rate_rejected() {
        let _ = SoloRates::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one committed count per thread")]
    fn length_mismatch_rejected() {
        let solo = SoloRates::new(vec![1.0]);
        let _ = weighted_speedup(&[1, 2], 10, &solo);
    }
}

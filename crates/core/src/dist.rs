//! Exponential distributions for the open-system model (§9).
//!
//! The paper models "a system where jobs enter and leave the system with
//! exponentially distributed arrival rate λ and exponentially distributed
//! average time to complete a job T."

use rand::Rng;

/// An exponential distribution parameterized by its mean.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Builds a distribution with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive and finite"
        );
        Exponential { mean }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample by inverse-CDF.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -self.mean * u.ln()
    }

    /// Draws a sample rounded to whole cycles, at least 1.
    pub fn sample_cycles<R: Rng>(&self, rng: &mut R) -> u64 {
        (self.sample(rng).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_converges() {
        let d = Exponential::with_mean(1000.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 30.0, "sampled mean {mean}");
    }

    #[test]
    fn memoryless_variance() {
        // Exponential variance = mean^2.
        let d = Exponential::with_mean(500.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!(
            (var / (500.0 * 500.0) - 1.0).abs() < 0.1,
            "variance ratio {}",
            var / 250_000.0
        );
    }

    #[test]
    fn samples_are_positive() {
        let d = Exponential::with_mean(3.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
            assert!(d.sample_cycles(&mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_mean_rejected() {
        let _ = Exponential::with_mean(0.0);
    }
}

//! Aggregate reporting across experiments: the predictor league table.
//!
//! Given the [`ExperimentReport`]s of several experiments, ranks every
//! predictor (plus the sampled-WS oracle and the best-possible schedule) by
//! the mean percent gain of its pick over the random-scheduler expectation.

use crate::predictor::PredictorKind;
use crate::sos::ExperimentReport;
use serde::{Deserialize, Serialize};

/// One row of the league table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeagueRow {
    /// Predictor name, or `"SampledWS"` / `"BestPossible"` for the baselines.
    pub name: String,
    /// Mean percent gain over the per-experiment average WS.
    pub mean_pct: f64,
    /// Worst-case percent gain.
    pub min_pct: f64,
    /// Best-case percent gain.
    pub max_pct: f64,
}

/// Percent gain of `a` over baseline `b`, or `NaN` when the comparison is
/// meaningless (zero or non-finite baseline, non-finite value). `NaN`
/// serializes as JSON `null`, so degenerate experiments surface as missing
/// data instead of `inf` percentages.
fn pct_over(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() || b == 0.0 {
        f64::NAN
    } else {
        100.0 * (a / b - 1.0)
    }
}

fn row(name: &str, gains: &[f64]) -> LeagueRow {
    let finite: Vec<f64> = gains.iter().copied().filter(|g| g.is_finite()).collect();
    if finite.is_empty() {
        return LeagueRow {
            name: name.to_string(),
            mean_pct: f64::NAN,
            min_pct: f64::NAN,
            max_pct: f64::NAN,
        };
    }
    LeagueRow {
        name: name.to_string(),
        mean_pct: finite.iter().sum::<f64>() / finite.len() as f64,
        min_pct: finite.iter().copied().fold(f64::INFINITY, f64::min),
        max_pct: finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Builds the league table, sorted by mean gain (best first).
///
/// # Panics
/// Panics if `reports` is empty.
pub fn league_table(reports: &[ExperimentReport]) -> Vec<LeagueRow> {
    assert!(!reports.is_empty(), "need at least one experiment report");
    let mut rows = Vec::new();
    for p in PredictorKind::ALL {
        let gains: Vec<f64> = reports
            .iter()
            .map(|r| pct_over(r.ws_with(p), r.average_ws()))
            .collect();
        rows.push(row(p.name(), &gains));
    }
    let oracle: Vec<f64> = reports
        .iter()
        .map(|r| pct_over(r.oracle_ws(), r.average_ws()))
        .collect();
    rows.push(row("SampledWS", &oracle));
    let best: Vec<f64> = reports
        .iter()
        .map(|r| pct_over(r.best_ws(), r.average_ws()))
        .collect();
    rows.push(row("BestPossible", &best));
    // Descending by mean gain; rows without meaningful data (NaN) sink to
    // the bottom rather than sorting as the largest value.
    rows.sort_by(|a, b| match (a.mean_pct.is_nan(), b.mean_pct.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.mean_pct.total_cmp(&a.mean_pct),
    });
    rows
}

/// Formats the table for terminal output.
pub fn format_league_table(rows: &[LeagueRow]) -> String {
    let mut out = format!(
        "{:<12} {:>10} {:>10} {:>10}\n",
        "predictor", "mean", "min", "max"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>9.2}% {:>9.2}% {:>9.2}%\n",
            r.name, r.mean_pct, r.min_pct, r.max_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentSpec;
    use crate::sample::ScheduleSample;

    /// A fabricated report where candidate 0 is best and every predictor
    /// picked a known index.
    fn fake_report(ws: Vec<f64>, picks_idx: usize, oracle_idx: usize) -> ExperimentReport {
        let sample = ScheduleSample {
            notation: "s".into(),
            ipc: 1.0,
            allconf: 1.0,
            dcache: 1.0,
            fq: 1.0,
            fp: 1.0,
            sum2: 2.0,
            diversity: 1.0,
            balance: 1.0,
        };
        let mut sample_ws = vec![0.0; ws.len()];
        sample_ws[oracle_idx] = 1.0;
        ExperimentReport {
            spec: ExperimentSpec::new(4, 2, 2),
            candidates: (0..ws.len()).map(|i| format!("c{i}")).collect(),
            samples: vec![sample; ws.len()],
            symbios_ws: ws,
            picks: PredictorKind::ALL.iter().map(|&p| (p, picks_idx)).collect(),
            sample_ws,
            solo: vec![1.0],
        }
    }

    #[test]
    fn league_table_ranks_best_possible_first() {
        // Oracle picks the middling candidate 2, predictors pick the worst.
        let reports = vec![fake_report(vec![2.0, 1.0, 1.5], 1, 2)];
        let rows = league_table(&reports);
        assert_eq!(rows[0].name, "BestPossible");
        // avg = 1.5; best = 2.0 -> +33.3%.
        assert!((rows[0].mean_pct - 33.333).abs() < 0.01);
        // All predictors picked candidate 1 (WS 1.0 -> -33.3%).
        let ipc = rows.iter().find(|r| r.name == "IPC").unwrap();
        assert!((ipc.mean_pct + 33.333).abs() < 0.01);
        // Oracle picked candidate 2 (WS 1.5 -> 0%).
        let oracle = rows.iter().find(|r| r.name == "SampledWS").unwrap();
        assert!(oracle.mean_pct.abs() < 0.01);
    }

    #[test]
    fn league_table_has_twelve_rows() {
        let reports = vec![fake_report(vec![1.0, 1.0], 0, 0)];
        let rows = league_table(&reports);
        assert_eq!(rows.len(), PredictorKind::ALL.len() + 2);
    }

    #[test]
    fn format_contains_every_row() {
        let reports = vec![fake_report(vec![1.2, 1.0], 0, 1)];
        let rows = league_table(&reports);
        let text = format_league_table(&rows);
        for r in &rows {
            assert!(text.contains(&r.name), "{text}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one experiment")]
    fn empty_reports_rejected() {
        let _ = league_table(&[]);
    }

    #[test]
    fn zero_baseline_yields_nan_not_inf() {
        // All-zero symbios WS: average_ws() == 0, so every gain is 0/0.
        let reports = vec![fake_report(vec![0.0, 0.0], 0, 0)];
        let rows = league_table(&reports);
        for r in &rows {
            assert!(r.mean_pct.is_nan(), "{}: {}", r.name, r.mean_pct);
            assert!(r.min_pct.is_nan());
            assert!(r.max_pct.is_nan());
        }
        // NaN percentages serialize as JSON null, not as "inf"/"NaN" tokens.
        let json = serde_json::to_string(&rows[0]).unwrap();
        assert!(json.contains("\"mean_pct\":null"), "{json}");
    }

    #[test]
    fn nan_rows_sort_last() {
        let good = fake_report(vec![2.0, 1.0], 0, 0);
        let rows = {
            let mut rows = league_table(&[good]);
            rows.push(LeagueRow {
                name: "Degenerate".into(),
                mean_pct: f64::NAN,
                min_pct: f64::NAN,
                max_pct: f64::NAN,
            });
            // Re-sort through the public path: build a table whose last row
            // is NaN and check ordering logic directly.
            rows.sort_by(|a, b| match (a.mean_pct.is_nan(), b.mean_pct.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => b.mean_pct.total_cmp(&a.mean_pct),
            });
            rows
        };
        assert_eq!(rows.last().unwrap().name, "Degenerate");
        assert!(!rows[0].mean_pct.is_nan());
    }
}

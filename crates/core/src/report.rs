//! Aggregate reporting across experiments: the predictor league table and
//! latency-percentile helpers.
//!
//! Given the [`ExperimentReport`]s of several experiments, ranks every
//! predictor (plus the sampled-WS oracle and the best-possible schedule) by
//! the mean percent gain of its pick over the random-scheduler expectation.
//! The percentile helpers serve the open-system and serving paths: response
//! times in a queueing system are heavy-tailed, so figures and the
//! `sos-serve` stats verb report p50/p95/p99 alongside the mean.

use crate::predictor::PredictorKind;
use crate::sos::ExperimentReport;
use serde::{Deserialize, Serialize};

/// The p50/p95/p99 summary of a latency-like distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// The `p`-th percentile (0–100) of `values` by the nearest-rank method,
/// ignoring non-finite entries. Returns `NaN` when no finite values remain
/// or `p` is outside `[0, 100]` — `NaN` serializes as JSON `null`, so
/// degenerate runs surface as missing data rather than a fabricated number.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if !(0.0..=100.0).contains(&p) {
        return f64::NAN;
    }
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.sort_by(f64::total_cmp);
    // Nearest-rank: the smallest value with at least p% of the mass at or
    // below it.
    let rank = ((p / 100.0) * finite.len() as f64).ceil() as usize;
    finite[rank.saturating_sub(1).min(finite.len() - 1)]
}

/// The p50/p95/p99 summary of `values` (each via [`percentile`], so the same
/// NaN/empty-input guards apply to every field).
pub fn percentiles(values: &[f64]) -> Percentiles {
    Percentiles {
        p50: percentile(values, 50.0),
        p95: percentile(values, 95.0),
        p99: percentile(values, 99.0),
    }
}

/// One row of the league table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeagueRow {
    /// Predictor name, or `"SampledWS"` / `"BestPossible"` for the baselines.
    pub name: String,
    /// Mean percent gain over the per-experiment average WS.
    pub mean_pct: f64,
    /// Worst-case percent gain.
    pub min_pct: f64,
    /// Best-case percent gain.
    pub max_pct: f64,
}

/// Percent gain of `a` over baseline `b`, or `NaN` when the comparison is
/// meaningless (zero or non-finite baseline, non-finite value). `NaN`
/// serializes as JSON `null`, so degenerate experiments surface as missing
/// data instead of `inf` percentages.
fn pct_over(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() || b == 0.0 {
        f64::NAN
    } else {
        100.0 * (a / b - 1.0)
    }
}

fn row(name: &str, gains: &[f64]) -> LeagueRow {
    let finite: Vec<f64> = gains.iter().copied().filter(|g| g.is_finite()).collect();
    if finite.is_empty() {
        return LeagueRow {
            name: name.to_string(),
            mean_pct: f64::NAN,
            min_pct: f64::NAN,
            max_pct: f64::NAN,
        };
    }
    LeagueRow {
        name: name.to_string(),
        mean_pct: finite.iter().sum::<f64>() / finite.len() as f64,
        min_pct: finite.iter().copied().fold(f64::INFINITY, f64::min),
        max_pct: finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Builds the league table, sorted by mean gain (best first).
///
/// Ranks every predictor kind present in the reports' picks — the paper's
/// ten always, plus `Learned`/`Bandit` when the reports came from a learned
/// evaluation — so the table's shape follows the data. Kinds are taken from
/// the first report; every report must have been evaluated with the same
/// set.
///
/// # Panics
/// Panics if `reports` is empty.
pub fn league_table(reports: &[ExperimentReport]) -> Vec<LeagueRow> {
    assert!(!reports.is_empty(), "need at least one experiment report");
    let kinds: Vec<PredictorKind> = reports[0].picks.iter().map(|&(p, _)| p).collect();
    let mut rows = Vec::new();
    for p in kinds {
        let gains: Vec<f64> = reports
            .iter()
            .map(|r| pct_over(r.ws_with(p), r.average_ws()))
            .collect();
        rows.push(row(p.name(), &gains));
    }
    let oracle: Vec<f64> = reports
        .iter()
        .map(|r| pct_over(r.oracle_ws(), r.average_ws()))
        .collect();
    rows.push(row("SampledWS", &oracle));
    let best: Vec<f64> = reports
        .iter()
        .map(|r| pct_over(r.best_ws(), r.average_ws()))
        .collect();
    rows.push(row("BestPossible", &best));
    // Descending by mean gain; rows without meaningful data (NaN) sink to
    // the bottom rather than sorting as the largest value.
    rows.sort_by(|a, b| match (a.mean_pct.is_nan(), b.mean_pct.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.mean_pct.total_cmp(&a.mean_pct),
    });
    rows
}

/// Formats the table for terminal output.
pub fn format_league_table(rows: &[LeagueRow]) -> String {
    let mut out = format!(
        "{:<12} {:>10} {:>10} {:>10}\n",
        "predictor", "mean", "min", "max"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>9.2}% {:>9.2}% {:>9.2}%\n",
            r.name, r.mean_pct, r.min_pct, r.max_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentSpec;
    use crate::sample::ScheduleSample;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let shuffled = vec![4.0, 1.0, 5.0, 2.0, 3.0];
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(percentile(&sorted, p), percentile(&shuffled, p));
        }
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_guards_empty_and_nonfinite() {
        assert!(percentile(&[], 50.0).is_nan());
        assert!(percentile(&[f64::NAN, f64::INFINITY], 50.0).is_nan());
        // Non-finite entries are ignored, not propagated.
        assert_eq!(percentile(&[f64::NAN, 7.0], 50.0), 7.0);
        // Out-of-range p is NaN, not a panic or a clamp.
        assert!(percentile(&[1.0], -1.0).is_nan());
        assert!(percentile(&[1.0], 101.0).is_nan());
    }

    #[test]
    fn percentiles_summary_and_serialization() {
        let v: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let p = percentiles(&v);
        assert_eq!(p.p50, 100.0);
        assert_eq!(p.p95, 190.0);
        assert_eq!(p.p99, 198.0);
        let empty = percentiles(&[]);
        assert!(empty.p50.is_nan() && empty.p95.is_nan() && empty.p99.is_nan());
        // NaN fields serialize as JSON null, like the league table's.
        let json = serde_json::to_string(&empty).unwrap();
        assert!(json.contains("\"p50\":null"), "{json}");
    }

    /// A fabricated report where candidate 0 is best and every predictor
    /// picked a known index.
    fn fake_report(ws: Vec<f64>, picks_idx: usize, oracle_idx: usize) -> ExperimentReport {
        let sample = ScheduleSample {
            notation: "s".into(),
            ipc: 1.0,
            allconf: 1.0,
            dcache: 1.0,
            fq: 1.0,
            fp: 1.0,
            sum2: 2.0,
            diversity: 1.0,
            balance: 1.0,
        };
        let mut sample_ws = vec![0.0; ws.len()];
        sample_ws[oracle_idx] = 1.0;
        ExperimentReport {
            spec: ExperimentSpec::new(4, 2, 2),
            candidates: (0..ws.len()).map(|i| format!("c{i}")).collect(),
            samples: vec![sample; ws.len()],
            symbios_ws: ws,
            picks: PredictorKind::ALL.iter().map(|&p| (p, picks_idx)).collect(),
            sample_ws,
            solo: vec![1.0],
        }
    }

    #[test]
    fn league_table_ranks_best_possible_first() {
        // Oracle picks the middling candidate 2, predictors pick the worst.
        let reports = vec![fake_report(vec![2.0, 1.0, 1.5], 1, 2)];
        let rows = league_table(&reports);
        assert_eq!(rows[0].name, "BestPossible");
        // avg = 1.5; best = 2.0 -> +33.3%.
        assert!((rows[0].mean_pct - 33.333).abs() < 0.01);
        // All predictors picked candidate 1 (WS 1.0 -> -33.3%).
        let ipc = rows.iter().find(|r| r.name == "IPC").unwrap();
        assert!((ipc.mean_pct + 33.333).abs() < 0.01);
        // Oracle picked candidate 2 (WS 1.5 -> 0%).
        let oracle = rows.iter().find(|r| r.name == "SampledWS").unwrap();
        assert!(oracle.mean_pct.abs() < 0.01);
    }

    #[test]
    fn league_table_has_twelve_rows() {
        let reports = vec![fake_report(vec![1.0, 1.0], 0, 0)];
        let rows = league_table(&reports);
        assert_eq!(rows.len(), PredictorKind::ALL.len() + 2);
    }

    #[test]
    fn league_table_includes_learned_rows_when_present() {
        let mut r = fake_report(vec![2.0, 1.0], 0, 0);
        r.picks.push((PredictorKind::Learned, 0));
        r.picks.push((PredictorKind::Bandit, 1));
        let rows = league_table(&[r]);
        assert_eq!(rows.len(), PredictorKind::EXTENDED.len() + 2);
        let learned = rows.iter().find(|x| x.name == "Learned").unwrap();
        assert!((learned.mean_pct - 33.333).abs() < 0.01);
        let bandit = rows.iter().find(|x| x.name == "Bandit").unwrap();
        assert!((bandit.mean_pct + 33.333).abs() < 0.01);
    }

    #[test]
    fn format_contains_every_row() {
        let reports = vec![fake_report(vec![1.2, 1.0], 0, 1)];
        let rows = league_table(&reports);
        let text = format_league_table(&rows);
        for r in &rows {
            assert!(text.contains(&r.name), "{text}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one experiment")]
    fn empty_reports_rejected() {
        let _ = league_table(&[]);
    }

    #[test]
    fn zero_baseline_yields_nan_not_inf() {
        // All-zero symbios WS: average_ws() == 0, so every gain is 0/0.
        let reports = vec![fake_report(vec![0.0, 0.0], 0, 0)];
        let rows = league_table(&reports);
        for r in &rows {
            assert!(r.mean_pct.is_nan(), "{}: {}", r.name, r.mean_pct);
            assert!(r.min_pct.is_nan());
            assert!(r.max_pct.is_nan());
        }
        // NaN percentages serialize as JSON null, not as "inf"/"NaN" tokens.
        let json = serde_json::to_string(&rows[0]).unwrap();
        assert!(json.contains("\"mean_pct\":null"), "{json}");
    }

    #[test]
    fn nan_rows_sort_last() {
        let good = fake_report(vec![2.0, 1.0], 0, 0);
        let rows = {
            let mut rows = league_table(&[good]);
            rows.push(LeagueRow {
                name: "Degenerate".into(),
                mean_pct: f64::NAN,
                min_pct: f64::NAN,
                max_pct: f64::NAN,
            });
            // Re-sort through the public path: build a table whose last row
            // is NaN and check ordering logic directly.
            rows.sort_by(|a, b| match (a.mean_pct.is_nan(), b.mean_pct.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => b.mean_pct.total_cmp(&a.mean_pct),
            });
            rows
        };
        assert_eq!(rows.last().unwrap().name, "Degenerate");
        assert!(!rows[0].mean_pct.is_nan());
    }
}

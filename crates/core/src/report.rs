//! Aggregate reporting across experiments: the predictor league table.
//!
//! Given the [`ExperimentReport`]s of several experiments, ranks every
//! predictor (plus the sampled-WS oracle and the best-possible schedule) by
//! the mean percent gain of its pick over the random-scheduler expectation.

use crate::predictor::PredictorKind;
use crate::sos::ExperimentReport;
use serde::{Deserialize, Serialize};

/// One row of the league table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LeagueRow {
    /// Predictor name, or `"SampledWS"` / `"BestPossible"` for the baselines.
    pub name: String,
    /// Mean percent gain over the per-experiment average WS.
    pub mean_pct: f64,
    /// Worst-case percent gain.
    pub min_pct: f64,
    /// Best-case percent gain.
    pub max_pct: f64,
}

fn pct_over(a: f64, b: f64) -> f64 {
    100.0 * (a / b - 1.0)
}

fn row(name: &str, gains: &[f64]) -> LeagueRow {
    LeagueRow {
        name: name.to_string(),
        mean_pct: gains.iter().sum::<f64>() / gains.len().max(1) as f64,
        min_pct: gains.iter().copied().fold(f64::INFINITY, f64::min),
        max_pct: gains.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Builds the league table, sorted by mean gain (best first).
///
/// # Panics
/// Panics if `reports` is empty.
pub fn league_table(reports: &[ExperimentReport]) -> Vec<LeagueRow> {
    assert!(!reports.is_empty(), "need at least one experiment report");
    let mut rows = Vec::new();
    for p in PredictorKind::ALL {
        let gains: Vec<f64> = reports
            .iter()
            .map(|r| pct_over(r.ws_with(p), r.average_ws()))
            .collect();
        rows.push(row(p.name(), &gains));
    }
    let oracle: Vec<f64> = reports
        .iter()
        .map(|r| pct_over(r.oracle_ws(), r.average_ws()))
        .collect();
    rows.push(row("SampledWS", &oracle));
    let best: Vec<f64> = reports
        .iter()
        .map(|r| pct_over(r.best_ws(), r.average_ws()))
        .collect();
    rows.push(row("BestPossible", &best));
    rows.sort_by(|a, b| b.mean_pct.total_cmp(&a.mean_pct));
    rows
}

/// Formats the table for terminal output.
pub fn format_league_table(rows: &[LeagueRow]) -> String {
    let mut out = format!(
        "{:<12} {:>10} {:>10} {:>10}\n",
        "predictor", "mean", "min", "max"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>9.2}% {:>9.2}% {:>9.2}%\n",
            r.name, r.mean_pct, r.min_pct, r.max_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentSpec;
    use crate::sample::ScheduleSample;

    /// A fabricated report where candidate 0 is best and every predictor
    /// picked a known index.
    fn fake_report(ws: Vec<f64>, picks_idx: usize, oracle_idx: usize) -> ExperimentReport {
        let sample = ScheduleSample {
            notation: "s".into(),
            ipc: 1.0,
            allconf: 1.0,
            dcache: 1.0,
            fq: 1.0,
            fp: 1.0,
            sum2: 2.0,
            diversity: 1.0,
            balance: 1.0,
        };
        let mut sample_ws = vec![0.0; ws.len()];
        sample_ws[oracle_idx] = 1.0;
        ExperimentReport {
            spec: ExperimentSpec::new(4, 2, 2),
            candidates: (0..ws.len()).map(|i| format!("c{i}")).collect(),
            samples: vec![sample; ws.len()],
            symbios_ws: ws,
            picks: PredictorKind::ALL.iter().map(|&p| (p, picks_idx)).collect(),
            sample_ws,
            solo: vec![1.0],
        }
    }

    #[test]
    fn league_table_ranks_best_possible_first() {
        // Oracle picks the middling candidate 2, predictors pick the worst.
        let reports = vec![fake_report(vec![2.0, 1.0, 1.5], 1, 2)];
        let rows = league_table(&reports);
        assert_eq!(rows[0].name, "BestPossible");
        // avg = 1.5; best = 2.0 -> +33.3%.
        assert!((rows[0].mean_pct - 33.333).abs() < 0.01);
        // All predictors picked candidate 1 (WS 1.0 -> -33.3%).
        let ipc = rows.iter().find(|r| r.name == "IPC").unwrap();
        assert!((ipc.mean_pct + 33.333).abs() < 0.01);
        // Oracle picked candidate 2 (WS 1.5 -> 0%).
        let oracle = rows.iter().find(|r| r.name == "SampledWS").unwrap();
        assert!(oracle.mean_pct.abs() < 0.01);
    }

    #[test]
    fn league_table_has_twelve_rows() {
        let reports = vec![fake_report(vec![1.0, 1.0], 0, 0)];
        let rows = league_table(&reports);
        assert_eq!(rows.len(), PredictorKind::ALL.len() + 2);
    }

    #[test]
    fn format_contains_every_row() {
        let reports = vec![fake_report(vec![1.2, 1.0], 0, 1)];
        let rows = league_table(&reports);
        let text = format_league_table(&rows);
        for r in &rows {
            assert!(text.contains(&r.name), "{text}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one experiment")]
    fn empty_reports_rejected() {
        let _ = league_table(&[]);
    }
}

//! Two-level cluster scheduling: a dispatcher in front of N per-core
//! [`OnlineEngine`] shards.
//!
//! The paper schedules one SMT core. A production fleet runs many; the
//! natural scale-out (see "Scalable HPC Job Scheduling and Resource
//! Management in SST" and the two-level-scheduling literature) is a
//! **batch-level dispatcher** that partitions the arriving job stream across
//! cores, with each core running the paper's application-level policy
//! (naive rotation or SOS) locally. [`ClusterEngine`] implements exactly
//! that split:
//!
//! * each shard is a full [`OnlineEngine`] on its own OS thread, owning its
//!   own simulated Alpha-21264-like machine;
//! * the dispatcher routes every [`submit`](ClusterEngine::submit) to one
//!   shard under a [`DispatchPolicy`] — round-robin, least-loaded, or
//!   symbiosis-aware (route to the shard whose predicted coschedule
//!   degrades least, scored from static benchmark profiles);
//! * a rebalancing step migrates queued-but-not-started jobs off overloaded
//!   shards ([`OnlineEngine::reclaim_unstarted`] guarantees no execution
//!   progress is lost), with every migration recorded in telemetry and the
//!   cluster metrics.
//!
//! # Lockstep clocks and determinism
//!
//! Shard engines are not `Send` (the processor observer slot is
//! thread-local by design), so each worker thread *constructs* its engine
//! locally and is driven purely by messages — the [`sos_core::par`]
//! discipline of deterministic work distribution, applied to long-lived
//! workers. All shard clocks advance in lockstep: one
//! [`step`](ClusterEngine::step) of the cluster advances every shard by the
//! same `slices_per_round × timeslice` cycles (idle shards jump), so at
//! every round boundary all shards agree on "now" and dispatch decisions
//! depend only on deterministic mirror state. Each shard's RNG is seeded
//! `cluster seed ⊕ shard id`. Replies are collected in shard-index order.
//! Consequently a cluster run is **byte-reproducible** for a fixed shard
//! count, and a 1-shard cluster is bit-exact with a plain [`OnlineEngine`]
//! (same seed, same event sequence).
//!
//! [`sos_core::par`]: crate::par

use crate::arrivals::JobArrival;
use crate::learn::LearnSummary;
use crate::metrics::{EngineMetrics, LearnMetrics, MetricsHub};
use crate::online::{JobRecord, OnlineConfig, OnlineEngine, SchedulerKind};
use crate::report::{percentiles, Percentiles};
use crate::telemetry::{self, Attr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use workloads::spec::Benchmark;

/// How the dispatcher picks a shard for an arriving job.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through shards in submission order (the baseline).
    RoundRobin,
    /// Route to the shard with the fewest resident jobs (ties to the lowest
    /// shard index).
    LeastLoaded,
    /// Route to the shard whose predicted coschedule the job degrades
    /// least: score each shard by the mean profile interference between the
    /// job and the shard's residents plus a queue-depth penalty, and take
    /// the minimum (ties to the lowest shard index). A static-profile
    /// stand-in for the per-shard sampled predictors, usable at dispatch
    /// time when the job has never run.
    Symbiosis,
}

impl DispatchPolicy {
    /// Parses a policy name (`"round-robin"`/`"rr"`, `"least-loaded"`,
    /// `"symbiosis"`; case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Some(DispatchPolicy::RoundRobin),
            "least-loaded" | "leastloaded" | "ll" => Some(DispatchPolicy::LeastLoaded),
            "symbiosis" | "sym" => Some(DispatchPolicy::Symbiosis),
            _ => None,
        }
    }

    /// The canonical lowercase policy name.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastLoaded => "least-loaded",
            DispatchPolicy::Symbiosis => "symbiosis",
        }
    }
}

/// Cluster configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of per-core shards.
    pub shards: usize,
    /// Dispatcher policy.
    pub dispatch: DispatchPolicy,
    /// Per-shard scheduling policy (naive or SOS).
    pub scheduler: SchedulerKind,
    /// Per-shard engine template. `shard.seed` is the *cluster* seed; shard
    /// `i` runs with `seed ⊕ i`.
    pub shard: OnlineConfig,
    /// Timeslices every shard advances per cluster [`ClusterEngine::step`].
    /// 1 gives the finest dispatch/rebalance granularity (and makes a
    /// 1-shard cluster step-for-step identical to a plain engine); larger
    /// values amortize messaging.
    pub slices_per_round: u64,
    /// Check rebalancing every this many rounds (0 disables stealing).
    pub rebalance_every: u64,
    /// Steal only when the deepest and shallowest queues differ by at least
    /// this many jobs (minimum effective value 2 — stealing across a
    /// 1-job gap just moves the imbalance).
    pub steal_threshold: usize,
}

impl ClusterConfig {
    /// A cluster of `shards` copies of `shard` under the given policies,
    /// with stepping/rebalancing defaults (one slice per round, rebalance
    /// every 8 rounds, steal threshold 4).
    pub fn new(
        shards: usize,
        dispatch: DispatchPolicy,
        scheduler: SchedulerKind,
        shard: OnlineConfig,
    ) -> Self {
        ClusterConfig {
            shards,
            dispatch,
            scheduler,
            shard,
            slices_per_round: 1,
            rebalance_every: 8,
            steal_threshold: 4,
        }
    }

    fn validate(&self) {
        assert!(self.shards > 0, "a cluster needs at least one shard");
        assert!(self.slices_per_round > 0, "slices_per_round must be > 0");
    }
}

// ---------------------------------------------------------------------------
// Worker protocol
// ---------------------------------------------------------------------------

/// Commands the dispatcher sends a shard worker. The engine lives inside
/// the worker thread (it is not `Send`); everything it does is a response
/// to one of these.
enum Cmd {
    /// Admit a job (fire-and-forget; ordered before any later `Step`).
    Submit(JobArrival),
    /// Run up to `slices` timeslices, then jump the shard clock to
    /// `target` (a shard that idles mid-round still lands on the round
    /// boundary). Replies `Reply::Stepped`.
    Step { slices: u64, target: u64 },
    /// Fast-forward an idle shard's clock (fire-and-forget).
    JumpTo(u64),
    /// Hand back up to `max` queued-but-not-started jobs for migration.
    /// Replies `Reply::Reclaimed`.
    Reclaim { max: usize },
    /// Exit the worker loop (the dispatcher joins the thread after).
    Finish,
}

/// Worker → dispatcher replies.
enum Reply {
    Stepped {
        departed: Vec<JobRecord>,
        live: usize,
        now: u64,
        timeslices: u64,
        /// Cumulative timeslices the shard synthesized via fast-sim
        /// extrapolation (0 when fast-sim is off).
        extrapolated: u64,
        /// The shard's learner state summary (`None` when learning is
        /// disabled on the shard).
        learn: Option<LearnSummary>,
    },
    Reclaimed(Vec<JobArrival>),
}

/// One shard's lifetime summary in the [`ClusterReport`]. Excludes
/// anything wall-clock so two runs of the same seeded cluster serialize
/// byte-identically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The shard engine's seed (`cluster seed ⊕ shard`).
    pub seed: u64,
    /// Jobs dispatched to this shard (initial dispatch + migrated in).
    pub submitted: usize,
    /// Jobs migrated *into* this shard by rebalancing.
    pub migrated_in: usize,
    /// Jobs migrated *out of* this shard by rebalancing.
    pub migrated_out: usize,
    /// Jobs this shard ran to completion.
    pub completed: u64,
    /// Timeslices this shard actually simulated (busy slices, not idle
    /// jumps).
    pub timeslices: u64,
    /// Of those, timeslices synthesized by fast-sim extrapolation rather
    /// than detailed execution (0 when fast-sim is off).
    #[serde(default)]
    pub extrapolated_slices: u64,
    /// The shard clock at the end of the run.
    pub now_cycles: u64,
    /// Jobs still resident at report time.
    pub final_queue_depth: usize,
    /// Every job this shard completed, in departure order — the shard's
    /// trace for byte-reproducibility checks.
    pub records: Vec<JobRecord>,
    /// The shard's learner summary at report time (`None` when the shard
    /// runs without online learning).
    #[serde(default)]
    pub learn: Option<LearnSummary>,
}

/// The cluster-wide summary (deterministic: serializing it twice for the
/// same seeded run yields identical bytes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Shard count.
    pub shards: usize,
    /// Dispatcher policy name.
    pub dispatch: String,
    /// Per-shard scheduler policy name.
    pub scheduler: String,
    /// Cluster seed.
    pub seed: u64,
    /// Cluster clock at report time.
    pub now_cycles: u64,
    /// Jobs submitted to the cluster.
    pub submitted: usize,
    /// Jobs completed across all shards.
    pub completed: u64,
    /// Jobs migrated between shards by rebalancing.
    pub migrations: u64,
    /// Total busy timeslices across shards.
    pub timeslices: u64,
    /// Of those, timeslices synthesized by fast-sim extrapolation across
    /// shards (0 when fast-sim is off).
    #[serde(default)]
    pub extrapolated_slices: u64,
    /// The shard fast-sim policy in effect, if any (see
    /// [`smtsim::FastSimPolicy::describe`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fastsim: Option<String>,
    /// Cluster-wide weighted speedup: solo-equivalent cycles of completed
    /// work per busy machine cycle, `Σ_j solo_cycles(j) / Σ_s busy_cycles(s)`.
    /// Above 1.0 means SMT coscheduling is paying for itself.
    pub aggregate_ws: f64,
    /// Response-time percentiles over completed jobs (cycles).
    pub response: Percentiles,
    /// Slowdown percentiles over completed jobs (response / solo time).
    pub slowdown: Percentiles,
    /// Per-shard summaries, in shard order.
    pub per_shard: Vec<ShardReport>,
}

// ---------------------------------------------------------------------------
// Dispatcher-side mirror state
// ---------------------------------------------------------------------------

/// What the dispatcher knows about one shard without asking it: a mirror
/// maintained from its own dispatch decisions and the worker's replies.
struct ShardMirror {
    /// Jobs believed resident (dispatched or migrated in, minus departures
    /// and reclaims). Order is submission order; used for symbiosis scoring.
    resident: Vec<JobArrival>,
    /// Authoritative live count from the last `Stepped` reply (equals
    /// `resident.len()` at round boundaries).
    depth: usize,
    submitted: usize,
    migrated_in: usize,
    migrated_out: usize,
    completed: u64,
    timeslices: u64,
    extrapolated: u64,
    now: u64,
    /// Departure records, accumulated for the report.
    records: Vec<JobRecord>,
    /// Last learner summary reported by the shard (`None` when learning
    /// is off).
    learn: Option<LearnSummary>,
}

impl ShardMirror {
    fn new() -> Self {
        ShardMirror {
            resident: Vec::new(),
            depth: 0,
            submitted: 0,
            migrated_in: 0,
            migrated_out: 0,
            completed: 0,
            timeslices: 0,
            extrapolated: 0,
            now: 0,
            records: Vec::new(),
            learn: None,
        }
    }

    /// Drops one resident entry matching a departed/reclaimed job.
    fn remove_resident(&mut self, arrival: &JobArrival) {
        if let Some(pos) = self.resident.iter().position(|a| a == arrival) {
            self.resident.remove(pos);
        }
    }
}

/// Pairwise profile interference between two benchmarks: how much they
/// compete for the same functional units and cache capacity. The dot
/// product of their normalized instruction-class mixes captures
/// functional-unit and issue-queue overlap (two FP-heavy jobs clash; an
/// FP job and an integer job interleave); the memory term adds pressure
/// when both are load/store-heavy *and* their combined footprints exceed
/// a shared-cache-sized budget.
fn profile_interference(a: Benchmark, b: Benchmark) -> f64 {
    const SHARED_CACHE_BYTES: f64 = (1 << 20) as f64; // L2-ish budget
    let pa = a.profile();
    let pb = b.profile();
    let wa = pa.mix.weights();
    let wb = pb.mix.weights();
    let norm = |w: &[f64; 8]| {
        let s: f64 = w.iter().sum();
        if s > 0.0 {
            s
        } else {
            1.0
        }
    };
    let (na, nb) = (norm(&wa), norm(&wb));
    let unit_overlap: f64 = wa
        .iter()
        .zip(wb.iter())
        .map(|(x, y)| (x / na) * (y / nb))
        .sum();
    // weights() order: [int_alu, int_mul, fp_add, fp_mul, fp_div, load,
    // store, branch] — indices 5 and 6 are the memory classes.
    let mem_a = (wa[5] + wa[6]) / na;
    let mem_b = (wb[5] + wb[6]) / nb;
    let footprint = (pa.data_bytes + pb.data_bytes) as f64;
    let cache_pressure = mem_a * mem_b * (footprint / SHARED_CACHE_BYTES).min(1.0);
    unit_overlap + cache_pressure
}

/// The symbiosis dispatch score of placing `job` on a shard holding
/// `resident`: mean interference against the residents plus a load
/// penalty so deep queues repel even well-matched jobs. Lower is better;
/// an empty shard scores 0.
fn symbiosis_score(job: &JobArrival, resident: &[JobArrival]) -> f64 {
    const LOAD_PENALTY: f64 = 0.05;
    if resident.is_empty() {
        return 0.0;
    }
    let sum: f64 = resident
        .iter()
        .map(|r| profile_interference(job.benchmark, r.benchmark))
        .sum();
    sum / resident.len() as f64 + LOAD_PENALTY * resident.len() as f64
}

// ---------------------------------------------------------------------------
// Cluster metrics
// ---------------------------------------------------------------------------

/// Cluster-level metric handles (per-shard gauges + cluster counters and
/// histograms), registered in a [`MetricsHub`].
struct ClusterMetrics {
    hub: Arc<MetricsHub>,
    shard_depth: Vec<Arc<crate::metrics::Gauge>>,
    shard_now: Vec<Arc<crate::metrics::Gauge>>,
    submitted: Arc<crate::metrics::Counter>,
    completed: Arc<crate::metrics::Counter>,
    migrations: Arc<crate::metrics::Counter>,
    rounds: Arc<crate::metrics::Counter>,
    aggregate_ws: Arc<crate::metrics::Gauge>,
}

impl ClusterMetrics {
    const RESPONSE: &'static str = "cluster.response_cycles";
    const SLOWDOWN: &'static str = "cluster.slowdown_x100";

    fn register(hub: &Arc<MetricsHub>, shards: usize, window_cycles: u64) -> Self {
        let mut shard_depth = Vec::with_capacity(shards);
        let mut shard_now = Vec::with_capacity(shards);
        for s in 0..shards {
            shard_depth.push(hub.gauge(&format!("cluster.shard{s}.queue_depth")));
            shard_now.push(hub.gauge(&format!("cluster.shard{s}.now_cycles")));
        }
        hub.register_histogram(Self::RESPONSE, window_cycles, 8);
        hub.register_histogram(Self::SLOWDOWN, window_cycles, 8);
        ClusterMetrics {
            hub: Arc::clone(hub),
            shard_depth,
            shard_now,
            submitted: hub.counter("cluster.submitted"),
            completed: hub.counter("cluster.completed"),
            migrations: hub.counter("cluster.migrations"),
            rounds: hub.counter("cluster.rounds"),
            aggregate_ws: hub.gauge("cluster.aggregate_ws"),
        }
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// One shard worker: its command channel, reply channel, and thread handle.
struct ShardHandle {
    cmd: mpsc::Sender<Cmd>,
    reply: mpsc::Receiver<Reply>,
    thread: Option<JoinHandle<()>>,
}

/// The two-level cluster scheduler: a dispatcher over N per-core
/// [`OnlineEngine`] shards. Mirrors the engine's facade —
/// [`submit`](Self::submit) / [`step`](Self::step) /
/// [`jump_to`](Self::jump_to) / [`drain`](Self::drain) — so existing
/// drivers scale out by swapping the type.
pub struct ClusterEngine {
    cfg: ClusterConfig,
    shards: Vec<ShardHandle>,
    mirror: Vec<ShardMirror>,
    now: u64,
    rounds: u64,
    submitted: usize,
    completed: u64,
    migrations: u64,
    rr_next: usize,
    /// Completed-job samples for the report: (response, slowdown).
    samples: Vec<(u64, f64)>,
    /// Solo IPC per benchmark (for slowdown and weighted-speedup
    /// accounting; unknown benchmarks fall back to IPC 1.0).
    solo_ipc: HashMap<Benchmark, f64>,
    metrics: Option<ClusterMetrics>,
}

impl ClusterEngine {
    /// Spawns the shard workers and builds the dispatcher.
    ///
    /// # Panics
    /// Panics on an invalid configuration (zero shards or zero
    /// `slices_per_round`), or if a worker thread cannot be spawned.
    pub fn new(cfg: &ClusterConfig) -> Self {
        Self::with_metrics(cfg, None)
    }

    /// Like [`new`](Self::new), additionally registering cluster-wide and
    /// per-shard series in `hub` (per-shard engine families under
    /// `cluster.shard<i>.*`, response/slowdown histograms windowed by the
    /// shard `base_interval`).
    pub fn with_metrics(cfg: &ClusterConfig, hub: Option<&Arc<MetricsHub>>) -> Self {
        cfg.validate();
        let metrics = hub
            .map(|h| ClusterMetrics::register(h, cfg.shards, cfg.shard.base_interval.max(1) * 4));
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let mut shard_cfg = cfg.shard.clone();
            shard_cfg.seed ^= s as u64;
            let scheduler = cfg.scheduler;
            let engine_metrics =
                hub.map(|h| EngineMetrics::register_prefixed(h, &format!("cluster.shard{s}")));
            let learn_metrics = match hub {
                Some(h) if shard_cfg.effective_learn().is_some() => Some(
                    LearnMetrics::register_prefixed(h, &format!("cluster.shard{s}.learn")),
                ),
                _ => None,
            };
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            let thread = std::thread::Builder::new()
                .name(format!("sos-shard-{s}"))
                .spawn(move || {
                    shard_worker(
                        scheduler,
                        shard_cfg,
                        engine_metrics,
                        learn_metrics,
                        cmd_rx,
                        reply_tx,
                    )
                })
                .expect("spawn shard worker");
            shards.push(ShardHandle {
                cmd: cmd_tx,
                reply: reply_rx,
                thread: Some(thread),
            });
        }
        ClusterEngine {
            cfg: cfg.clone(),
            mirror: (0..cfg.shards).map(|_| ShardMirror::new()).collect(),
            shards,
            now: 0,
            rounds: 0,
            submitted: 0,
            completed: 0,
            migrations: 0,
            rr_next: 0,
            samples: Vec::new(),
            solo_ipc: HashMap::new(),
            metrics,
        }
    }

    /// Provides solo IPC per benchmark for slowdown and weighted-speedup
    /// accounting (from [`crate::opensys::calibrate_benchmarks`]). Without
    /// it, solo time falls back to `instructions` cycles (IPC 1.0).
    pub fn set_solo_ipc(&mut self, solo: HashMap<Benchmark, f64>) {
        self.solo_ipc = solo;
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The cluster clock (every shard's clock at the last round boundary).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jobs currently resident across all shards.
    pub fn live_count(&self) -> usize {
        self.mirror.iter().map(|m| m.depth).sum()
    }

    /// Jobs submitted to the cluster over its lifetime.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Jobs completed across all shards.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Jobs migrated between shards by rebalancing.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Queue depth of each shard (dispatcher mirror, exact at round
    /// boundaries).
    pub fn shard_depths(&self) -> Vec<usize> {
        self.mirror.iter().map(|m| m.depth).collect()
    }

    /// Admits a job, routing it to a shard under the dispatch policy, and
    /// returns the chosen shard index.
    pub fn submit(&mut self, arrival: JobArrival) -> usize {
        let shard = self.pick_shard(&arrival);
        self.submitted += 1;
        self.dispatch_to(shard, arrival);
        if let Some(m) = &self.metrics {
            m.submitted.inc();
        }
        shard
    }

    /// Routes `arrival` to `shard`, updating the mirror.
    fn dispatch_to(&mut self, shard: usize, arrival: JobArrival) {
        let m = &mut self.mirror[shard];
        m.submitted += 1;
        m.depth += 1;
        m.resident.push(arrival.clone());
        if let Some(cm) = &self.metrics {
            cm.shard_depth[shard].set(m.depth as f64);
        }
        self.shards[shard]
            .cmd
            .send(Cmd::Submit(arrival))
            .expect("shard worker alive");
    }

    /// The dispatch decision for one arrival.
    fn pick_shard(&mut self, arrival: &JobArrival) -> usize {
        match self.cfg.dispatch {
            DispatchPolicy::RoundRobin => {
                let s = self.rr_next % self.cfg.shards;
                self.rr_next = (self.rr_next + 1) % self.cfg.shards;
                s
            }
            DispatchPolicy::LeastLoaded => self
                .mirror
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.resident.len())
                .map(|(s, _)| s)
                .unwrap_or(0),
            DispatchPolicy::Symbiosis => {
                let mut best = 0usize;
                let mut best_score = f64::INFINITY;
                for (s, m) in self.mirror.iter().enumerate() {
                    let score = symbiosis_score(arrival, &m.resident);
                    if score < best_score {
                        best_score = score;
                        best = s;
                    }
                }
                best
            }
        }
    }

    /// Runs one cluster round: every shard advances `slices_per_round`
    /// timeslices (idle shards jump to the round boundary), departures are
    /// collected in shard order, and rebalancing runs on schedule. Returns
    /// the departed jobs. A round with no live jobs anywhere is a no-op
    /// (use [`jump_to`](Self::jump_to) for idle gaps), mirroring
    /// [`OnlineEngine::step`].
    pub fn step(&mut self) -> Vec<JobRecord> {
        if self.live_count() == 0 {
            return Vec::new();
        }
        let target = self.now + self.cfg.slices_per_round * self.cfg.shard.timeslice;
        for h in &self.shards {
            h.cmd
                .send(Cmd::Step {
                    slices: self.cfg.slices_per_round,
                    target,
                })
                .expect("shard worker alive");
        }
        let mut departed = Vec::new();
        for s in 0..self.shards.len() {
            match self.shards[s].reply.recv().expect("shard worker alive") {
                Reply::Stepped {
                    departed: d,
                    live,
                    now,
                    timeslices,
                    extrapolated,
                    learn,
                } => {
                    let m = &mut self.mirror[s];
                    m.depth = live;
                    m.now = now;
                    m.timeslices = timeslices;
                    m.extrapolated = extrapolated;
                    m.learn = learn;
                    m.completed += d.len() as u64;
                    for rec in &d {
                        m.remove_resident(&rec.arrival);
                        m.records.push(rec.clone());
                    }
                    if let Some(cm) = &self.metrics {
                        cm.shard_depth[s].set(live as f64);
                        cm.shard_now[s].set(now as f64);
                    }
                    departed.extend(d);
                }
                _ => panic!("shard {s}: unexpected reply to Step"),
            }
        }
        self.now = target;
        self.rounds += 1;
        self.completed += departed.len() as u64;
        for rec in &departed {
            let solo = self.solo_cycles(&rec.arrival);
            let slowdown = rec.response() as f64 / solo.max(1.0);
            self.samples.push((rec.response(), slowdown));
            if let Some(cm) = &self.metrics {
                cm.completed.inc();
                cm.hub
                    .record(ClusterMetrics::RESPONSE, self.now, rec.response());
                cm.hub.record(
                    ClusterMetrics::SLOWDOWN,
                    self.now,
                    (slowdown * 100.0).round() as u64,
                );
            }
        }
        if let Some(cm) = &self.metrics {
            cm.rounds.inc();
            if !self.samples.is_empty() {
                cm.aggregate_ws.set(self.aggregate_ws());
            }
        }
        if self.cfg.rebalance_every > 0 && self.rounds.is_multiple_of(self.cfg.rebalance_every) {
            self.rebalance();
        }
        departed
    }

    /// Solo-execution cycles of a job at its benchmark's solo IPC.
    fn solo_cycles(&self, arrival: &JobArrival) -> f64 {
        let ipc = self
            .solo_ipc
            .get(&arrival.benchmark)
            .copied()
            .unwrap_or(1.0);
        arrival.instructions as f64 / ipc.max(1e-9)
    }

    /// Migrates queued-but-not-started jobs from the deepest to the
    /// shallowest shard when the gap reaches the steal threshold. Symbiosis
    /// dispatch re-scores each migrant (it may beat the shallowest shard's
    /// score elsewhere); the baseline policies send migrants straight to
    /// the shallowest shard.
    fn rebalance(&mut self) {
        let Some((deep, _)) = self
            .mirror
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.depth)
            .map(|(s, m)| (s, m.depth))
        else {
            return;
        };
        let shallow = self
            .mirror
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.depth)
            .map(|(s, _)| s)
            .unwrap_or(0);
        let gap = self.mirror[deep].depth - self.mirror[shallow].depth;
        if deep == shallow || gap < self.cfg.steal_threshold.max(2) {
            return;
        }
        let want = gap / 2;
        self.shards[deep]
            .cmd
            .send(Cmd::Reclaim { max: want })
            .expect("shard worker alive");
        let taken = match self.shards[deep].reply.recv().expect("shard worker alive") {
            Reply::Reclaimed(t) => t,
            _ => panic!("shard {deep}: unexpected reply to Reclaim"),
        };
        if taken.is_empty() {
            return;
        }
        let n = taken.len();
        self.mirror[deep].depth -= n;
        self.mirror[deep].migrated_out += n;
        self.mirror[deep].submitted -= n; // re-counted at the destination
        for arrival in taken {
            self.mirror[deep].remove_resident(&arrival);
            let dest = match self.cfg.dispatch {
                DispatchPolicy::Symbiosis => {
                    // Re-score everywhere except the source.
                    let mut best = shallow;
                    let mut best_score = f64::INFINITY;
                    for (s, m) in self.mirror.iter().enumerate() {
                        if s == deep {
                            continue;
                        }
                        let score = symbiosis_score(&arrival, &m.resident);
                        if score < best_score {
                            best_score = score;
                            best = s;
                        }
                    }
                    best
                }
                _ => shallow,
            };
            self.mirror[dest].migrated_in += 1;
            telemetry::instant(
                "cluster",
                "cluster.migration",
                vec![
                    Attr::num("from", deep as f64),
                    Attr::num("to", dest as f64),
                    Attr::text("benchmark", format!("{:?}", arrival.benchmark)),
                ],
            );
            self.dispatch_to(dest, arrival);
            self.migrations += 1;
            if let Some(cm) = &self.metrics {
                cm.migrations.inc();
            }
        }
        if let Some(cm) = &self.metrics {
            cm.shard_depth[deep].set(self.mirror[deep].depth as f64);
        }
    }

    /// Fast-forwards the cluster clock across an idle gap. Only legal when
    /// no shard holds a live job (a busy shard must simulate, not skip).
    ///
    /// # Panics
    /// Panics if any shard still holds live jobs.
    pub fn jump_to(&mut self, t: u64) {
        assert_eq!(
            self.live_count(),
            0,
            "ClusterEngine::jump_to requires an idle cluster"
        );
        if t <= self.now {
            return;
        }
        self.now = t;
        for (s, h) in self.shards.iter().enumerate() {
            h.cmd.send(Cmd::JumpTo(t)).expect("shard worker alive");
            self.mirror[s].now = t;
            if let Some(cm) = &self.metrics {
                cm.shard_now[s].set(t as f64);
            }
        }
    }

    /// Steps until every submitted job has completed (or `max_rounds` is
    /// exhausted). Returns the jobs that departed during the drain.
    pub fn drain(&mut self, max_rounds: u64) -> Vec<JobRecord> {
        let mut departed = Vec::new();
        for _ in 0..max_rounds {
            if self.live_count() == 0 {
                break;
            }
            departed.extend(self.step());
        }
        departed
    }

    /// Cluster-wide weighted speedup so far: solo-equivalent cycles of
    /// completed work per busy machine cycle across all shards.
    pub fn aggregate_ws(&self) -> f64 {
        let solo_total: f64 = self
            .mirror
            .iter()
            .flat_map(|m| m.records.iter())
            .map(|r| self.solo_cycles(&r.arrival))
            .sum();
        let busy: u64 = self
            .mirror
            .iter()
            .map(|m| m.timeslices * self.cfg.shard.timeslice)
            .sum();
        if busy == 0 {
            0.0
        } else {
            solo_total / busy as f64
        }
    }

    /// Builds the deterministic cluster report (syncs final per-shard
    /// totals from the workers first; the engine remains usable after).
    pub fn report(&mut self) -> ClusterReport {
        // Refresh authoritative per-shard totals with a zero-slice step
        // round (a no-op for the simulation: zero slices, target = now).
        for h in &self.shards {
            h.cmd
                .send(Cmd::Step {
                    slices: 0,
                    target: self.now,
                })
                .expect("shard worker alive");
        }
        for s in 0..self.shards.len() {
            if let Reply::Stepped {
                live,
                now,
                timeslices,
                extrapolated,
                learn,
                ..
            } = self.shards[s].reply.recv().expect("shard worker alive")
            {
                let m = &mut self.mirror[s];
                m.depth = live;
                m.now = now;
                m.timeslices = timeslices;
                m.extrapolated = extrapolated;
                m.learn = learn;
            }
        }
        let per_shard: Vec<ShardReport> = self
            .mirror
            .iter()
            .enumerate()
            .map(|(s, m)| ShardReport {
                shard: s,
                seed: self.cfg.shard.seed ^ s as u64,
                submitted: m.submitted,
                migrated_in: m.migrated_in,
                migrated_out: m.migrated_out,
                completed: m.completed,
                timeslices: m.timeslices,
                extrapolated_slices: m.extrapolated,
                now_cycles: m.now,
                final_queue_depth: m.depth,
                records: m.records.clone(),
                learn: m.learn.clone(),
            })
            .collect();
        let responses: Vec<f64> = self.samples.iter().map(|(r, _)| *r as f64).collect();
        let slowdowns: Vec<f64> = self.samples.iter().map(|(_, s)| *s).collect();
        ClusterReport {
            shards: self.cfg.shards,
            dispatch: self.cfg.dispatch.name().to_string(),
            scheduler: self.cfg.scheduler.name().to_string(),
            seed: self.cfg.shard.seed,
            now_cycles: self.now,
            submitted: self.submitted,
            completed: self.completed,
            migrations: self.migrations,
            timeslices: per_shard.iter().map(|p| p.timeslices).sum(),
            extrapolated_slices: per_shard.iter().map(|p| p.extrapolated_slices).sum(),
            fastsim: self.cfg.shard.fastsim.as_ref().map(|p| p.describe()),
            aggregate_ws: self.aggregate_ws(),
            response: percentiles(&responses),
            slowdown: percentiles(&slowdowns),
            per_shard,
        }
    }
}

impl Drop for ClusterEngine {
    fn drop(&mut self) {
        for h in &mut self.shards {
            // The worker may already be gone (panic elsewhere); ignore
            // send/join failures during teardown.
            let _ = h.cmd.send(Cmd::Finish);
        }
        for h in &mut self.shards {
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// The shard worker loop: builds the engine locally (it is not `Send`) and
/// serves dispatcher commands until `Finish`.
fn shard_worker(
    kind: SchedulerKind,
    cfg: OnlineConfig,
    metrics: Option<EngineMetrics>,
    learn_metrics: Option<LearnMetrics>,
    cmd: mpsc::Receiver<Cmd>,
    reply: mpsc::Sender<Reply>,
) {
    let mut engine = OnlineEngine::new(kind, &cfg);
    if let Some(m) = metrics {
        engine.attach_metrics(m);
    }
    if let Some(m) = learn_metrics {
        engine.attach_learn_metrics(m);
    }
    while let Ok(c) = cmd.recv() {
        match c {
            Cmd::Submit(arrival) => {
                engine.submit(arrival);
            }
            Cmd::Step { slices, target } => {
                let mut departed = Vec::new();
                for _ in 0..slices {
                    if engine.live_count() == 0 {
                        break;
                    }
                    departed.extend(engine.step());
                }
                // Land exactly on the round boundary whether we ran all
                // slices, idled early, or were empty all along.
                engine.jump_to(target);
                let r = Reply::Stepped {
                    departed,
                    live: engine.live_count(),
                    now: engine.now(),
                    timeslices: engine.timeslices(),
                    extrapolated: engine
                        .fastsim_counters()
                        .map(|c| c.extrapolated_slices)
                        .unwrap_or(0),
                    learn: engine.learn_summary(),
                };
                if reply.send(r).is_err() {
                    break;
                }
            }
            Cmd::JumpTo(t) => engine.jump_to(t),
            Cmd::Reclaim { max } => {
                let taken = engine.reclaim_unstarted(max);
                if reply.send(Reply::Reclaimed(taken)).is_err() {
                    break;
                }
            }
            Cmd::Finish => break,
        }
    }
}

/// Replays an arrival trace through a cluster with the canonical
/// open-system discipline (submit arrivals that are due, step when busy,
/// jump across idle gaps), then drains. Returns all departures in
/// round/shard order. The cluster-side twin of
/// [`crate::opensys::run_open_system_on_trace`].
pub fn run_cluster_on_trace(
    engine: &mut ClusterEngine,
    jobs: &[JobArrival],
    max_rounds: u64,
) -> Vec<JobRecord> {
    let mut next = 0usize;
    let mut departed = Vec::new();
    let mut rounds = 0u64;
    while (next < jobs.len() || engine.live_count() > 0) && rounds < max_rounds {
        while next < jobs.len() && jobs[next].arrival <= engine.now() {
            engine.submit(jobs[next].clone());
            next += 1;
        }
        if engine.live_count() == 0 {
            if next < jobs.len() {
                engine.jump_to(jobs[next].arrival);
            }
            continue;
        }
        departed.extend(engine.step());
        rounds += 1;
    }
    departed.extend(engine.drain(max_rounds));
    departed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorKind;

    fn shard_cfg(seed: u64) -> OnlineConfig {
        OnlineConfig {
            smt: 2,
            timeslice: 2_000,
            sample_schedules: 3,
            predictor: PredictorKind::Score,
            drift_threshold: None,
            base_interval: 30_000,
            seed,
            fastsim: None,
            learn: None,
        }
    }

    fn job(arrival: u64, benchmark: Benchmark, instructions: u64) -> JobArrival {
        JobArrival {
            arrival,
            benchmark,
            instructions,
            phased: false,
        }
    }

    #[test]
    fn dispatch_policy_parses() {
        assert_eq!(
            DispatchPolicy::parse("rr"),
            Some(DispatchPolicy::RoundRobin)
        );
        assert_eq!(
            DispatchPolicy::parse("Least-Loaded"),
            Some(DispatchPolicy::LeastLoaded)
        );
        assert_eq!(
            DispatchPolicy::parse("symbiosis"),
            Some(DispatchPolicy::Symbiosis)
        );
        assert_eq!(DispatchPolicy::parse("hash"), None);
        assert_eq!(DispatchPolicy::Symbiosis.name(), "symbiosis");
    }

    #[test]
    fn round_robin_cycles_shards() {
        let cfg = ClusterConfig::new(
            3,
            DispatchPolicy::RoundRobin,
            SchedulerKind::Naive,
            shard_cfg(1),
        );
        let mut c = ClusterEngine::new(&cfg);
        let picks: Vec<usize> = (0..6)
            .map(|_| c.submit(job(0, Benchmark::Gcc, 10_000)))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(c.live_count(), 6);
    }

    #[test]
    fn least_loaded_fills_empty_shards_first() {
        let cfg = ClusterConfig::new(
            2,
            DispatchPolicy::LeastLoaded,
            SchedulerKind::Naive,
            shard_cfg(1),
        );
        let mut c = ClusterEngine::new(&cfg);
        assert_eq!(c.submit(job(0, Benchmark::Gcc, 10_000)), 0);
        assert_eq!(c.submit(job(0, Benchmark::Gcc, 10_000)), 1);
        assert_eq!(c.submit(job(0, Benchmark::Gcc, 10_000)), 0);
    }

    #[test]
    fn symbiosis_score_prefers_complementary_mixes() {
        // An FP-heavy resident should repel another FP-heavy job more than
        // an integer job (functional-unit overlap dominates the score).
        let resident = vec![job(0, Benchmark::Fp, 10_000)];
        let fp_score = symbiosis_score(&job(0, Benchmark::Swim, 10_000), &resident);
        let int_score = symbiosis_score(&job(0, Benchmark::Gcc, 10_000), &resident);
        assert!(
            int_score < fp_score,
            "int job should interfere less with an FP resident \
             (int={int_score:.4} fp={fp_score:.4})"
        );
        // Empty shards attract.
        assert_eq!(symbiosis_score(&job(0, Benchmark::Fp, 10_000), &[]), 0.0);
    }

    #[test]
    fn cluster_completes_all_jobs_and_reports() {
        let cfg = ClusterConfig::new(
            2,
            DispatchPolicy::LeastLoaded,
            SchedulerKind::Naive,
            shard_cfg(7),
        );
        let mut c = ClusterEngine::new(&cfg);
        for i in 0..6 {
            c.submit(job(0, Benchmark::Gcc, 20_000 + i * 1_000));
        }
        let done = c.drain(100_000);
        assert_eq!(done.len(), 6);
        assert_eq!(c.completed(), 6);
        assert_eq!(c.live_count(), 0);
        let report = c.report();
        assert_eq!(report.completed, 6);
        assert_eq!(report.submitted, 6);
        assert_eq!(report.per_shard.len(), 2);
        let per_shard_total: u64 = report.per_shard.iter().map(|p| p.completed).sum();
        assert_eq!(per_shard_total, 6);
        assert!(report.aggregate_ws > 0.0);
        assert!(report.response.p99 >= report.response.p50);
    }

    #[test]
    fn idle_cluster_step_is_noop_and_jump_advances_all_shards() {
        let cfg = ClusterConfig::new(
            2,
            DispatchPolicy::RoundRobin,
            SchedulerKind::Naive,
            shard_cfg(3),
        );
        let mut c = ClusterEngine::new(&cfg);
        assert!(c.step().is_empty());
        assert_eq!(c.now(), 0);
        c.jump_to(50_000);
        assert_eq!(c.now(), 50_000);
        // A job submitted after the jump lands at the jumped clock.
        c.submit(job(50_000, Benchmark::Gcc, 5_000));
        let done = c.drain(1_000);
        assert_eq!(done.len(), 1);
        assert!(done[0].departure > 50_000);
    }

    #[test]
    fn learned_shards_report_learner_summaries_deterministically() {
        let run = || {
            let mut shard = shard_cfg(21);
            shard.predictor = PredictorKind::Bandit;
            let cfg = ClusterConfig::new(2, DispatchPolicy::RoundRobin, SchedulerKind::Sos, shard);
            let mut c = ClusterEngine::new(&cfg);
            let benches = [
                Benchmark::Gcc,
                Benchmark::Fp,
                Benchmark::Swim,
                Benchmark::Mg,
                Benchmark::Go,
                Benchmark::Is,
            ];
            for (i, b) in benches.iter().cycle().take(12).enumerate() {
                c.submit(job(0, *b, 60_000 + i as u64 * 1_000));
            }
            let done = c.drain(1_000_000);
            assert_eq!(done.len(), 12);
            c.report()
        };
        let report = run();
        for p in &report.per_shard {
            let learn = p
                .learn
                .as_ref()
                .expect("learned shard must report a learner summary");
            assert!(learn.bandit_pulls > 0, "shard {} never pulled", p.shard);
            assert!(learn.train_updates > 0, "shard {} never trained", p.shard);
        }
        // Distinct shard seeds derive distinct learner exploration streams,
        // yet the cluster run is still byte-reproducible.
        let again = run();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn unlearned_shards_report_no_learner() {
        let cfg = ClusterConfig::new(
            1,
            DispatchPolicy::RoundRobin,
            SchedulerKind::Sos,
            shard_cfg(5),
        );
        let mut c = ClusterEngine::new(&cfg);
        c.submit(job(0, Benchmark::Gcc, 30_000));
        c.drain(100_000);
        let report = c.report();
        assert!(report.per_shard[0].learn.is_none());
    }

    #[test]
    fn rebalancing_steals_from_deep_to_shallow() {
        let shard = shard_cfg(11);
        let mut cfg =
            ClusterConfig::new(2, DispatchPolicy::RoundRobin, SchedulerKind::Naive, shard);
        cfg.rebalance_every = 1;
        cfg.steal_threshold = 2;
        let mut c = ClusterEngine::new(&cfg);
        // Pile every job onto shard 0 by hand to force an imbalance.
        for i in 0..8 {
            c.submitted += 1;
            c.dispatch_to(0, job(0, Benchmark::Gcc, 50_000 + i * 1_000));
        }
        let done = c.drain(1_000_000);
        assert_eq!(done.len(), 8, "every job completes despite migration");
        assert!(c.migrations() > 0, "imbalance must trigger stealing");
        let report = c.report();
        let migrated_out: usize = report.per_shard.iter().map(|p| p.migrated_out).sum();
        let migrated_in: usize = report.per_shard.iter().map(|p| p.migrated_in).sum();
        assert_eq!(migrated_out, migrated_in, "migration conserves jobs");
        assert_eq!(report.migrations as usize, migrated_in);
    }
}

//! Content-addressed memoization of deterministic evaluation results.
//!
//! PR 2's replay harness proved that every evaluation this workspace runs is
//! a pure function of its inputs: the same (machine configuration, workload,
//! seed, schedule, timeslice/rotation parameters) always produces
//! byte-identical results. That makes results safely *cacheable*, and the
//! figure/table suite — which re-runs solo-IPC calibration per binary and
//! re-simulates every candidate schedule from scratch — mostly re-derives
//! values it has already computed.
//!
//! [`EvalCache`] memoizes the three expensive evaluation primitives:
//!
//! * solo-IPC calibration ([`SoloRates`]) — [`EvalCache::solo_rates`],
//! * per-schedule sample rotations ([`RotationStats`]) and symbios-phase
//!   totals — [`EvalCache::sample_rotations`], [`EvalCache::symbios`],
//! * the open system's per-benchmark IPC table —
//!   [`EvalCache::bench_rates`].
//!
//! Keys are flat strings assembled from the stable machine-config hash
//! ([`smtsim::MachineConfig::stable_hash`]), the workload/jobmix spec label,
//! the RNG seed, the schedule's canonical execution key (the exact tuple
//! sequence a rotation runs), and the timeslice/rotation parameters — see
//! the `*_key` builders. Anything that can change a simulated result is in
//! the key; anything else (telemetry, worker counts) is excluded because it
//! cannot.
//!
//! Storage is an in-memory map plus an optional on-disk JSONL store
//! (conventionally `results/cache/eval-cache.jsonl`, see
//! [`EvalCache::attach_disk`]). The disk file starts with a versioned
//! header; a header whose [`KEY_SCHEMA`] or crate version disagrees with
//! this build invalidates the whole file, and individual entries that fail
//! to parse or fail validation are ignored rather than trusted.
//!
//! The cache is **opt-in**: the process-wide instance behind the free
//! functions ([`enable`], [`solo_rates`], ...) starts disabled, so library
//! users and the test suite see uncached behavior unless they ask for it.
//! The experiment binaries enable it via `sos_bench::init_cache`.

use crate::runner::RotationStats;
use crate::schedule::Schedule;
use crate::ws::SoloRates;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use workloads::Benchmark;

/// Version of the key layout produced by the `*_key` builders *and* of the
/// evaluation semantics behind them (e.g. how many warm-up rotations a
/// candidate evaluation runs). Bump it whenever either changes: a disk store
/// written under a different schema is discarded wholesale.
pub const KEY_SCHEMA: u32 = 1;

/// Crate version baked into the disk header; entries written by a different
/// build of the crate are discarded (simulator changes legitimately change
/// results without touching the key schema).
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// File name of the JSONL store inside the directory given to
/// [`EvalCache::attach_disk`].
pub const STORE_FILE: &str = "eval-cache.jsonl";

/// Totals of a symbios phase: everything `WS(t)` needs, without the
/// per-slice detail (a symbios phase runs many rotations; storing every
/// slice would dwarf the sample entries for no consumer).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SymbiosEval {
    /// Committed instructions per pool thread over the phase.
    pub committed: Vec<u64>,
    /// Cycles the phase ran.
    pub cycles: u64,
}

/// One benchmark's measured solo IPC (the open system's calibration table,
/// stored as a deterministic list rather than a `HashMap` so serialized
/// entries are byte-stable).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRate {
    /// The benchmark measured.
    pub bench: Benchmark,
    /// Its solo IPC on the keyed machine.
    pub ipc: f64,
}

/// A cached value. Exactly one field is populated; which one is implied by
/// the key prefix. (The vendored serde derives support structs but not
/// data-carrying enums, so this is a struct of options rather than an enum.)
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Payload {
    /// Solo-IPC calibration result ([`SoloRates`] as a plain vector).
    pub solo: Option<Vec<f64>>,
    /// Sample-phase rotations of one candidate schedule.
    pub sample: Option<Vec<RotationStats>>,
    /// Symbios-phase totals of one candidate schedule.
    pub symbios: Option<SymbiosEval>,
    /// The open system's per-benchmark solo-IPC table.
    pub bench_ipc: Option<Vec<BenchRate>>,
}

/// First line of the JSONL store: identifies the key schema and crate
/// version the entries were written under.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Header {
    key_schema: u32,
    crate_version: String,
}

impl Header {
    fn current() -> Self {
        Header {
            key_schema: KEY_SCHEMA,
            crate_version: CRATE_VERSION.to_string(),
        }
    }
}

/// One stored line after the header.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Entry {
    key: String,
    payload: Payload,
}

/// Hit/miss totals since the cache was created (or last [`EvalCache::clear`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation (including entries present
    /// but rejected by validation).
    pub misses: u64,
}

// ---------------------------------------------------------------------------
// Key builders
// ---------------------------------------------------------------------------

/// The canonical execution key of a schedule: the exact coschedule sequence
/// one rotation runs, each tuple in canonical (sorted) form.
///
/// Two schedules with this key equal execute identically, slice for slice —
/// which is the equivalence caching needs. (It is finer than
/// [`Schedule::canonical_key`], which identifies the unordered tuple *set*:
/// two representatives of the same set can run their slices in different
/// orders and measure different counters.)
pub fn schedule_key(schedule: &Schedule) -> String {
    schedule
        .tuples()
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(">")
}

/// Key of a solo-IPC calibration ([`crate::runner::Runner::calibrate_solo`]).
pub fn solo_key(machine_hash: u64, workload: &str, seed: u64, warmup: u64, measure: u64) -> String {
    format!("solo|m{machine_hash:016x}|w{workload}|s{seed:x}|c{warmup}+{measure}")
}

/// Key of one candidate's sample-phase rotations.
pub fn sample_key(
    machine_hash: u64,
    workload: &str,
    seed: u64,
    schedule: &str,
    timeslice: u64,
    rotations: usize,
) -> String {
    format!(
        "sample|m{machine_hash:016x}|w{workload}|s{seed:x}|k{schedule}|t{timeslice}|r{rotations}"
    )
}

/// Key of one candidate's symbios-phase totals.
pub fn symbios_key(
    machine_hash: u64,
    workload: &str,
    seed: u64,
    schedule: &str,
    timeslice: u64,
    cycles: u64,
) -> String {
    format!("symbios|m{machine_hash:016x}|w{workload}|s{seed:x}|k{schedule}|t{timeslice}|y{cycles}")
}

/// Key of the open system's per-benchmark calibration table.
pub fn bench_ipc_key(machine_hash: u64, cycles: u64, seed: u64) -> String {
    format!("bipc|m{machine_hash:016x}|c{cycles}|s{seed:x}")
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Inner {
    map: HashMap<String, Payload>,
    disk: Option<PathBuf>,
}

/// A content-addressed evaluation cache: in-memory map, optional JSONL
/// write-through store, hit/miss counters.
///
/// Lookups and inserts are no-ops while the cache is disabled (the initial
/// state), so wrapping a computation in a `get_or_compute` helper costs
/// nothing until someone opts in. All methods take `&self` and are safe to
/// call from [`crate::par::parallel_map_with_workers`] workers; two workers
/// racing on the same key simply compute the same (deterministic) value
/// twice and the second insert overwrites the first with an identical
/// payload.
pub struct EvalCache {
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<Inner>,
}

impl EvalCache {
    /// A fresh, empty, **disabled** cache.
    pub fn new() -> Self {
        EvalCache {
            enabled: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Turns lookups and inserts on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Turns the cache off; entries are kept but not consulted.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether lookups are currently served.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Drops every entry, detaches the disk store, and zeroes the counters
    /// (the enabled flag is untouched).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.disk = None;
        self.hits.store(0, Ordering::SeqCst);
        self.misses.store(0, Ordering::SeqCst);
    }

    /// Hit/miss totals so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
        }
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attaches (and loads) the JSONL store at `dir/eval-cache.jsonl`,
    /// creating the directory and file as needed. Returns how many entries
    /// were loaded into memory.
    ///
    /// If the file's header is missing, unparsable, or names a different
    /// [`KEY_SCHEMA`] or crate version, the whole file is considered stale:
    /// it is truncated and rewritten with a fresh header, and 0 entries
    /// load. Entry lines that fail to parse are skipped. Subsequent inserts
    /// are appended to the file.
    pub fn attach_disk(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(STORE_FILE);
        let mut loaded = 0usize;
        let mut valid_store = false;
        if let Ok(contents) = std::fs::read_to_string(&path) {
            let mut lines = contents.lines();
            let header_ok = lines
                .next()
                .and_then(|l| serde_json::from_str::<Header>(l).ok())
                .is_some_and(|h| h == Header::current());
            if header_ok {
                valid_store = true;
                let mut inner = self.lock();
                for line in lines {
                    if let Ok(entry) = serde_json::from_str::<Entry>(line) {
                        inner.map.insert(entry.key, entry.payload);
                        loaded += 1;
                    }
                }
            }
        }
        if !valid_store {
            // Stale or absent: start a fresh store under the current header.
            let mut f = std::fs::File::create(&path)?;
            writeln!(
                f,
                "{}",
                serde_json::to_string(&Header::current()).expect("header serializes")
            )?;
        }
        self.lock().disk = Some(path);
        Ok(loaded)
    }

    /// Detaches the disk store; in-memory entries are kept.
    pub fn detach_disk(&self) {
        self.lock().disk = None;
    }

    /// Inserts an entry, writing through to the disk store if one is
    /// attached. A disk write failure silently detaches the store (caching
    /// is best-effort; the computation already succeeded).
    pub fn insert(&self, key: &str, payload: Payload) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if let Some(path) = inner.disk.clone() {
            let line = serde_json::to_string(&Entry {
                key: key.to_string(),
                payload: payload.clone(),
            })
            .expect("cache entry serializes");
            let appended = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if appended.is_err() {
                inner.disk = None;
            }
        }
        inner.map.insert(key.to_string(), payload);
    }

    /// Memoizes a solo-IPC calibration. Cached vectors must be non-empty
    /// with positive, finite rates (the [`SoloRates`] invariant); anything
    /// else counts as a miss and is recomputed.
    pub fn solo_rates(&self, key: &str, compute: impl FnOnce() -> SoloRates) -> SoloRates {
        if !self.is_enabled() {
            return compute();
        }
        if let Some(v) = self.raw_get(key).and_then(|p| p.solo) {
            if !v.is_empty() && v.iter().all(|r| r.is_finite() && *r > 0.0) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return SoloRates::new(v);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = compute();
        self.insert(
            key,
            Payload {
                solo: Some(out.as_slice().to_vec()),
                ..Payload::default()
            },
        );
        out
    }

    /// Memoizes one candidate's sample-phase rotations. Cached entries must
    /// be non-empty and slice-consistent; anything else is recomputed.
    pub fn sample_rotations(
        &self,
        key: &str,
        compute: impl FnOnce() -> Vec<RotationStats>,
    ) -> Vec<RotationStats> {
        if !self.is_enabled() {
            return compute();
        }
        if let Some(rots) = self.raw_get(key).and_then(|p| p.sample) {
            let consistent = !rots.is_empty()
                && rots
                    .iter()
                    .all(|r| !r.slices.is_empty() && r.slices.len() == r.tuples.len());
            if consistent {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return rots;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = compute();
        self.insert(
            key,
            Payload {
                sample: Some(out.clone()),
                ..Payload::default()
            },
        );
        out
    }

    /// Memoizes one candidate's symbios-phase totals. Cached entries must
    /// cover a non-empty interval; anything else is recomputed.
    pub fn symbios(&self, key: &str, compute: impl FnOnce() -> SymbiosEval) -> SymbiosEval {
        if !self.is_enabled() {
            return compute();
        }
        if let Some(ev) = self.raw_get(key).and_then(|p| p.symbios) {
            if ev.cycles > 0 && !ev.committed.is_empty() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ev;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = compute();
        self.insert(
            key,
            Payload {
                symbios: Some(out.clone()),
                ..Payload::default()
            },
        );
        out
    }

    /// Memoizes the open system's per-benchmark solo-IPC table. Cached
    /// tables must be non-empty with positive, finite rates.
    pub fn bench_rates(
        &self,
        key: &str,
        compute: impl FnOnce() -> Vec<BenchRate>,
    ) -> Vec<BenchRate> {
        if !self.is_enabled() {
            return compute();
        }
        if let Some(rates) = self.raw_get(key).and_then(|p| p.bench_ipc) {
            if !rates.is_empty() && rates.iter().all(|r| r.ipc.is_finite() && r.ipc > 0.0) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return rates;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = compute();
        self.insert(
            key,
            Payload {
                bench_ipc: Some(out.clone()),
                ..Payload::default()
            },
        );
        out
    }

    fn raw_get(&self, key: &str) -> Option<Payload> {
        self.lock().map.get(key).cloned()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

// ---------------------------------------------------------------------------
// The process-wide cache
// ---------------------------------------------------------------------------

fn global() -> &'static EvalCache {
    static GLOBAL: OnceLock<EvalCache> = OnceLock::new();
    GLOBAL.get_or_init(EvalCache::new)
}

/// Enables the process-wide cache (it starts disabled).
pub fn enable() {
    global().enable();
}

/// Disables the process-wide cache; entries are kept but not consulted.
pub fn disable() {
    global().disable();
}

/// Whether the process-wide cache is enabled.
pub fn is_enabled() -> bool {
    global().is_enabled()
}

/// Clears the process-wide cache (entries, disk attachment, counters).
pub fn clear() {
    global().clear();
}

/// Hit/miss totals of the process-wide cache.
pub fn stats() -> CacheStats {
    global().stats()
}

/// Attaches the process-wide cache to a disk store; see
/// [`EvalCache::attach_disk`].
pub fn attach_disk(dir: &Path) -> std::io::Result<usize> {
    global().attach_disk(dir)
}

/// Detaches the process-wide cache's disk store.
pub fn detach_disk() {
    global().detach_disk();
}

/// [`EvalCache::solo_rates`] on the process-wide cache.
pub fn solo_rates(key: &str, compute: impl FnOnce() -> SoloRates) -> SoloRates {
    global().solo_rates(key, compute)
}

/// [`EvalCache::sample_rotations`] on the process-wide cache.
pub fn sample_rotations(
    key: &str,
    compute: impl FnOnce() -> Vec<RotationStats>,
) -> Vec<RotationStats> {
    global().sample_rotations(key, compute)
}

/// [`EvalCache::symbios`] on the process-wide cache.
pub fn symbios(key: &str, compute: impl FnOnce() -> SymbiosEval) -> SymbiosEval {
    global().symbios(key, compute)
}

/// [`EvalCache::bench_rates`] on the process-wide cache.
pub fn bench_rates(key: &str, compute: impl FnOnce() -> Vec<BenchRate>) -> Vec<BenchRate> {
    global().bench_rates(key, compute)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_computes_every_time_and_counts_nothing() {
        let c = EvalCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let ev = c.symbios("k", || {
                calls += 1;
                SymbiosEval {
                    committed: vec![1],
                    cycles: 10,
                }
            });
            assert_eq!(ev.cycles, 10);
        }
        assert_eq!(calls, 3);
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.is_empty());
    }

    #[test]
    fn enabled_cache_hits_after_first_miss() {
        let c = EvalCache::new();
        c.enable();
        let mut calls = 0;
        for _ in 0..3 {
            let solo = c.solo_rates("k", || {
                calls += 1;
                SoloRates::new(vec![1.5, 2.0])
            });
            assert_eq!(solo.as_slice(), &[1.5, 2.0]);
        }
        assert_eq!(calls, 1);
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mistyped_or_invalid_payloads_count_as_misses() {
        let c = EvalCache::new();
        c.enable();
        // A symbios payload under a key we then ask for solo rates: the typed
        // getter must not trust it.
        c.insert(
            "k",
            Payload {
                symbios: Some(SymbiosEval {
                    committed: vec![1],
                    cycles: 1,
                }),
                ..Payload::default()
            },
        );
        let solo = c.solo_rates("k", || SoloRates::new(vec![1.0]));
        assert_eq!(solo.as_slice(), &[1.0]);
        // A corrupt solo vector (non-positive rate) is rejected, not trusted.
        c.insert(
            "bad",
            Payload {
                solo: Some(vec![0.0, -1.0]),
                ..Payload::default()
            },
        );
        let solo = c.solo_rates("bad", || SoloRates::new(vec![2.0]));
        assert_eq!(solo.as_slice(), &[2.0]);
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn payload_round_trips_through_json() {
        let p = Payload {
            sample: Some(vec![RotationStats {
                slices: vec![],
                tuples: vec![],
            }]),
            ..Payload::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: Payload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        let e = Entry {
            key: "sample|m00|wX|s0|k01>23|t5000|r3".into(),
            payload: p,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Entry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn keys_separate_every_component() {
        let keys = [
            solo_key(1, "Jsb(6,3,3)", 2, 3, 4),
            solo_key(9, "Jsb(6,3,3)", 2, 3, 4),
            solo_key(1, "Jsb(4,2,2)", 2, 3, 4),
            solo_key(1, "Jsb(6,3,3)", 9, 3, 4),
            solo_key(1, "Jsb(6,3,3)", 2, 9, 4),
            solo_key(1, "Jsb(6,3,3)", 2, 3, 9),
            sample_key(1, "Jsb(6,3,3)", 2, "012>345", 5, 6),
            sample_key(1, "Jsb(6,3,3)", 2, "045>123", 5, 6),
            sample_key(1, "Jsb(6,3,3)", 2, "012>345", 7, 6),
            sample_key(1, "Jsb(6,3,3)", 2, "012>345", 5, 7),
            symbios_key(1, "Jsb(6,3,3)", 2, "012>345", 5, 6),
            bench_ipc_key(1, 2, 3),
        ];
        let unique: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "{keys:?}");
    }

    #[test]
    fn schedule_key_distinguishes_execution_order() {
        // Same canonical tuple set, different rotation order: must key apart.
        let a = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let b = Schedule::new(vec![2, 3, 0, 1], 2, 2);
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_ne!(schedule_key(&a), schedule_key(&b));
        assert_eq!(schedule_key(&a), schedule_key(&a.clone()));
    }
}

//! Live-service metrics: a lock-cheap facade over the telemetry primitives.
//!
//! [`crate::telemetry`] is a *recording* layer: probes buffer events and
//! metrics behind one mutex, and everything is exported after the run. A
//! long-running service needs the opposite shape — metrics that are cheap to
//! write from a hot scheduler loop and cheap to *read while the process
//! serves* — so this module adds:
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics, handed out as
//!   [`std::sync::Arc`] handles so hot paths never touch a map or a lock;
//! * [`WindowedHistogram`] — the PR-1 log2-bucket [`Histogram`] sliced into
//!   rotating time windows on the simulated-cycle clock, with bounded raw
//!   samples per window for **exact** p50/p95/p99/p999 (via
//!   [`crate::report::percentile`]) and a deterministic cross-worker
//!   [`WindowedHistogram::merge`];
//! * [`SloTracker`] — a good/total objective (e.g. "99% of responses under
//!   50M cycles") with attainment and error-budget burn rate;
//! * [`MetricsHub`] — the named registry tying those together, snapshotted
//!   as a versioned serde document ([`MetricsSnapshot`]) and rendered as
//!   Prometheus-style text exposition
//!   ([`MetricsSnapshot::prometheus_text`]).
//!
//! The `sos-serve` daemon owns a hub, attaches [`EngineMetrics`] to its
//! [`crate::online::OnlineEngine`], and answers the `metrics` protocol verb
//! from [`MetricsHub::snapshot`]; `sos-top` renders the same snapshot as a
//! live terminal dashboard. An engine without attached metrics pays nothing
//! (one `Option` check), so batch reproductions are byte-identical.

use crate::report::percentile;
use crate::telemetry::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version of the [`MetricsSnapshot`] schema carried by the `metrics`
/// protocol verb; bump on incompatible change so pollers can detect a
/// mismatch instead of misreading fields.
pub const METRICS_VERSION: u32 = 1;

/// Raw samples retained per histogram window for exact quantiles. Past the
/// cap a window keeps counting in its log2 buckets but stops retaining
/// samples, and the quantile summary degrades to the bucket approximation
/// (flagged via [`HistogramSnapshot::exact`]).
pub const WINDOW_SAMPLE_CAP: usize = 8_192;

// ---------------------------------------------------------------------------
// Atomic scalar metrics
// ---------------------------------------------------------------------------

/// A monotonic counter: one relaxed atomic, safe to share across threads.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge: an `f64` stored as atomic bits.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Windowed histograms
// ---------------------------------------------------------------------------

/// The p50/p95/p99/p999 summary of a distribution. All fields are `NaN`
/// when the distribution is empty (serialized as JSON `null`, matching
/// [`crate::report::Percentiles`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Quantiles {
    /// The all-`NaN` summary of an empty distribution.
    pub fn empty() -> Self {
        Quantiles {
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
            p999: f64::NAN,
        }
    }

    /// Exact nearest-rank quantiles of `values` via
    /// [`crate::report::percentile`].
    pub fn exact(values: &[f64]) -> Self {
        Quantiles {
            p50: percentile(values, 50.0),
            p95: percentile(values, 95.0),
            p99: percentile(values, 99.0),
            p999: percentile(values, 99.9),
        }
    }
}

/// One rotation window of a [`WindowedHistogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Window {
    /// Window index on the cycle clock: `now / window_cycles`.
    index: u64,
    /// Log2-bucket counts for the window.
    hist: Histogram,
    /// Raw samples, capped at [`WINDOW_SAMPLE_CAP`].
    samples: Vec<u64>,
}

impl Window {
    fn new(index: u64) -> Self {
        Window {
            index,
            hist: Histogram::default(),
            samples: Vec::new(),
        }
    }

    fn record(&mut self, value: u64) {
        self.hist.record(value);
        if self.samples.len() < WINDOW_SAMPLE_CAP {
            self.samples.push(value);
        }
    }
}

/// A log2-bucket histogram sliced into rotating time windows.
///
/// Values are recorded with an explicit clock (simulated cycles); the
/// histogram keeps the most recent `max_windows` windows of `window_cycles`
/// each, so reads see a sliding view of roughly
/// `window_cycles × max_windows` cycles. Each window also retains up to
/// [`WINDOW_SAMPLE_CAP`] raw samples, making the quantile summary *exact*
/// (nearest-rank over the retained span) until a window overflows its cap.
///
/// Merging is deterministic: windows align by index and samples concatenate
/// in `self`-then-`other` order, so merging per-worker shards in a fixed
/// order always produces the same result (see the `par` merge test).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowedHistogram {
    /// Cycles per window.
    window_cycles: u64,
    /// Windows retained (older windows are evicted).
    max_windows: usize,
    /// Live windows, oldest first.
    windows: Vec<Window>,
    /// Values recorded over the histogram's lifetime (across evictions).
    total_count: u64,
    /// Sum of values recorded over the histogram's lifetime.
    total_sum: u64,
}

impl WindowedHistogram {
    /// A histogram rotating every `window_cycles` cycles, keeping
    /// `max_windows` windows.
    ///
    /// # Panics
    /// Panics if `window_cycles == 0` or `max_windows == 0`.
    pub fn new(window_cycles: u64, max_windows: usize) -> Self {
        assert!(
            window_cycles > 0 && max_windows > 0,
            "windowed histogram needs a positive window size and count"
        );
        WindowedHistogram {
            window_cycles,
            max_windows,
            windows: Vec::new(),
            total_count: 0,
            total_sum: 0,
        }
    }

    /// Cycles per window.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Records `value` at clock `now`, rotating windows as needed.
    pub fn record(&mut self, now: u64, value: u64) {
        let index = now / self.window_cycles;
        match self.windows.last_mut() {
            Some(last) if last.index >= index => {
                // Same window (or a late sample after rotation: book it into
                // the current window rather than resurrecting an old one).
                self.windows.last_mut().expect("nonempty").record(value);
            }
            _ => {
                self.windows.push(Window::new(index));
                if self.windows.len() > self.max_windows {
                    let excess = self.windows.len() - self.max_windows;
                    self.windows.drain(..excess);
                }
                self.windows.last_mut().expect("just pushed").record(value);
            }
        }
        self.total_count += 1;
        self.total_sum = self.total_sum.saturating_add(value);
    }

    /// Drops windows that ended more than `max_windows` windows before
    /// `now`, so an idle histogram ages out instead of pinning stale data.
    pub fn expire(&mut self, now: u64) {
        let current = now / self.window_cycles;
        let horizon = current.saturating_sub(self.max_windows as u64);
        self.windows.retain(|w| w.index >= horizon);
    }

    /// Values recorded in the live windows.
    pub fn count(&self) -> u64 {
        self.windows.iter().map(|w| w.hist.count).sum()
    }

    /// Values recorded over the histogram's lifetime (across evictions).
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Live windows currently retained.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The live windows merged into one log2-bucket [`Histogram`].
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::default();
        for w in &self.windows {
            out.merge(&w.hist);
        }
        out
    }

    /// Whether every live window still retains all of its raw samples (if
    /// so, [`WindowedHistogram::quantiles`] is exact).
    pub fn is_exact(&self) -> bool {
        self.windows
            .iter()
            .all(|w| w.samples.len() as u64 == w.hist.count)
    }

    /// Quantile summary over the live windows: exact nearest-rank over the
    /// retained raw samples while [`is_exact`](Self::is_exact), otherwise
    /// the log2-bucket lower-bound approximation.
    pub fn quantiles(&self) -> Quantiles {
        if self.count() == 0 {
            return Quantiles::empty();
        }
        if self.is_exact() {
            let samples: Vec<f64> = self
                .windows
                .iter()
                .flat_map(|w| w.samples.iter().map(|&v| v as f64))
                .collect();
            Quantiles::exact(&samples)
        } else {
            let merged = self.merged();
            Quantiles {
                p50: merged.approx_quantile(0.50) as f64,
                p95: merged.approx_quantile(0.95) as f64,
                p99: merged.approx_quantile(0.99) as f64,
                p999: merged.approx_quantile(0.999) as f64,
            }
        }
    }

    /// Merges another histogram's windows into this one, aligning by window
    /// index. Both sides must share the same `window_cycles`; the result
    /// keeps at most `max_windows` of the newest windows. Deterministic:
    /// same inputs in the same order, same output.
    ///
    /// # Panics
    /// Panics if the window sizes differ (merging mismatched clocks would
    /// silently misalign every bucket).
    pub fn merge(&mut self, other: &WindowedHistogram) {
        assert_eq!(
            self.window_cycles, other.window_cycles,
            "cannot merge histograms with different window sizes"
        );
        for ow in &other.windows {
            match self.windows.iter_mut().find(|w| w.index == ow.index) {
                Some(w) => {
                    w.hist.merge(&ow.hist);
                    for &s in &ow.samples {
                        if w.samples.len() < WINDOW_SAMPLE_CAP {
                            w.samples.push(s);
                        }
                    }
                }
                None => self.windows.push(ow.clone()),
            }
        }
        self.windows.sort_by_key(|w| w.index);
        if self.windows.len() > self.max_windows {
            let excess = self.windows.len() - self.max_windows;
            self.windows.drain(..excess);
        }
        self.total_count += other.total_count;
        self.total_sum = self.total_sum.saturating_add(other.total_sum);
    }
}

// ---------------------------------------------------------------------------
// SLO tracking
// ---------------------------------------------------------------------------

/// Tracks one latency-style service-level objective: "`objective` of
/// observations at or under `target`".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloTracker {
    /// Threshold an observation must not exceed to count as good.
    pub target: u64,
    /// Required good fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
    /// Observations at or under the target.
    pub good: u64,
    /// All observations.
    pub total: u64,
}

impl SloTracker {
    /// A fresh tracker for "`objective` of observations ≤ `target`".
    pub fn new(target: u64, objective: f64) -> Self {
        SloTracker {
            target,
            objective: objective.clamp(0.0, 1.0),
            good: 0,
            total: 0,
        }
    }

    /// Books one observation.
    pub fn observe(&mut self, value: u64) {
        self.total += 1;
        if value <= self.target {
            self.good += 1;
        }
    }

    /// Good fraction so far (1.0 before any observation: no violations).
    pub fn attainment(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.good as f64 / self.total as f64
        }
    }

    /// Error-budget burn rate: observed bad fraction over allowed bad
    /// fraction. 1.0 means burning the budget exactly as fast as the
    /// objective allows; above 1.0 the SLO will be missed if the rate holds.
    pub fn burn_rate(&self) -> f64 {
        let allowed = 1.0 - self.objective;
        if allowed <= 0.0 {
            // A 100% objective has no budget: any miss is infinite burn.
            if self.total > self.good {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            (1.0 - self.attainment()) / allowed
        }
    }

    /// Whether the objective is currently met.
    pub fn met(&self) -> bool {
        self.attainment() >= self.objective
    }

    /// The serializable status row for a snapshot.
    pub fn status(&self) -> SloStatus {
        SloStatus {
            target: self.target,
            objective: self.objective,
            good: self.good,
            total: self.total,
            attainment: self.attainment(),
            burn_rate: self.burn_rate(),
            met: self.met(),
        }
    }
}

/// One SLO row in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// Threshold an observation must not exceed to count as good.
    pub target: u64,
    /// Required good fraction.
    pub objective: f64,
    /// Good observations.
    pub good: u64,
    /// All observations.
    pub total: u64,
    /// Good fraction so far.
    pub attainment: f64,
    /// Error-budget burn rate (see [`SloTracker::burn_rate`]).
    pub burn_rate: f64,
    /// Whether the objective is currently met.
    pub met: bool,
}

// ---------------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------------

/// The named registry of live metrics a service exposes.
///
/// Counters and gauges are handed out as `Arc` handles — callers look a name
/// up once and then write through a single relaxed atomic, so the per-write
/// cost is independent of the registry size and involves no lock. Windowed
/// histograms and SLO trackers sit behind one mutex each; they are written
/// from the (single) scheduler thread and read by snapshotters.
#[derive(Debug, Default)]
pub struct MetricsHub {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, WindowedHistogram>>,
    slos: Mutex<BTreeMap<String, SloTracker>>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // Like the telemetry recorder: a poisoned lock must not take the
        // service down; the maps stay structurally valid.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created at 0.0 on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::lock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers (or re-shapes) the windowed histogram named `name`.
    pub fn register_histogram(&self, name: &str, window_cycles: u64, max_windows: usize) {
        Self::lock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| WindowedHistogram::new(window_cycles, max_windows));
    }

    /// Records `value` at clock `now` into histogram `name`. The histogram
    /// must have been registered (recording into an unknown name is a no-op
    /// rather than a panic — metrics must never take the service down).
    pub fn record(&self, name: &str, now: u64, value: u64) {
        if let Some(h) = Self::lock(&self.histograms).get_mut(name) {
            h.record(now, value);
        }
    }

    /// Registers an SLO: `objective` of observations ≤ `target`.
    pub fn register_slo(&self, name: &str, target: u64, objective: f64) {
        Self::lock(&self.slos)
            .entry(name.to_string())
            .or_insert_with(|| SloTracker::new(target, objective));
    }

    /// Books one observation against SLO `name` (no-op when unregistered).
    pub fn observe_slo(&self, name: &str, value: u64) {
        if let Some(s) = Self::lock(&self.slos).get_mut(name) {
            s.observe(value);
        }
    }

    /// Runs `f` over the windowed histogram named `name`, if registered
    /// (used by readers that need more than the snapshot, e.g. the `stats`
    /// verb's bucket-approximate percentiles).
    pub fn with_histogram<R>(
        &self,
        name: &str,
        f: impl FnOnce(&WindowedHistogram) -> R,
    ) -> Option<R> {
        Self::lock(&self.histograms).get(name).map(f)
    }

    /// Snapshots every metric at clock `now` as a versioned document.
    pub fn snapshot(&self, now: u64) -> MetricsSnapshot {
        let counters = Self::lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = Self::lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = Self::lock(&self.histograms)
            .iter()
            .map(|(k, h)| {
                let merged = h.merged();
                let buckets = merged
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| BucketCount {
                        lo: Histogram::bucket_lower_bound(i),
                        count: c,
                    })
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: merged.count,
                        sum: merged.sum,
                        mean: merged.mean(),
                        total_count: h.total_count(),
                        quantiles: h.quantiles(),
                        exact: h.is_exact(),
                        windows: h.window_count() as u64,
                        window_cycles: h.window_cycles(),
                        buckets,
                    },
                )
            })
            .collect();
        let slos = Self::lock(&self.slos)
            .iter()
            .map(|(k, s)| (k.clone(), s.status()))
            .collect();
        MetricsSnapshot {
            version: METRICS_VERSION,
            now_cycles: now,
            counters,
            gauges,
            histograms,
            slos,
        }
    }
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Values in the live windows.
    pub count: u64,
    /// Sum of values in the live windows.
    pub sum: u64,
    /// Mean of values in the live windows.
    pub mean: f64,
    /// Values recorded over the histogram's lifetime (across window
    /// evictions).
    pub total_count: u64,
    /// Quantile summary (exact while `exact` is true).
    pub quantiles: Quantiles,
    /// Whether `quantiles` is exact nearest-rank (every live window still
    /// retains all raw samples) or the log2-bucket approximation.
    pub exact: bool,
    /// Live windows merged into this snapshot.
    pub windows: u64,
    /// Cycles per window.
    pub window_cycles: u64,
    /// Non-empty log2 buckets, by inclusive lower bound.
    pub buckets: Vec<BucketCount>,
}

/// One non-empty log2 bucket: inclusive lower bound and count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Values in the bucket.
    pub count: u64,
}

/// A versioned point-in-time view of every metric in a [`MetricsHub`],
/// carried by the `metrics` protocol verb and rendered by `sos-top`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema version ([`METRICS_VERSION`]).
    pub version: u32,
    /// Simulated clock at snapshot time.
    pub now_cycles: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// SLO statuses by name.
    pub slos: BTreeMap<String, SloStatus>,
}

/// Sanitizes a metric name into a Prometheus-legal series name:
/// `serve.request_us.submit` → `sos_serve_request_us_submit`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("sos_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as Prometheus text exposition (format 0.0.4):
    /// counters and gauges as single series, histograms as cumulative
    /// `_bucket{le=…}` series with `_sum`/`_count`, SLOs as
    /// `_slo_attainment` / `_slo_burn_rate` / `_slo_met` gauges.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let p = prometheus_name(name);
            out.push_str(&format!("# TYPE {p} counter\n{p} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let p = prometheus_name(name);
            out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let p = prometheus_name(name);
            out.push_str(&format!("# TYPE {p} histogram\n"));
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                // The log2 bucket [lo, 2·lo) is reported at its exclusive
                // upper bound, the Prometheus `le` convention.
                let le = if b.lo == 0 { 1 } else { b.lo.saturating_mul(2) };
                out.push_str(&format!("{p}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum, h.count));
        }
        for (name, s) in &self.slos {
            let p = prometheus_name(name);
            out.push_str(&format!(
                "# TYPE {p}_slo_attainment gauge\n{p}_slo_attainment {}\n",
                fmt_f64(s.attainment)
            ));
            out.push_str(&format!(
                "# TYPE {p}_slo_burn_rate gauge\n{p}_slo_burn_rate {}\n",
                fmt_f64(s.burn_rate)
            ));
            out.push_str(&format!(
                "# TYPE {p}_slo_met gauge\n{p}_slo_met {}\n",
                if s.met { 1 } else { 0 }
            ));
        }
        out
    }

    /// Converts the snapshot to PR-1 [`crate::telemetry::Metric`] rows, so
    /// the `--metrics` JSONL export carries the live registry in the same
    /// line format as the recording registry.
    pub fn to_registry_metrics(&self) -> Vec<crate::telemetry::Metric> {
        use crate::telemetry::{Metric, MetricKind};
        let mut out = Vec::new();
        for (name, &v) in &self.counters {
            out.push(Metric {
                name: name.clone(),
                kind: MetricKind::Counter,
                counter: Some(v),
                gauge: None,
                histogram: None,
            });
        }
        for (name, &v) in &self.gauges {
            out.push(Metric {
                name: name.clone(),
                kind: MetricKind::Gauge,
                counter: None,
                gauge: Some(v),
                histogram: None,
            });
        }
        for (name, h) in &self.histograms {
            let mut hist = Histogram::default();
            for b in &h.buckets {
                hist.buckets[Histogram::bucket_index(b.lo)] += b.count;
            }
            hist.count = h.count;
            hist.sum = h.sum;
            out.push(Metric {
                name: name.clone(),
                kind: MetricKind::Histogram,
                counter: None,
                gauge: None,
                histogram: Some(hist),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

// ---------------------------------------------------------------------------
// Engine instrumentation handles
// ---------------------------------------------------------------------------

/// The [`crate::online::OnlineEngine`] instrumentation bundle: counter and
/// gauge handles resolved once at attach time, so the per-timeslice cost is
/// a handful of relaxed atomic writes (and exactly zero when no metrics are
/// attached).
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// Timeslices simulated (`engine.timeslices`).
    pub timeslices: Arc<Counter>,
    /// Timeslices spent in the SOS sample phase (`engine.sampling_slices`).
    pub sampling_slices: Arc<Counter>,
    /// Timeslices spent in the symbios phase (`engine.symbios_slices`).
    pub symbios_slices: Arc<Counter>,
    /// Timeslices spent rotating in arrival order (`engine.rotate_slices`).
    pub rotate_slices: Arc<Counter>,
    /// Predictor decisions made at sample-phase ends
    /// (`engine.predictor_picks`).
    pub predictor_picks: Arc<Counter>,
    /// Predictor decisions that repeated the previous pick
    /// (`engine.repeat_picks`).
    pub repeat_picks: Arc<Counter>,
    /// Sample phases entered (`engine.resamples`).
    pub resamples: Arc<Counter>,
    /// Timeslices synthesized by fast-sim extrapolation instead of detailed
    /// execution (`engine.extrapolated_slices`); 0 with fast-sim off.
    pub extrapolated_slices: Arc<Counter>,
    /// Fast-sim phase locks — detail → extrapolation transitions
    /// (`engine.fastsim_phase_locks`).
    pub fastsim_phase_locks: Arc<Counter>,
    /// Fast-sim drift fallbacks — extrapolation → detail transitions
    /// (`engine.fastsim_fallbacks`).
    pub fastsim_fallbacks: Arc<Counter>,
    /// Fast-sim moderate-drift resyncs — reference window re-centred
    /// without unlocking the phase (`engine.fastsim_resyncs`).
    pub fastsim_resyncs: Arc<Counter>,
    /// Jobs currently in the system (`engine.queue_depth`).
    pub queue_depth: Arc<Gauge>,
    /// Jobs coscheduled on the machine in the latest timeslice
    /// (`engine.running`).
    pub running: Arc<Gauge>,
}

impl EngineMetrics {
    /// Registers the engine series in `hub` and resolves the handles.
    pub fn register(hub: &MetricsHub) -> Self {
        Self::register_prefixed(hub, "engine")
    }

    /// Registers the engine series under an arbitrary prefix (e.g.
    /// `cluster.shard0`), so every shard of a cluster exports its own
    /// `<prefix>.timeslices`, `<prefix>.queue_depth`, … family.
    pub fn register_prefixed(hub: &MetricsHub, prefix: &str) -> Self {
        EngineMetrics {
            timeslices: hub.counter(&format!("{prefix}.timeslices")),
            sampling_slices: hub.counter(&format!("{prefix}.sampling_slices")),
            symbios_slices: hub.counter(&format!("{prefix}.symbios_slices")),
            rotate_slices: hub.counter(&format!("{prefix}.rotate_slices")),
            predictor_picks: hub.counter(&format!("{prefix}.predictor_picks")),
            repeat_picks: hub.counter(&format!("{prefix}.repeat_picks")),
            resamples: hub.counter(&format!("{prefix}.resamples")),
            extrapolated_slices: hub.counter(&format!("{prefix}.extrapolated_slices")),
            fastsim_phase_locks: hub.counter(&format!("{prefix}.fastsim_phase_locks")),
            fastsim_fallbacks: hub.counter(&format!("{prefix}.fastsim_fallbacks")),
            fastsim_resyncs: hub.counter(&format!("{prefix}.fastsim_resyncs")),
            queue_depth: hub.gauge(&format!("{prefix}.queue_depth")),
            running: hub.gauge(&format!("{prefix}.running")),
        }
    }
}

/// The [`crate::learn`] instrumentation bundle: the `learn.*` family
/// (regressor training/prediction counters, error EWMA, bandit regret, and
/// one pull counter per arm), prefixable per shard like [`EngineMetrics`].
#[derive(Clone, Debug)]
pub struct LearnMetrics {
    /// Regressor training observations folded in (`learn.train_updates`).
    pub train_updates: Arc<Counter>,
    /// Predictions served by the learned model or the bandit
    /// (`learn.predictions`).
    pub predictions: Arc<Counter>,
    /// EWMA of the prequential absolute prediction error
    /// (`learn.pred_err_ewma`).
    pub pred_err_ewma: Arc<Gauge>,
    /// Cumulative bandit regret (`learn.bandit_regret`).
    pub bandit_regret: Arc<Gauge>,
    /// Bandit pulls booked (`learn.bandit_pulls`).
    pub bandit_pulls: Arc<Counter>,
    /// Per-arm pull counters in [`crate::learn::arms`] order
    /// (`learn.arm.<name>.pulls`, lowercase arm names).
    pub arm_pulls: Vec<Arc<Counter>>,
}

impl LearnMetrics {
    /// Registers the `learn.*` series in `hub` and resolves the handles.
    pub fn register(hub: &MetricsHub) -> Self {
        Self::register_prefixed(hub, "learn")
    }

    /// Registers the learn series under an arbitrary prefix (e.g.
    /// `cluster.shard0.learn`).
    pub fn register_prefixed(hub: &MetricsHub, prefix: &str) -> Self {
        LearnMetrics {
            train_updates: hub.counter(&format!("{prefix}.train_updates")),
            predictions: hub.counter(&format!("{prefix}.predictions")),
            pred_err_ewma: hub.gauge(&format!("{prefix}.pred_err_ewma")),
            bandit_regret: hub.gauge(&format!("{prefix}.bandit_regret")),
            bandit_pulls: hub.counter(&format!("{prefix}.bandit_pulls")),
            arm_pulls: crate::learn::arms()
                .iter()
                .map(|p| {
                    hub.counter(&format!(
                        "{prefix}.arm.{}.pulls",
                        p.name().to_ascii_lowercase()
                    ))
                })
                .collect(),
        }
    }

    /// Syncs the absolute-valued series from a learner summary (counters are
    /// set-by-delta internally, so syncing is idempotent per summary).
    pub fn sync(&self, summary: &crate::learn::LearnSummary) {
        set_counter_to(&self.train_updates, summary.train_updates);
        set_counter_to(&self.predictions, summary.predictions);
        set_counter_to(&self.bandit_pulls, summary.bandit_pulls);
        self.pred_err_ewma.set(summary.err_ewma);
        self.bandit_regret.set(summary.bandit_regret);
        for (handle, (_, pulls, _)) in self.arm_pulls.iter().zip(&summary.arms) {
            set_counter_to(handle, *pulls);
        }
    }
}

/// Raises a monotonic counter to an absolute target value (no-op when the
/// counter is already at or past it), letting summary-driven exporters reuse
/// counter semantics.
fn set_counter_to(counter: &Counter, target: u64) {
    let cur = counter.get();
    if target > cur {
        counter.add(target - cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::parallel_map_with_workers;
    use crate::report::percentiles;

    #[test]
    fn learn_metrics_sync_from_summary() {
        let hub = MetricsHub::new();
        let m = LearnMetrics::register(&hub);
        assert_eq!(m.arm_pulls.len(), crate::learn::NUM_ARMS);
        let mut summary = crate::learn::LearnSummary {
            train_updates: 10,
            predictions: 4,
            err_ewma: 0.25,
            bandit_pulls: 3,
            bandit_regret: 0.5,
            contexts: 2,
            arms: crate::learn::arms()
                .iter()
                .map(|p| (p.name().to_string(), 1, 0.9))
                .collect(),
        };
        m.sync(&summary);
        assert_eq!(hub.counter("learn.train_updates").get(), 10);
        assert_eq!(hub.counter("learn.arm.score.pulls").get(), 1);
        assert_eq!(hub.gauge("learn.pred_err_ewma").get(), 0.25);
        // Idempotent per summary; monotonic under growth.
        m.sync(&summary);
        assert_eq!(hub.counter("learn.train_updates").get(), 10);
        summary.train_updates = 12;
        m.sync(&summary);
        assert_eq!(hub.counter("learn.train_updates").get(), 12);
    }

    #[test]
    fn counter_and_gauge_are_atomic_handles() {
        let hub = MetricsHub::new();
        let c = hub.counter("x");
        let c2 = hub.counter("x");
        c.inc();
        c2.add(4);
        assert_eq!(hub.counter("x").get(), 5);
        let g = hub.gauge("y");
        g.set(2.5);
        assert_eq!(hub.gauge("y").get(), 2.5);
    }

    #[test]
    fn window_rotation_evicts_old_windows() {
        let mut h = WindowedHistogram::new(1_000, 3);
        h.record(0, 10); // window 0
        h.record(1_500, 20); // window 1
        h.record(2_100, 300); // window 2
        assert_eq!(h.window_count(), 3);
        assert_eq!(h.count(), 3);
        h.record(3_999, 40); // window 3 evicts window 0
        assert_eq!(h.window_count(), 3);
        assert_eq!(h.count(), 3, "value 10 aged out of the live view");
        assert_eq!(h.total_count(), 4, "lifetime count keeps evicted values");
        // The merged view no longer contains 10's bucket.
        let merged = h.merged();
        assert_eq!(merged.buckets[Histogram::bucket_index(10)], 0);
        assert_eq!(merged.buckets[Histogram::bucket_index(20)], 1);
    }

    #[test]
    fn expire_ages_out_idle_windows() {
        let mut h = WindowedHistogram::new(1_000, 2);
        h.record(0, 5);
        h.expire(10_000);
        assert_eq!(h.window_count(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.total_count(), 1);
        let q = h.quantiles();
        assert!(q.p50.is_nan() && q.p95.is_nan() && q.p99.is_nan() && q.p999.is_nan());
    }

    #[test]
    fn late_samples_book_into_the_current_window() {
        let mut h = WindowedHistogram::new(1_000, 4);
        h.record(5_000, 1);
        h.record(100, 2); // clock went backwards: current window absorbs it
        assert_eq!(h.window_count(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantiles_agree_with_report_percentiles_exactly() {
        // The satellite check: identical samples through the windowed
        // histogram and through report::percentiles give identical answers.
        let values: Vec<u64> = (1..=1_000).map(|i| i * 7).collect();
        let mut h = WindowedHistogram::new(1 << 40, 4); // one big window
        for &v in &values {
            h.record(0, v);
        }
        assert!(h.is_exact());
        let q = h.quantiles();
        let f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let p = percentiles(&f);
        assert_eq!(q.p50, p.p50);
        assert_eq!(q.p95, p.p95);
        assert_eq!(q.p99, p.p99);
        assert_eq!(q.p999, percentile(&f, 99.9));
    }

    #[test]
    fn quantiles_degrade_to_buckets_past_the_sample_cap() {
        let mut h = WindowedHistogram::new(1 << 40, 1);
        for i in 0..(WINDOW_SAMPLE_CAP as u64 + 10) {
            h.record(0, 100 + i % 3);
        }
        assert!(!h.is_exact());
        let q = h.quantiles();
        // Bucket lower bound of 100..103 is 64.
        assert_eq!(q.p50, 64.0);
    }

    #[test]
    fn merge_is_deterministic_across_par_workers() {
        // Shard a sample stream across workers, each building its own
        // histogram; merging shards in input order must equal the serial
        // histogram byte for byte, at any worker count.
        let samples: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i * 37, (i * 13) % 997)).collect();
        let mut serial = WindowedHistogram::new(10_000, 1_000);
        for &(t, v) in &samples {
            serial.record(t, v);
        }
        let shards: Vec<Vec<(u64, u64)>> = samples.chunks(1_250).map(|c| c.to_vec()).collect();
        for workers in [1, 4] {
            let built = parallel_map_with_workers(shards.clone(), workers, |chunk| {
                let mut h = WindowedHistogram::new(10_000, 1_000);
                for (t, v) in chunk {
                    h.record(t, v);
                }
                h
            });
            let mut merged = WindowedHistogram::new(10_000, 1_000);
            for shard in &built {
                merged.merge(shard);
            }
            assert_eq!(merged, serial, "merge diverged at {workers} workers");
            assert_eq!(merged.quantiles(), serial.quantiles());
        }
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn merge_rejects_mismatched_window_sizes() {
        let mut a = WindowedHistogram::new(1_000, 2);
        let b = WindowedHistogram::new(2_000, 2);
        a.merge(&b);
    }

    #[test]
    fn slo_attainment_and_burn_rate() {
        let mut s = SloTracker::new(100, 0.9);
        assert_eq!(s.attainment(), 1.0);
        assert!(s.met());
        assert_eq!(s.burn_rate(), 0.0);
        for v in [10, 50, 100, 101, 500, 20, 30, 40, 60, 70] {
            s.observe(v);
        }
        // 8 of 10 good → attainment 0.8, budget 0.1, burn 2.0.
        assert_eq!(s.good, 8);
        assert!((s.attainment() - 0.8).abs() < 1e-12);
        assert!((s.burn_rate() - 2.0).abs() < 1e-12);
        assert!(!s.met());
        let status = s.status();
        assert_eq!(status.total, 10);
        assert!(!status.met);
    }

    #[test]
    fn slo_with_total_objective_has_infinite_burn_on_any_miss() {
        let mut s = SloTracker::new(10, 1.0);
        s.observe(5);
        assert_eq!(s.burn_rate(), 0.0);
        s.observe(11);
        assert!(s.burn_rate().is_infinite());
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let hub = MetricsHub::new();
        hub.counter("serve.requests.submit").add(7);
        hub.gauge("engine.queue_depth").set(3.0);
        hub.register_histogram("serve.response_cycles", 1_000, 4);
        hub.record("serve.response_cycles", 100, 2_048);
        hub.record("serve.response_cycles", 200, 4_096);
        hub.register_slo("serve.response_cycles", 3_000, 0.99);
        hub.observe_slo("serve.response_cycles", 2_048);
        hub.observe_slo("serve.response_cycles", 4_096);
        let snap = hub.snapshot(250);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.version, METRICS_VERSION);
        assert_eq!(back.counters["serve.requests.submit"], 7);
        assert_eq!(back.gauges["engine.queue_depth"], 3.0);
        let h = &back.histograms["serve.response_cycles"];
        assert_eq!(h.count, 2);
        assert!(h.exact);
        let slo = &back.slos["serve.response_cycles"];
        assert_eq!(slo.good, 1);
        assert_eq!(slo.total, 2);
        assert!((slo.attainment - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prometheus_exposition_has_expected_series() {
        let hub = MetricsHub::new();
        hub.counter("serve.requests.submit").add(3);
        hub.gauge("engine.queue_depth").set(2.0);
        hub.register_histogram("serve.response_cycles", 1_000, 4);
        hub.record("serve.response_cycles", 0, 3); // bucket [2,4) → le=4
        hub.record("serve.response_cycles", 0, 100); // bucket [64,128) → le=128
        hub.register_slo("serve.response_cycles", 50, 0.99);
        hub.observe_slo("serve.response_cycles", 3);
        let text = hub.snapshot(0).prometheus_text();

        assert!(text.contains("# TYPE sos_serve_requests_submit counter"));
        assert!(text.contains("sos_serve_requests_submit 3"));
        assert!(text.contains("sos_engine_queue_depth 2"));
        assert!(text.contains("# TYPE sos_serve_response_cycles histogram"));
        assert!(text.contains("sos_serve_response_cycles_bucket{le=\"4\"} 1"));
        // Buckets are cumulative.
        assert!(text.contains("sos_serve_response_cycles_bucket{le=\"128\"} 2"));
        assert!(text.contains("sos_serve_response_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sos_serve_response_cycles_sum 103"));
        assert!(text.contains("sos_serve_response_cycles_count 2"));
        assert!(text.contains("sos_serve_response_cycles_slo_attainment 1"));
        assert!(text.contains("sos_serve_response_cycles_slo_met 1"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').unwrap();
            assert!(!series.is_empty(), "bad exposition line {line:?}");
            assert!(
                value.parse::<f64>().is_ok() || matches!(value, "NaN" | "+Inf" | "-Inf"),
                "bad exposition value in {line:?}"
            );
        }
    }

    #[test]
    fn snapshot_converts_to_registry_metrics() {
        let hub = MetricsHub::new();
        hub.counter("a").add(2);
        hub.gauge("b").set(1.5);
        hub.register_histogram("c", 1_000, 2);
        hub.record("c", 0, 10);
        let rows = hub.snapshot(0).to_registry_metrics();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "a");
        assert_eq!(rows[0].counter, Some(2));
        assert_eq!(rows[1].gauge, Some(1.5));
        let hist = rows[2].histogram.as_ref().unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 10);
        assert_eq!(hist.buckets[Histogram::bucket_index(10)], 1);
        // The rows serialize in the registry's JSONL line format.
        let line = serde_json::to_string(&rows[2]).unwrap();
        let back: crate::telemetry::Metric = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rows[2]);
    }

    #[test]
    fn engine_metrics_registers_named_series() {
        let hub = MetricsHub::new();
        let em = EngineMetrics::register(&hub);
        em.timeslices.add(5);
        em.queue_depth.set(2.0);
        let snap = hub.snapshot(0);
        assert_eq!(snap.counters["engine.timeslices"], 5);
        assert_eq!(snap.gauges["engine.queue_depth"], 2.0);
        assert!(snap.counters.contains_key("engine.predictor_picks"));
    }
}

//! The sample phase: profiling candidate schedules with hardware counters.
//!
//! For each candidate schedule the sampler runs one full rotation (the
//! minimum time required to evaluate a schedule, as in §5.2) and condenses
//! the hardware counters into the predictor inputs of the paper's Table 3:
//! IPC, AllConf, Dcache, FQ, FP, Sum2, Diversity, and Balance.

use crate::runner::{RotationStats, Runner};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// Counter-derived predictor inputs for one sampled schedule
/// (one row of the paper's Table 3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSample {
    /// The schedule's paper notation (e.g. `012_345`).
    pub notation: String,
    /// Aggregate committed IPC over the sample.
    pub ipc: f64,
    /// Sum over all shared resources of the percentage of cycles with a
    /// conflict on that resource.
    pub allconf: f64,
    /// L1 data-cache hit rate, percent.
    pub dcache: f64,
    /// Percentage of cycles with a floating-point-queue conflict.
    pub fq: f64,
    /// Percentage of cycles with a floating-point-unit conflict.
    pub fp: f64,
    /// `fq + fp`.
    pub sum2: f64,
    /// Mean over timeslices of |%FP − %integer| of committed instructions
    /// (lower = more diverse).
    pub diversity: f64,
    /// Standard deviation of IPC across the schedule's timeslices
    /// (lower = smoother).
    pub balance: f64,
}

impl ScheduleSample {
    /// Condenses one (or more) rotations of counters into a sample.
    ///
    /// # Panics
    /// Panics if `rotations` is empty, or if the rotations cover zero cycles
    /// — a zero-cycle sample has no counters to condense, and quietly
    /// reporting IPC 0 for it would poison the predictor's ranking.
    pub fn from_rotations(schedule: &Schedule, rotations: &[RotationStats]) -> Self {
        assert!(!rotations.is_empty(), "need at least one sampled rotation");
        let mut cycles = 0u64;
        let mut committed = 0u64;
        let mut conflicts = smtsim::ConflictCounters::default();
        let mut cache = smtsim::cache::CacheStats::default();
        let mut slice_ipcs = Vec::new();
        let mut slice_div = Vec::new();
        for rot in rotations {
            for s in &rot.slices {
                cycles += s.cycles;
                committed += s.total_committed();
                conflicts.merge(&s.conflicts);
                cache.merge(&s.cache);
                slice_ipcs.push(s.total_ipc());
                let (fp_pct, int_pct) = s.fp_int_mix_pct();
                slice_div.push((fp_pct - int_pct).abs());
            }
        }
        assert!(
            cycles > 0,
            "schedule {} sampled over zero cycles",
            schedule.paper_notation()
        );
        #[cfg(feature = "check-invariants")]
        for rot in rotations {
            for s in &rot.slices {
                smtsim::invariants::assert_timeslice(s);
            }
        }
        let fq = conflicts.pct(smtsim::counters::Resource::FpQueue, cycles);
        let fp = conflicts.pct(smtsim::counters::Resource::FpUnits, cycles);
        ScheduleSample {
            notation: schedule.paper_notation(),
            ipc: committed as f64 / cycles as f64,
            allconf: conflicts.all_conflicts_pct(cycles),
            dcache: cache.dl1_hit_pct(),
            fq,
            fp,
            sum2: fq + fp,
            diversity: mean(&slice_div),
            balance: stddev(&slice_ipcs),
        }
    }
}

/// Runs the sample phase: each candidate schedule is profiled for
/// `rotations_per_schedule` rotations, in candidate order (the jobs keep
/// making progress throughout — sampling is overhead-free).
pub fn sample_schedules(
    runner: &mut Runner,
    candidates: &[Schedule],
    rotations_per_schedule: usize,
) -> Vec<ScheduleSample> {
    candidates
        .iter()
        .map(|s| {
            let rots = runner.run_schedule(s, rotations_per_schedule.max(1));
            ScheduleSample::from_rotations(s, &rots)
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPool;
    use smtsim::MachineConfig;
    use workloads::{Benchmark, JobSpec};

    fn runner() -> Runner {
        let pool = JobPool::from_specs(
            &[
                JobSpec::single(Benchmark::Fp),
                JobSpec::single(Benchmark::Mg),
                JobSpec::single(Benchmark::Gcc),
                JobSpec::single(Benchmark::Go),
            ],
            3,
        );
        Runner::new(MachineConfig::alpha21264_like(2), pool, 4_000)
    }

    #[test]
    fn sample_fields_are_sane() {
        let mut r = runner();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rots = r.run_schedule(&s, 2);
        let sample = ScheduleSample::from_rotations(&s, &rots);
        assert_eq!(sample.notation, "01_23");
        assert!(sample.ipc > 0.0);
        assert!((0.0..=100.0).contains(&sample.dcache));
        assert!(sample.fq >= 0.0 && sample.fp >= 0.0);
        assert!((sample.sum2 - (sample.fq + sample.fp)).abs() < 1e-12);
        assert!(sample.allconf >= sample.sum2 - 1e-12);
        assert!(sample.balance >= 0.0);
        assert!(sample.diversity >= 0.0);
    }

    #[test]
    fn sampling_covers_all_candidates() {
        let mut r = runner();
        let candidates = vec![
            Schedule::new(vec![0, 1, 2, 3], 2, 2),
            Schedule::new(vec![0, 2, 1, 3], 2, 2),
            Schedule::new(vec![0, 3, 1, 2], 2, 2),
        ];
        let samples = sample_schedules(&mut r, &candidates, 1);
        assert_eq!(samples.len(), 3);
        let notations: Vec<&str> = samples.iter().map(|s| s.notation.as_str()).collect();
        assert_eq!(notations, vec!["01_23", "02_13", "03_12"]);
    }

    #[test]
    fn mixed_fp_int_pairing_beats_fp_pairing_on_fq() {
        // Schedule 01_23 pairs the two FP codes (FP+MG) and the two integer
        // codes (GCC+GO); 02_13 mixes. The mixed schedule must conflict less
        // on FP resources.
        let mut r = runner();
        let _ = r.calibrate_solo(30_000, 10_000); // warm caches a bit
        let paired = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let mixed = Schedule::new(vec![0, 2, 1, 3], 2, 2);
        let samples = sample_schedules(&mut r, &[paired, mixed], 3);
        assert!(
            samples[1].sum2 < samples[0].sum2,
            "mixing FP and integer jobs should lower FP conflicts: {samples:#?}"
        );
    }

    #[test]
    #[should_panic(expected = "sampled over zero cycles")]
    fn zero_cycle_rotation_is_rejected() {
        // A rotation whose slices cover zero cycles used to be masked by
        // `cycles.max(1)` and reported as a (garbage) IPC-0 sample.
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rot = RotationStats {
            slices: vec![smtsim::TimesliceStats::default()],
            tuples: vec![],
        };
        let _ = ScheduleSample::from_rotations(&s, &[rot]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}

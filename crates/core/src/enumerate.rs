//! Counting, enumerating, and sampling distinct schedules.
//!
//! Reproduces the "Distinct Schedules" column of the paper's Table 2:
//!
//! * **Swap-all with `y | x`** (`Jsb(6,3,3)`, `Jsb(8,4,4)`, ...): a schedule
//!   is a partition of the `x` threads into blocks of `y`; there are
//!   `x! / ((y!)^(x/y) · (x/y)!)` of them.
//! * **Everything else** (swap-one schedules, and swap-all when `y ∤ x` like
//!   `Jsb(5,2,2)`): a schedule is a circular order of the threads read as
//!   sliding windows, identical under rotation and reflection; there are
//!   `(x-1)!/2` of them.

use crate::schedule::Schedule;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Number of distinct schedules for `x` threads at multithreading level `y`
/// swapping `z` per timeslice (the paper's Table 2, column 2).
///
/// ```
/// use sos_core::enumerate::count_distinct;
/// assert_eq!(count_distinct(6, 3, 3), 10);   // Jsb(6,3,3)
/// assert_eq!(count_distinct(8, 4, 1), 2520); // Jsb(8,4,1)
/// ```
///
/// # Panics
/// Panics unless `1 <= z <= y <= x`, or if the swap discipline is neither
/// swap-all (`z == y`) nor swap-one (`z == 1`).
pub fn count_distinct(x: usize, y: usize, z: usize) -> u128 {
    assert!(z >= 1 && z <= y && y <= x, "need 1 <= z <= y <= x");
    if y == x {
        return 1;
    }
    assert!(
        z == y || z == 1,
        "schedule counting is defined for the paper's swap-all (z == y) and \
         swap-one (z == 1) disciplines, got z = {z}, y = {y}"
    );
    if z == y && x.is_multiple_of(y) {
        // Partitions of x into x/y unordered blocks of size y.
        let blocks = x / y;
        let mut n = factorial(x);
        for _ in 0..blocks {
            n /= factorial(y);
        }
        n / factorial(blocks)
    } else {
        // Circular orders up to rotation and reflection.
        if x <= 2 {
            1
        } else {
            factorial(x - 1) / 2
        }
    }
}

fn factorial(n: usize) -> u128 {
    (1..=n as u128).product()
}

/// Draws a uniformly random schedule (not deduplicated) for the given shape.
pub fn random_schedule<R: Rng>(x: usize, y: usize, z: usize, rng: &mut R) -> Schedule {
    let mut order: Vec<usize> = (0..x).collect();
    order.shuffle(rng);
    Schedule::new(order, y, z)
}

/// Draws up to `n` *distinct* random schedules (distinct under the paper's
/// tuple-set identity). If the space is smaller than `n`, every distinct
/// schedule is returned (exhaustive sampling, as the paper does for
/// `Jsb(4,2,2)` and `Jsb(6,3,3)`).
pub fn sample_distinct<R: Rng>(
    x: usize,
    y: usize,
    z: usize,
    n: usize,
    rng: &mut R,
) -> Vec<Schedule> {
    let space = count_distinct(x, y, z);
    if space <= n as u128 {
        return enumerate_all(x, y, z);
    }
    // Rejection sampling degrades sharply as n approaches the space size:
    // the last few draws each need ~space/(space - drawn) attempts, so e.g.
    // n = 10 of 12 spends most of its time re-drawing already-seen schedules.
    // When the space is within a small factor of n (and small enough to
    // enumerate cheaply), enumerate everything and shuffle instead — a
    // bounded number of RNG calls, still a uniform distinct sample.
    if space <= 4 * n as u128 && space <= 10_000 {
        let mut all = enumerate_all(x, y, z);
        all.shuffle(rng);
        all.truncate(n);
        return all;
    }
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(n);
    // The space is much larger than n here, so rejection terminates quickly.
    while out.len() < n {
        let s = random_schedule(x, y, z, rng);
        if seen.insert(s.canonical_key()) {
            out.push(s);
        }
    }
    out
}

/// Enumerates every distinct schedule. Intended for small spaces (the paper
/// only enumerates exhaustively when there are at most 10 schedules); guards
/// against misuse with a panic.
///
/// # Panics
/// Panics if the space has more than 100 000 schedules.
pub fn enumerate_all(x: usize, y: usize, z: usize) -> Vec<Schedule> {
    let space = count_distinct(x, y, z);
    assert!(
        space <= 100_000,
        "schedule space too large to enumerate ({space})"
    );
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let mut order: Vec<usize> = (0..x).collect();
    permute(&mut order, 0, &mut |perm| {
        let s = Schedule::new(perm.to_vec(), y, z);
        if seen.insert(s.canonical_key()) {
            out.push(s);
        }
    });
    out
}

fn permute(v: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// The paper's Table 2, column 2 — every row.
    #[test]
    fn table2_distinct_schedule_counts() {
        assert_eq!(count_distinct(4, 2, 2), 3); // Jsb(4,2,2)
        assert_eq!(count_distinct(5, 2, 2), 12); // Jsb(5,2,2)
        assert_eq!(count_distinct(5, 2, 1), 12); // Jsb(5,2,1)
        assert_eq!(count_distinct(10, 2, 2), 945); // Jpb(10,2,2) & J2pb
        assert_eq!(count_distinct(6, 3, 3), 10); // Jsb(6,3,3)
        assert_eq!(count_distinct(6, 3, 1), 60); // Jsb(6,3,1) & Jsl(6,3,1)
        assert_eq!(count_distinct(8, 4, 4), 35); // Jsb(8,4,4)
        assert_eq!(count_distinct(8, 4, 1), 2520); // Jsb(8,4,1) & Jsl(8,4,1)
        assert_eq!(count_distinct(12, 4, 4), 5775); // Jsb(12,4,4)
        assert_eq!(count_distinct(12, 6, 6), 462); // Jsb(12,6,6)
    }

    #[test]
    fn enumeration_matches_count_for_small_spaces() {
        for (x, y, z) in [
            (4, 2, 2),
            (6, 3, 3),
            (5, 2, 2),
            (5, 2, 1),
            (6, 3, 1),
            (8, 4, 4),
        ] {
            let all = enumerate_all(x, y, z);
            assert_eq!(all.len() as u128, count_distinct(x, y, z), "({x},{y},{z})");
            // All fair coverings, all distinct.
            let keys: HashSet<_> = all.iter().map(Schedule::canonical_key).collect();
            assert_eq!(keys.len(), all.len());
            assert!(all.iter().all(Schedule::is_fair_covering));
        }
    }

    #[test]
    fn jsb_6_3_3_has_the_papers_ten() {
        let all = enumerate_all(6, 3, 3);
        let notations: HashSet<String> = all
            .iter()
            .map(|s| {
                s.canonical_key()
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("_")
            })
            .collect();
        // The paper's Table 3 lists these ten (canonicalized to sorted tuples):
        for expected in [
            "012_345", "013_245", "014_235", "015_234", "023_145", "024_135", "025_134", "034_125",
            "035_124", "045_123",
        ] {
            assert!(
                notations.contains(expected),
                "missing {expected}: {notations:?}"
            );
        }
    }

    #[test]
    fn sampling_returns_distinct_schedules() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sample = sample_distinct(8, 4, 1, 10, &mut rng);
        assert_eq!(sample.len(), 10);
        let keys: HashSet<_> = sample.iter().map(Schedule::canonical_key).collect();
        assert_eq!(keys.len(), 10);
    }

    /// Counts RNG calls so tests can pin how much randomness sampling draws.
    struct CountingRng {
        inner: SmallRng,
        calls: u64,
    }

    impl RngCore for CountingRng {
        fn next_u32(&mut self) -> u32 {
            self.calls += 1;
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.calls += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn near_exhaustive_sampling_terminates_with_bounded_draws() {
        // Jsb(5,2,2) has 12 distinct schedules; asking for 10 of them used to
        // hit the rejection sampler's worst case (the last draws each expect
        // ~space/(space - drawn) attempts, unbounded in the tail). The
        // enumerate-then-shuffle fallback must kick in: RNG usage is bounded
        // by one shuffle of the space, not by rejection luck.
        let mut rng = CountingRng {
            inner: SmallRng::seed_from_u64(42),
            calls: 0,
        };
        let sample = sample_distinct(5, 2, 2, 10, &mut rng);
        assert_eq!(sample.len(), 10);
        let keys: HashSet<_> = sample.iter().map(Schedule::canonical_key).collect();
        assert_eq!(keys.len(), 10, "samples must be distinct");
        assert!(sample.iter().all(Schedule::is_fair_covering));
        // A Fisher-Yates shuffle of 12 schedules needs at most one RNG call
        // per element (plus slack for rejection inside gen_range); rejection
        // sampling of 10-of-12 would typically need hundreds of calls, each
        // shuffling a 5-element order.
        assert!(
            rng.calls <= 64,
            "expected bounded RNG usage from the enumerate-then-shuffle \
             fallback, got {} calls",
            rng.calls
        );
    }

    #[test]
    fn sampling_small_space_is_exhaustive() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sample = sample_distinct(4, 2, 2, 10, &mut rng);
        assert_eq!(sample.len(), 3, "Jsb(4,2,2) has only 3 possible schedules");
    }

    #[test]
    fn single_tuple_case() {
        assert_eq!(count_distinct(3, 3, 3), 1);
        assert_eq!(enumerate_all(3, 3, 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "1 <= z <= y <= x")]
    fn bad_shape_rejected() {
        let _ = count_distinct(4, 5, 1);
    }
}

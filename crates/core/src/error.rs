//! Error types.

/// Error returned when parsing an experiment label like `"Jsb(6,3,3)"` fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExperimentError {
    msg: String,
}

impl ParseExperimentError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParseExperimentError { msg: msg.into() }
    }
}

impl std::fmt::Display for ParseExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid experiment label: {}", self.msg)
    }
}

impl std::error::Error for ParseExperimentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseExperimentError::new("expected Jmn(X,Y,Z)");
        assert!(e.to_string().contains("expected Jmn(X,Y,Z)"));
    }

    #[test]
    fn is_error_and_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseExperimentError>();
    }
}

//! The paper's `Jmn(X,Y,Z)` experiment notation (§3).
//!
//! "`X` is the number of runnable jobs, `Y` the multithreading level, and `Z`
//! the number of running jobs swapped out and replaced with jobs from the
//! runnable pool at the expiration of the timeslice. `m` is a character from
//! `{s,p}` [single-threaded or parallel workload] ... `n` is a character from
//! `{b,l}` where `b`(ig) indicates that a timeslice of 5 million cycles was
//! used for coschedules and `l`(ittle) indicates that a smaller timeslice was
//! used." `J2pb(10,2,2)` is the variant jobmix whose parallel job
//! synchronizes rarely (§6).

use crate::enumerate;
use crate::error::ParseExperimentError;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::str::FromStr;
use workloads::jobmix;
use workloads::JobSpec;

/// The paper's big timeslice: 5 million cycles ("a 10 millisecond timer
/// interrupt on a 500 MHz system").
pub const PAPER_TIMESLICE: u64 = 5_000_000;

/// Cycles of the paper's symbios phase: 2 billion.
pub const PAPER_SYMBIOS: u64 = 2_000_000_000;

/// Sample-phase budget that little-timeslice experiments fit 10 schedules
/// into (Table 2 reports 100M cycles for `Jsl(6,3,1)` and `Jsl(8,4,1)`).
pub const LITTLE_SAMPLE_BUDGET: u64 = 100_000_000;

/// Schedules profiled in the sample phase ("in all but one of our
/// experiments, the jobscheduler generates and evaluates 10 random
/// schedules").
pub const SAMPLE_SCHEDULES: usize = 10;

/// One experiment configuration `Jmn(X,Y,Z)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Runnable jobs `X`.
    pub jobs: usize,
    /// Multithreading level `Y` (hardware contexts).
    pub smt: usize,
    /// Jobs swapped per timeslice `Z`.
    pub swap: usize,
    /// Whether the workload includes parallel (multithreaded) jobs (`p`).
    pub parallel: bool,
    /// Whether the loosely-synchronizing parallel variant is used (`J2pb`).
    pub loose_sync: bool,
    /// Whether the little timeslice is used (`l`).
    pub little: bool,
}

impl ExperimentSpec {
    /// Builds a spec directly.
    ///
    /// # Panics
    /// Panics unless `1 <= swap <= smt <= jobs`.
    pub fn new(jobs: usize, smt: usize, swap: usize) -> Self {
        assert!(
            swap >= 1 && swap <= smt && smt <= jobs,
            "need 1 <= Z <= Y <= X, got ({jobs},{smt},{swap})"
        );
        ExperimentSpec {
            jobs,
            smt,
            swap,
            parallel: false,
            loose_sync: false,
            little: true,
        }
        .with_big_timeslice()
    }

    fn with_big_timeslice(mut self) -> Self {
        self.little = false;
        self
    }

    /// Marks the experiment as using the little timeslice (`Jsl`).
    pub fn little(mut self) -> Self {
        self.little = true;
        self
    }

    /// Marks the workload as parallel (`Jpb`); `loose` selects the `J2pb`
    /// rarely-synchronizing ARRAY variant.
    pub fn parallel(mut self, loose: bool) -> Self {
        self.parallel = true;
        self.loose_sync = loose;
        self
    }

    /// All 13 throughput-experiment configurations of Table 2, in table
    /// order.
    pub fn all_paper_experiments() -> Vec<ExperimentSpec> {
        vec![
            ExperimentSpec::new(4, 2, 2),
            ExperimentSpec::new(5, 2, 2),
            ExperimentSpec::new(5, 2, 1),
            ExperimentSpec::new(10, 2, 2).parallel(false),
            ExperimentSpec::new(10, 2, 2).parallel(true),
            ExperimentSpec::new(6, 3, 3),
            ExperimentSpec::new(6, 3, 1),
            ExperimentSpec::new(6, 3, 1).little(),
            ExperimentSpec::new(8, 4, 4),
            ExperimentSpec::new(8, 4, 1),
            ExperimentSpec::new(8, 4, 1).little(),
            ExperimentSpec::new(12, 4, 4),
            ExperimentSpec::new(12, 6, 6),
        ]
    }

    /// Number of distinct schedules (Table 2, column 2).
    pub fn distinct_schedules(&self) -> u128 {
        enumerate::count_distinct(self.jobs, self.smt, self.swap)
    }

    /// Timeslices needed to run one full rotation of a schedule.
    pub fn slices_per_schedule(&self) -> usize {
        Schedule::new((0..self.jobs).collect(), self.smt, self.swap).slices_per_rotation()
    }

    /// The timeslice length in paper cycles: 5M for big-timeslice
    /// experiments; for little-timeslice experiments, sized so that profiling
    /// 10 schedules fits the 100M-cycle budget of Table 2.
    pub fn paper_timeslice(&self) -> u64 {
        if self.little {
            LITTLE_SAMPLE_BUDGET / (SAMPLE_SCHEDULES as u64 * self.slices_per_schedule() as u64)
        } else {
            PAPER_TIMESLICE
        }
    }

    /// Cycles spent profiling up to 10 schedules (Table 2, column 3).
    pub fn paper_sample_cycles(&self) -> u64 {
        let n = self.distinct_schedules().min(SAMPLE_SCHEDULES as u128) as u64;
        n * self.slices_per_schedule() as u64 * self.paper_timeslice()
    }

    /// The timeslice scaled down by `scale` (1 = paper scale).
    pub fn timeslice(&self, scale: u64) -> u64 {
        (self.paper_timeslice() / scale.max(1)).max(100)
    }

    /// The symbios-phase length scaled down by `scale`.
    pub fn symbios_cycles(&self, scale: u64) -> u64 {
        (PAPER_SYMBIOS / scale.max(1)).max(1000)
    }

    /// The Table 1 jobmix for this experiment.
    ///
    /// # Panics
    /// Panics if the paper defines no jobmix for this shape (only the sizes
    /// in Table 1 are available).
    pub fn jobmix(&self) -> Vec<JobSpec> {
        if self.parallel {
            assert_eq!(
                self.jobs, 10,
                "the parallel jobmix has 10 schedulable threads"
            );
            jobmix::parallel_mix(!self.loose_sync)
        } else {
            jobmix::single_threaded_mix(self.jobs)
                .unwrap_or_else(|| panic!("no Table 1 jobmix with {} jobs", self.jobs))
        }
    }

    /// The experiment label in the paper's notation.
    pub fn label(&self) -> String {
        let m = if self.parallel { "p" } else { "s" };
        let n = if self.little { "l" } else { "b" };
        let two = if self.loose_sync { "2" } else { "" };
        format!("J{two}{m}{n}({},{},{})", self.jobs, self.smt, self.swap)
    }
}

impl std::fmt::Display for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl FromStr for ExperimentSpec {
    type Err = ParseExperimentError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let open = t
            .find('(')
            .ok_or_else(|| ParseExperimentError::new("missing '('"))?;
        if !t.ends_with(')') {
            return Err(ParseExperimentError::new("missing ')'"));
        }
        let (head, rest) = t.split_at(open);
        let args = &rest[1..rest.len() - 1];
        let mut head = head.to_ascii_lowercase();
        if !head.starts_with('j') {
            return Err(ParseExperimentError::new("must start with 'J'"));
        }
        head.remove(0);
        let loose_sync = head.starts_with('2');
        if loose_sync {
            head.remove(0);
        }
        let mut chars = head.chars();
        let m = chars
            .next()
            .ok_or_else(|| ParseExperimentError::new("missing workload kind"))?;
        let n = chars
            .next()
            .ok_or_else(|| ParseExperimentError::new("missing timeslice kind"))?;
        if chars.next().is_some() {
            return Err(ParseExperimentError::new("unexpected trailing letters"));
        }
        let parallel = match m {
            's' => false,
            'p' => true,
            other => {
                return Err(ParseExperimentError::new(format!(
                    "bad workload kind '{other}'"
                )))
            }
        };
        let little = match n {
            'b' => false,
            'l' => true,
            other => {
                return Err(ParseExperimentError::new(format!(
                    "bad timeslice kind '{other}'"
                )))
            }
        };
        if loose_sync && !parallel {
            return Err(ParseExperimentError::new(
                "J2 prefix requires a parallel workload",
            ));
        }
        let nums: Vec<usize> = args
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|e| ParseExperimentError::new(format!("bad number: {e}")))?;
        let [jobs, smt, swap] = nums[..] else {
            return Err(ParseExperimentError::new(
                "expected exactly three numbers X,Y,Z",
            ));
        };
        if !(swap >= 1 && swap <= smt && smt <= jobs) {
            return Err(ParseExperimentError::new("need 1 <= Z <= Y <= X"));
        }
        Ok(ExperimentSpec {
            jobs,
            smt,
            swap,
            parallel,
            loose_sync,
            little,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for label in [
            "Jsb(6,3,3)",
            "Jsl(8,4,1)",
            "Jpb(10,2,2)",
            "J2pb(10,2,2)",
            "Jsb(12,6,6)",
        ] {
            let spec: ExperimentSpec = label.parse().unwrap();
            assert_eq!(spec.label(), label);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "Jsb",
            "Jsb(6,3)",
            "Jxb(6,3,3)",
            "Jsq(6,3,3)",
            "Jsb(3,6,3)",
            "J2sb(6,3,3)",
            "Jsb(6,3,0)",
        ] {
            assert!(
                bad.parse::<ExperimentSpec>().is_err(),
                "{bad} should not parse"
            );
        }
    }

    /// The paper's Table 2, column 3: million cycles to profile 10 schedules.
    #[test]
    fn table2_sample_cycles() {
        let m = 1_000_000;
        let cases = [
            ("Jsb(4,2,2)", 30),
            ("Jsb(5,2,2)", 250),
            ("Jsb(5,2,1)", 250),
            ("Jpb(10,2,2)", 250),
            ("J2pb(10,2,2)", 250),
            ("Jsb(6,3,3)", 100),
            ("Jsb(6,3,1)", 300),
            ("Jsl(6,3,1)", 100),
            ("Jsb(8,4,4)", 100),
            ("Jsb(8,4,1)", 400),
            ("Jsl(8,4,1)", 100),
            ("Jsb(12,4,4)", 150),
            ("Jsb(12,6,6)", 100),
        ];
        for (label, millions) in cases {
            let spec: ExperimentSpec = label.parse().unwrap();
            // Little timeslices divide a fixed budget and round down, so
            // allow sub-permille rounding slack (99,999,960 vs 100,000,000).
            let got = spec.paper_sample_cycles();
            let want = millions * m;
            assert!(
                got.abs_diff(want) * 1000 < want,
                "{label}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn thirteen_paper_experiments() {
        let all = ExperimentSpec::all_paper_experiments();
        assert_eq!(all.len(), 13);
        let labels: Vec<String> = all.iter().map(ExperimentSpec::label).collect();
        assert!(labels.contains(&"J2pb(10,2,2)".to_string()));
        // All have valid jobmixes with X schedulable threads.
        for spec in &all {
            let threads: usize = spec.jobmix().iter().map(|j| j.threads).sum();
            assert_eq!(threads, spec.jobs, "{spec}");
        }
    }

    #[test]
    fn scaling_divides_cycles() {
        let spec: ExperimentSpec = "Jsb(6,3,3)".parse().unwrap();
        assert_eq!(spec.timeslice(1), 5_000_000);
        assert_eq!(spec.timeslice(1000), 5_000);
        assert_eq!(spec.symbios_cycles(1000), 2_000_000);
    }

    #[test]
    fn little_timeslices_shrink() {
        let little: ExperimentSpec = "Jsl(6,3,1)".parse().unwrap();
        let big: ExperimentSpec = "Jsb(6,3,1)".parse().unwrap();
        assert!(little.paper_timeslice() < big.paper_timeslice());
        assert_eq!(little.paper_timeslice(), 100_000_000 / 60);
    }

    #[test]
    fn slices_per_schedule_shapes() {
        assert_eq!(ExperimentSpec::new(6, 3, 3).slices_per_schedule(), 2);
        assert_eq!(ExperimentSpec::new(6, 3, 1).slices_per_schedule(), 6);
        assert_eq!(ExperimentSpec::new(5, 2, 2).slices_per_schedule(), 5);
        assert_eq!(ExperimentSpec::new(12, 4, 4).slices_per_schedule(), 3);
    }
}

//! The event-driven online scheduling engine behind both the batch open
//! system ([`crate::opensys`]) and the `sos-serve` daemon.
//!
//! The §9 open-system loop used to live inline in `opensys.rs`, welded to a
//! pre-generated arrival trace. This module factors it into an
//! [`OnlineEngine`] driven by *events*: job submissions ([`OnlineEngine::submit`]),
//! timeslice ticks ([`OnlineEngine::step`]), and idle fast-forwards
//! ([`OnlineEngine::jump_to`]). The batch simulation replays an
//! [`crate::arrivals::ArrivalTrace`] through the engine; a long-running
//! service feeds it submissions as they arrive over the wire. Both paths run
//! the exact same scheduler state machine — naive arrival-order rotation, or
//! SOS with resampling on every arrival/departure/timer expiry, exponential
//! backoff, and optional drift-triggered resampling.
//!
//! Determinism: given the same configuration and the same sequence of
//! `submit`/`step`/`jump_to` calls, the engine's behaviour (including its
//! RNG draws for candidate schedules) is byte-identical across runs.

use crate::arrivals::JobArrival;
use crate::learn::{self, LearnConfig, LearnSummary, Learner};
use crate::metrics::{EngineMetrics, LearnMetrics};
use crate::predictor::PredictorKind;
use crate::sample::ScheduleSample;
use crate::schedule::Schedule;
use crate::telemetry::{self, Attr, TelemetryObserver};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smtsim::fastsim::{tuple_key, FastSim, FastSimCounters, FastSimEvent, FastSimPolicy};
use smtsim::trace::{InstructionSource, StreamId};
use smtsim::{MachineConfig, Processor, TimesliceStats};
use workloads::phased::{fp_int_alternator, PhasedStream};
use workloads::synth::SyntheticStream;

/// Which scheduler drives the system.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Coschedule in arrival order ("random, or naive").
    Naive,
    /// Sample-Optimize-Symbios.
    Sos,
}

impl SchedulerKind {
    /// Parses a policy name (`"naive"` / `"sos"`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "naive" => Some(SchedulerKind::Naive),
            "sos" => Some(SchedulerKind::Sos),
            _ => None,
        }
    }

    /// The lowercase policy name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Naive => "naive",
            SchedulerKind::Sos => "sos",
        }
    }
}

/// One completed job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The arrival it came from.
    pub arrival: JobArrival,
    /// Completion time in cycles.
    pub departure: u64,
}

impl JobRecord {
    /// Response time (arrival to departure).
    pub fn response(&self) -> u64 {
        self.departure - self.arrival.arrival
    }
}

/// Engine configuration: the scheduler-facing subset of
/// [`crate::opensys::OpenSystemConfig`], decoupled from trace generation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Hardware contexts (the SMT level).
    pub smt: usize,
    /// Scheduler clock in cycles.
    pub timeslice: u64,
    /// Schedules sampled per SOS sample phase.
    pub sample_schedules: usize,
    /// Predictor SOS uses.
    pub predictor: PredictorKind,
    /// Optional execution-drift trigger (see
    /// [`crate::opensys::OpenSystemConfig::drift_threshold`]).
    pub drift_threshold: Option<f64>,
    /// Base symbiosis interval (the paper reverts the symbios-phase duration
    /// to λ on every mix change; a service without a known λ picks a
    /// configured interval).
    pub base_interval: u64,
    /// RNG seed for candidate-schedule draws and per-job stream seeds.
    pub seed: u64,
    /// Phase-aware fast-forward simulation ([`smtsim::fastsim`]): when set,
    /// stable coschedule phases are extrapolated instead of simulated in
    /// detail. `None` (the default, and what old snapshots deserialize to)
    /// is full detail — byte-identical with builds that predate the field.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fastsim: Option<FastSimPolicy>,
    /// Learned-prediction configuration ([`crate::learn`]). `None` (the
    /// default, and what old configs deserialize to) disables learning
    /// unless `predictor` itself is `Learned`/`Bandit`, in which case a
    /// learner is created with defaults and a seed derived from `seed`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub learn: Option<LearnConfig>,
}

impl OnlineConfig {
    fn validate(&self) {
        assert!(
            self.smt > 0 && self.timeslice > 0 && self.base_interval > 0,
            "bad online configuration"
        );
    }

    /// The effective learner configuration: `learn` when set, or — when the
    /// predictor itself is a learned kind — defaults with a seed derived
    /// from the engine seed (so distinct shards learn on distinct
    /// exploration streams).
    pub fn effective_learn(&self) -> Option<LearnConfig> {
        match self.learn {
            Some(lc) => Some(lc),
            None if self.predictor.is_learned() => Some(LearnConfig {
                seed: self.seed ^ 0x1ea51,
                ..LearnConfig::default()
            }),
            None => None,
        }
    }
}

/// The instruction stream of a live job.
#[allow(clippy::large_enum_variant)] // a handful of live jobs at a time
enum JobStream {
    Steady(SyntheticStream),
    Phased(PhasedStream),
}

impl JobStream {
    fn is_finished(&self) -> bool {
        match self {
            JobStream::Steady(s) => s.is_finished(),
            JobStream::Phased(s) => s.is_finished(),
        }
    }
}

impl InstructionSource for JobStream {
    fn next_instr(&mut self) -> smtsim::trace::Fetch {
        match self {
            JobStream::Steady(s) => s.next_instr(),
            JobStream::Phased(s) => s.next_instr(),
        }
    }
    fn id(&self) -> StreamId {
        match self {
            JobStream::Steady(s) => s.id(),
            JobStream::Phased(s) => s.id(),
        }
    }
    fn skip_instructions(&mut self, n: u64) {
        match self {
            JobStream::Steady(s) => s.skip_instructions(n),
            JobStream::Phased(s) => s.skip_instructions(n),
        }
    }
}

/// A live job in the system.
struct LiveJob {
    key: usize, // submission index, stable for the engine's lifetime
    arrival: JobArrival,
    stream: JobStream,
    /// Whether the job has been coscheduled at least once (closes its
    /// queue-wait trace span on the first slice it runs).
    scheduled_once: bool,
}

impl LiveJob {
    fn finished(&self) -> bool {
        self.stream.is_finished()
    }
}

/// The scheduler's mode.
#[allow(clippy::large_enum_variant)] // one Mode per engine; size is irrelevant
enum Mode {
    /// Rotate over arrival order (the naive control, and SOS when all jobs
    /// fit on the machine).
    Rotate,
    /// SOS sample phase: profiling candidate orders one rotation each.
    Sampling {
        candidates: Vec<Vec<usize>>, // circular orders of live-job keys
        current: usize,
        slice_in_rotation: usize,
        collected: Vec<Vec<TimesliceStats>>,
    },
    /// SOS symbios phase: running the chosen order until the timer expires
    /// (or execution drifts from the sampled prediction).
    Symbios {
        order: Vec<usize>,
        until: u64,
        /// Aggregate IPC the chosen schedule showed in the sample phase.
        predicted_ipc: f64,
        /// Consecutive slices whose IPC deviated beyond the drift threshold.
        drift_streak: u32,
    },
}

/// Full scheduler state.
struct SchedulerState {
    kind: SchedulerKind,
    mode: Mode,
    slice: usize,
    /// Current symbiosis interval (doubles under backoff).
    interval: u64,
    /// The previous symbios pick, for backoff comparison.
    last_pick: Option<Vec<usize>>,
    /// Whether the current sample phase was triggered by a timer (a repeat
    /// prediction then doubles the interval) rather than a mix change.
    timer_triggered: bool,
}

impl SchedulerState {
    fn new(kind: SchedulerKind, interval: u64) -> Self {
        SchedulerState {
            kind,
            mode: Mode::Rotate,
            slice: 0,
            interval,
            last_pick: None,
            timer_triggered: false,
        }
    }
}

/// An unsettled bandit pull: the symbios phase the pulled arm chose is
/// still running, and its realized reward is only known once the phase
/// ends. IPC accumulates per symbios slice; the next replan settles the
/// pull against the sample-phase baseline.
struct PendingLearn {
    /// The pulled arm index (in [`learn::arms`] order).
    arm: usize,
    /// Bandit context at pull time.
    context: String,
    /// Mean sampled IPC across the candidates (the oblivious baseline).
    baseline: f64,
    /// Best sampled IPC among the candidates (the best-arm proxy).
    best_proxy: f64,
    /// Sum of symbios-slice total IPCs since the pull.
    ipc_sum: f64,
    /// Symbios slices accumulated.
    slices: u64,
}

/// The learner plumbing threaded through [`advance_after_slice`]: the
/// engine's optional learner, its metrics handles, the unsettled bandit
/// pull, and the bandit context of the current jobmix.
struct LearnHooks<'a> {
    learner: Option<&'a mut Learner>,
    metrics: Option<&'a LearnMetrics>,
    pending: &'a mut Option<PendingLearn>,
    context: &'a str,
}

/// The event-driven online scheduling engine.
///
/// Lifecycle: [`submit`](Self::submit) jobs (at the engine's current time or
/// later per their `arrival` stamp), [`step`](Self::step) to run one
/// timeslice and collect departures, [`jump_to`](Self::jump_to) to
/// fast-forward across idle gaps. See the module docs for how the batch
/// open system and the `sos-serve` daemon drive it.
pub struct OnlineEngine {
    cfg: OnlineConfig,
    cpu: Processor,
    rng: SmallRng,
    now: u64,
    live: Vec<LiveJob>,
    state: SchedulerState,
    next_key: usize,
    completed: u64,
    population_cycles: u128,
    resamples: u64,
    timeslices: u64,
    /// Queued-but-not-started jobs handed back via
    /// [`reclaim_unstarted`](Self::reclaim_unstarted) (cluster migration).
    reclaimed: usize,
    pending_mix_change: bool,
    /// Phase detector + extrapolator (`cfg.fastsim`); `None` runs every
    /// slice through the detailed model, leaving output byte-identical with
    /// pre-fast-sim builds.
    fastsim: Option<FastSim>,
    /// Live-metrics handles, attached by a serving layer (`None` costs one
    /// branch per touch point and keeps batch runs byte-identical).
    metrics: Option<EngineMetrics>,
    /// Online learner ([`crate::learn`]): present when `cfg.learn` is set
    /// or the predictor is `Learned`/`Bandit`. `None` (the default) keeps
    /// every existing run byte-identical.
    learner: Option<Learner>,
    /// `learn.*` metrics handles (independent of `metrics`, like the
    /// learner itself).
    learn_metrics: Option<LearnMetrics>,
    /// The bandit pull awaiting settlement, if any.
    pending_learn: Option<PendingLearn>,
    /// Whether to emit per-job hierarchical trace spans (admit → queue wait
    /// → schedule decision → timeslices → complete) into the telemetry
    /// event stream. Off by default: job spans are high-volume and only a
    /// tracing service wants them.
    job_spans: bool,
}

impl OnlineEngine {
    /// Builds an engine on a fresh Alpha-21264-like machine at the
    /// configured SMT level.
    ///
    /// # Panics
    /// Panics if `cfg.smt == 0`, `cfg.timeslice == 0`, or
    /// `cfg.base_interval == 0`.
    pub fn new(kind: SchedulerKind, cfg: &OnlineConfig) -> Self {
        cfg.validate();
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(cfg.smt));
        if telemetry::is_enabled() {
            cpu.set_observer(Box::new(TelemetryObserver::new()));
        }
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5c4ed);
        OnlineEngine {
            cfg: cfg.clone(),
            cpu,
            rng,
            now: 0,
            live: Vec::new(),
            state: SchedulerState::new(kind, cfg.base_interval),
            next_key: 0,
            completed: 0,
            population_cycles: 0,
            resamples: 0,
            timeslices: 0,
            reclaimed: 0,
            pending_mix_change: false,
            fastsim: cfg.fastsim.clone().map(FastSim::new),
            metrics: None,
            learner: cfg.effective_learn().map(Learner::new),
            learn_metrics: None,
            pending_learn: None,
            job_spans: false,
        }
    }

    /// Replaces the fast-sim policy at runtime (the serve daemon's `fastsim`
    /// verb). Any tracked phase state is dropped; `None` returns the engine
    /// to full detail.
    pub fn set_fastsim(&mut self, policy: Option<FastSimPolicy>) {
        self.cfg.fastsim = policy.clone();
        self.fastsim = policy.map(FastSim::new);
    }

    /// The active fast-sim policy, if any.
    pub fn fastsim_policy(&self) -> Option<&FastSimPolicy> {
        self.fastsim.as_ref().map(|f| f.policy())
    }

    /// Lifetime extrapolated-vs-detailed counters, when fast-sim is on.
    pub fn fastsim_counters(&self) -> Option<&FastSimCounters> {
        self.fastsim.as_ref().map(|f| f.counters())
    }

    /// Attaches live-metrics handles (see [`crate::metrics::EngineMetrics`]).
    /// The engine updates them inline as it schedules; without an attach the
    /// instrumentation costs a single `Option` check.
    pub fn attach_metrics(&mut self, metrics: EngineMetrics) {
        metrics.queue_depth.set(self.live.len() as f64);
        self.metrics = Some(metrics);
    }

    /// Attaches `learn.*` metrics handles (see
    /// [`crate::metrics::LearnMetrics`]). A no-op family when the engine has
    /// no learner.
    pub fn attach_learn_metrics(&mut self, metrics: LearnMetrics) {
        if let Some(l) = &self.learner {
            metrics.sync(&l.summary());
        }
        self.learn_metrics = Some(metrics);
    }

    /// The engine's learner, if learning is enabled (serialize it into a
    /// snapshot so a restart keeps the model).
    pub fn learner(&self) -> Option<&Learner> {
        self.learner.as_ref()
    }

    /// Restores learner state from a snapshot, replacing any current model.
    /// Enables learning even when the configuration alone would not (the
    /// snapshot's presence is the signal that this engine was learning).
    pub fn restore_learner(&mut self, learner: Learner) {
        if let Some(m) = &self.learn_metrics {
            m.sync(&learner.summary());
        }
        self.learner = Some(learner);
        self.pending_learn = None;
    }

    /// The learner's summary, if learning is enabled.
    pub fn learn_summary(&self) -> Option<LearnSummary> {
        self.learner.as_ref().map(Learner::summary)
    }

    /// Enables per-job hierarchical trace spans on the telemetry event
    /// stream (they also require [`crate::telemetry::enable`]). Each job
    /// gets its own `job/<id>` track: a `job.lifetime` span wrapping
    /// `job.queue_wait`, a `job.schedule_decision` instant, one
    /// `job.timeslice` span per slice it runs, and a `job.complete` instant.
    pub fn set_job_spans(&mut self, on: bool) {
        self.job_spans = on;
    }

    /// Whether per-job trace spans are enabled.
    pub fn job_spans(&self) -> bool {
        self.job_spans
    }

    /// Timeslices simulated over the engine's lifetime.
    pub fn timeslices(&self) -> u64 {
        self.timeslices
    }

    /// Which scheduler drives this engine.
    pub fn kind(&self) -> SchedulerKind {
        self.state.kind
    }

    /// The engine's configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jobs currently in the system.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Jobs submitted over the engine's lifetime.
    pub fn submitted(&self) -> usize {
        self.next_key
    }

    /// Jobs completed over the engine's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Jobs reclaimed (migrated away) over the engine's lifetime.
    pub fn reclaimed(&self) -> usize {
        self.reclaimed
    }

    /// Sample phases entered (always 0 for the naive scheduler).
    pub fn resamples(&self) -> u64 {
        self.resamples
    }

    /// Time-averaged number of jobs resident (Little's-law `N`).
    pub fn mean_population(&self) -> f64 {
        self.population_cycles as f64 / self.now.max(1) as f64
    }

    /// The arrival records of the jobs currently in the system (used for
    /// snapshots: an in-flight job is re-queued from this record).
    pub fn live_arrivals(&self) -> Vec<JobArrival> {
        self.live.iter().map(|j| j.arrival.clone()).collect()
    }

    /// Fast-forwards simulated time across an idle gap (no accounting: the
    /// system is empty, so no population or response time accrues). Also
    /// used on restore to resume the clock from a snapshot.
    pub fn jump_to(&mut self, t: u64) {
        self.now = self.now.max(t);
    }

    /// Admits a job into the system and returns its key (the submission
    /// index). The job's `arrival` stamp is used for response-time
    /// accounting; a service submits with `arrival = engine.now()`.
    ///
    /// Scheduling reacts at the next [`step`](Self::step): the mix change is
    /// recorded and triggers a replan (for SOS, a resample) there.
    pub fn submit(&mut self, arrival: JobArrival) -> usize {
        let key = self.next_key;
        self.next_key += 1;
        telemetry::instant(
            "opensys",
            "opensys.arrival",
            vec![
                Attr::num("job", key as f64),
                Attr::text("benchmark", format!("{:?}", arrival.benchmark)),
                Attr::text("phased", if arrival.phased { "true" } else { "false" }),
            ],
        );
        telemetry::counter_add("opensys.arrivals", 1);
        // Full 64-bit key: a long-lived daemon past 2^32 submissions must not
        // reuse a stream identity (truncation made jobs replay other jobs'
        // instruction streams).
        let id = StreamId(key as u64);
        let job_seed = self.cfg.seed ^ (key as u64).wrapping_mul(0x9e37);
        let stream = if arrival.phased {
            // Phase length ~ a handful of timeslices' worth of work, so
            // personalities shift at the granularity resampling can see.
            JobStream::Phased(
                fp_int_alternator(self.cfg.timeslice * 8, id, job_seed)
                    .with_limit(arrival.instructions),
            )
        } else {
            JobStream::Steady(
                SyntheticStream::new(arrival.benchmark.profile(), id, job_seed)
                    .with_limit(arrival.instructions),
            )
        };
        if self.job_spans && telemetry::is_enabled() {
            telemetry::set_clock(self.now);
            let track = job_track(key);
            telemetry::span_start(
                &track,
                "job.lifetime",
                vec![
                    Attr::text("benchmark", format!("{:?}", arrival.benchmark)),
                    Attr::num("instructions", arrival.instructions as f64),
                    Attr::text("phased", if arrival.phased { "true" } else { "false" }),
                ],
            );
            telemetry::instant(&track, "job.admit", vec![Attr::num("key", key as f64)]);
            telemetry::span_start(&track, "job.queue_wait", vec![]);
        }
        self.live.push(LiveJob {
            key,
            arrival,
            stream,
            scheduled_once: false,
        });
        if let Some(m) = &self.metrics {
            m.queue_depth.set(self.live.len() as f64);
        }
        self.pending_mix_change = true;
        key
    }

    /// Removes up to `max` queued-but-not-started jobs (newest first) and
    /// returns their arrival records in arrival order, for resubmission
    /// elsewhere. This is the migration primitive of the cluster scheduler:
    /// only jobs that have never run a timeslice are eligible, so no
    /// execution progress is lost and the job can be rebuilt bit-identically
    /// from its [`JobArrival`] on the destination shard.
    ///
    /// Reclaiming counts as a mix change (the next [`step`](Self::step)
    /// replans). Keys are never reused, so [`submitted`](Self::submitted)
    /// still counts the reclaimed jobs; [`reclaimed`](Self::reclaimed)
    /// reports how many left this way.
    pub fn reclaim_unstarted(&mut self, max: usize) -> Vec<JobArrival> {
        if max == 0 || self.live.is_empty() {
            return Vec::new();
        }
        let tracing = self.job_spans && telemetry::is_enabled();
        let mut taken = Vec::new();
        let mut i = self.live.len();
        while i > 0 && taken.len() < max {
            i -= 1;
            if !self.live[i].scheduled_once {
                let job = self.live.remove(i);
                if tracing {
                    telemetry::set_clock(self.now);
                    let track = job_track(job.key);
                    telemetry::span_end(&track, "job.queue_wait");
                    telemetry::instant(&track, "job.reclaimed", vec![]);
                    telemetry::span_end(&track, "job.lifetime");
                }
                taken.push(job.arrival);
            }
        }
        if !taken.is_empty() {
            taken.reverse();
            self.reclaimed += taken.len();
            self.pending_mix_change = true;
            if let Some(m) = &self.metrics {
                m.queue_depth.set(self.live.len() as f64);
            }
            telemetry::gauge_set("opensys.jobs_in_system", self.live.len() as f64);
        }
        taken
    }

    /// Runs one timeslice: replans if the mix changed since the last step,
    /// honours the symbiosis timer, executes the scheduled tuple, advances
    /// the state machine, and returns the jobs that departed.
    ///
    /// A step with no live jobs is a no-op returning an empty vec (time does
    /// not advance; use [`jump_to`](Self::jump_to) for idle gaps).
    pub fn step(&mut self) -> Vec<JobRecord> {
        if self.live.is_empty() {
            return Vec::new();
        }
        telemetry::set_clock(self.now);
        if self.pending_mix_change {
            self.pending_mix_change = false;
            telemetry::gauge_set("opensys.jobs_in_system", self.live.len() as f64);
            self.replan(false);
            if matches!(self.state.mode, Mode::Sampling { .. }) {
                self.resamples += 1;
                if let Some(m) = &self.metrics {
                    m.resamples.inc();
                }
                telemetry::instant(
                    "opensys",
                    "opensys.resample",
                    vec![
                        Attr::text("trigger", "arrival"),
                        Attr::num("live", self.live.len() as f64),
                    ],
                );
                telemetry::counter_add("opensys.resamples", 1);
            }
        }
        // Symbios timer (or pending drift trigger)?
        if let Mode::Symbios { until, .. } = &self.state.mode {
            if self.now >= *until && self.live.len() > self.cfg.smt {
                self.replan(true);
                if matches!(self.state.mode, Mode::Sampling { .. }) {
                    self.resamples += 1;
                    if let Some(m) = &self.metrics {
                        m.resamples.inc();
                    }
                    telemetry::instant(
                        "opensys",
                        "opensys.resample",
                        vec![
                            Attr::text("trigger", "timer"),
                            Attr::num("live", self.live.len() as f64),
                        ],
                    );
                    telemetry::counter_add("opensys.resamples", 1);
                }
            }
        }

        // Run one timeslice.
        let tuple_keys = current_tuple(&self.state, &self.cfg, &self.live);
        let tuple_positions: Vec<usize> = tuple_keys
            .iter()
            .filter_map(|k| self.live.iter().position(|j| j.key == *k))
            .collect();
        let mode = mode_name(&self.state.mode);
        let tracing = self.job_spans && telemetry::is_enabled();
        for &pos in &tuple_positions {
            let job = &mut self.live[pos];
            // Mark unconditionally: `scheduled_once` gates migration
            // eligibility (reclaim_unstarted), not just trace spans, so it
            // must be tracked even with telemetry off.
            let first_slice = !job.scheduled_once;
            job.scheduled_once = true;
            if tracing {
                let track = job_track(job.key);
                if first_slice {
                    telemetry::span_end(&track, "job.queue_wait");
                    telemetry::instant(
                        &track,
                        "job.schedule_decision",
                        vec![
                            Attr::text("mode", mode),
                            Attr::num(
                                "wait_cycles",
                                self.now.saturating_sub(job.arrival.arrival) as f64,
                            ),
                        ],
                    );
                }
                telemetry::span_start(&track, "job.timeslice", vec![Attr::text("mode", mode)]);
            }
        }
        // Fast-sim: outside the sample phase (whose measurements must be
        // real hardware counters), a tuple whose phase is locked gets its
        // slice synthesized from the reference window and its streams
        // fast-forwarded past the credited work; every detailed slice feeds
        // the phase detector. With `fastsim: None` this is the one branch
        // the feature costs and output is byte-identical to full detail.
        let sampling = matches!(self.state.mode, Mode::Sampling { .. });
        let mut extrapolated = false;
        let stats = match self.fastsim.as_mut() {
            Some(fs) if !sampling && !tuple_positions.is_empty() => {
                let key = tuple_key(tuple_positions.iter().map(|&p| self.live[p].stream.id().0));
                if let Some(stats) = fs.try_extrapolate(&key, self.cfg.timeslice) {
                    extrapolated = true;
                    for &pos in &tuple_positions {
                        let job = &mut self.live[pos];
                        if let Some(ts) = stats.thread(job.stream.id()) {
                            job.stream.skip_instructions(ts.committed);
                        }
                    }
                    stats
                } else {
                    let stats = run_tuple(
                        &mut self.cpu,
                        &mut self.live,
                        &tuple_positions,
                        self.cfg.timeslice,
                    );
                    let event = fs.observe_detailed(&key, &stats);
                    match event {
                        Some(FastSimEvent::PhaseLocked { confidence }) => {
                            if let Some(m) = &self.metrics {
                                m.fastsim_phase_locks.inc();
                            }
                            telemetry::instant(
                                "fastsim",
                                "fastsim.phase_lock",
                                vec![
                                    Attr::num("confidence", confidence),
                                    Attr::num("tuple_size", tuple_positions.len() as f64),
                                ],
                            );
                            telemetry::counter_add("fastsim.phase_locks", 1);
                        }
                        Some(FastSimEvent::Fallback { deviation }) => {
                            if let Some(m) = &self.metrics {
                                m.fastsim_fallbacks.inc();
                            }
                            telemetry::instant(
                                "fastsim",
                                "fastsim.fallback",
                                vec![Attr::num("deviation", deviation)],
                            );
                            telemetry::counter_add("fastsim.fallbacks", 1);
                        }
                        Some(FastSimEvent::Resync {
                            deviation,
                            confidence,
                        }) => {
                            if let Some(m) = &self.metrics {
                                m.fastsim_resyncs.inc();
                            }
                            telemetry::instant(
                                "fastsim",
                                "fastsim.resync",
                                vec![
                                    Attr::num("deviation", deviation),
                                    Attr::num("confidence", confidence),
                                ],
                            );
                            telemetry::counter_add("fastsim.resyncs", 1);
                        }
                        Some(FastSimEvent::ResampleOk { .. }) | None => {}
                    }
                    stats
                }
            }
            _ => run_tuple(
                &mut self.cpu,
                &mut self.live,
                &tuple_positions,
                self.cfg.timeslice,
            ),
        };
        self.population_cycles += (self.live.len() as u128) * (self.cfg.timeslice as u128);
        self.now += self.cfg.timeslice;
        self.timeslices += 1;
        if tracing {
            telemetry::set_clock(self.now);
            for &pos in &tuple_positions {
                telemetry::span_end(&job_track(self.live[pos].key), "job.timeslice");
            }
        }
        if extrapolated {
            if let Some(m) = &self.metrics {
                m.extrapolated_slices.inc();
            }
            telemetry::counter_add("fastsim.extrapolated_slices", 1);
        }
        if let Some(m) = &self.metrics {
            m.timeslices.inc();
            m.running.set(tuple_positions.len() as f64);
            match self.state.mode {
                Mode::Rotate => m.rotate_slices.inc(),
                Mode::Sampling { .. } => m.sampling_slices.inc(),
                Mode::Symbios { .. } => m.symbios_slices.inc(),
            }
        }
        let learn_context = if self.learner.is_some() {
            let benches: Vec<workloads::Benchmark> =
                self.live.iter().map(|j| j.arrival.benchmark).collect();
            learn::context_of(&benches)
        } else {
            String::new()
        };
        advance_after_slice(
            &mut self.state,
            &self.cfg,
            &stats,
            self.now,
            self.metrics.as_ref(),
            LearnHooks {
                learner: self.learner.as_mut(),
                metrics: self.learn_metrics.as_ref(),
                pending: &mut self.pending_learn,
                context: &learn_context,
            },
        );

        // Departures.
        let now = self.now;
        let mut departed = Vec::new();
        self.live.retain(|j| {
            if j.finished() {
                let response = now.saturating_sub(j.arrival.arrival);
                telemetry::instant(
                    "opensys",
                    "opensys.departure",
                    vec![
                        Attr::num("job", j.key as f64),
                        Attr::num("response_cycles", response as f64),
                    ],
                );
                telemetry::counter_add("opensys.departures", 1);
                telemetry::histogram_record("opensys.response_cycles", response);
                if tracing {
                    let track = job_track(j.key);
                    telemetry::instant(
                        &track,
                        "job.complete",
                        vec![Attr::num("response_cycles", response as f64)],
                    );
                    telemetry::span_end(&track, "job.lifetime");
                }
                departed.push(JobRecord {
                    arrival: j.arrival.clone(),
                    departure: now,
                });
                false
            } else {
                true
            }
        });
        if !departed.is_empty() {
            self.completed += departed.len() as u64;
            if let Some(m) = &self.metrics {
                m.queue_depth.set(self.live.len() as f64);
            }
            telemetry::gauge_set("opensys.jobs_in_system", self.live.len() as f64);
            if !self.live.is_empty() {
                self.replan(false);
                if matches!(self.state.mode, Mode::Sampling { .. }) {
                    telemetry::instant(
                        "opensys",
                        "opensys.resample",
                        vec![
                            Attr::text("trigger", "departure"),
                            Attr::num("live", self.live.len() as f64),
                        ],
                    );
                }
            }
        }
        departed
    }

    /// Settles the outstanding bandit pull, if any: reward = realized mean
    /// symbios IPC over the sample-phase mean (the oblivious baseline);
    /// best = the best sampled IPC over the same baseline (an observable
    /// proxy for the best arm — the engine has no solo rates, so true WS is
    /// not measurable online; see DESIGN.md §13).
    fn settle_learn(&mut self) {
        let Some(p) = self.pending_learn.take() else {
            return;
        };
        let Some(l) = self.learner.as_mut() else {
            return;
        };
        if p.slices == 0 || p.baseline <= 0.0 {
            return;
        }
        let realized = p.ipc_sum / p.slices as f64;
        let reward = realized / p.baseline;
        let best = p.best_proxy / p.baseline;
        l.reward_arm(p.arm, &p.context, reward, best);
        if let Some(m) = &self.learn_metrics {
            m.sync(&l.summary());
        }
        telemetry::instant(
            "opensys",
            "learn.settle",
            vec![
                Attr::text("context", p.context),
                Attr::text("arm", learn::arms()[p.arm].name()),
                Attr::num("reward", reward),
                Attr::num("regret", (best - reward).max(0.0)),
            ],
        );
    }

    /// Re-plans after an arrival, a departure, or a symbiosis-timer expiry.
    fn replan(&mut self, timer: bool) {
        // A replan ends any running symbios phase, so the outstanding
        // bandit pull (if any) has seen all the slices it will get.
        self.settle_learn();
        if let Some(fs) = &mut self.fastsim {
            // Every replan marks a mix change (or a fresh sampling pass):
            // the shared cache/predictor state shifts under every tracked
            // phase, so locked phases must re-prove themselves through a
            // re-sample window before extrapolating again. (A full
            // invalidate here costs a relock window per tuple per mix
            // change, which in a busy open system suppresses extrapolation
            // almost entirely.)
            fs.revalidate();
        }
        let state = &mut self.state;
        let cfg = &self.cfg;
        state.slice = 0;
        state.timer_triggered = timer;
        if !timer {
            // "When a job arrives or departs ... the duration of the
            // symbiosis phase reverts to λ."
            state.interval = cfg.base_interval;
            state.last_pick = None;
        }
        match state.kind {
            SchedulerKind::Naive => {
                state.mode = Mode::Rotate;
            }
            SchedulerKind::Sos => {
                let keys: Vec<usize> = self.live.iter().map(|j| j.key).collect();
                if keys.len() <= cfg.smt {
                    state.mode = Mode::Rotate;
                    return;
                }
                // Draw distinct candidate circular orders.
                let mut candidates: Vec<Vec<usize>> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                let budget = cfg.sample_schedules.max(1);
                let mut attempts = 0;
                while candidates.len() < budget && attempts < budget * 30 {
                    attempts += 1;
                    let mut order = keys.clone();
                    order.shuffle(&mut self.rng);
                    if seen.insert(schedule_of(&order, cfg.smt).canonical_key()) {
                        candidates.push(order);
                    }
                }
                let n = candidates.len();
                state.mode = Mode::Sampling {
                    candidates,
                    current: 0,
                    slice_in_rotation: 0,
                    collected: vec![Vec::new(); n],
                };
            }
        }
    }
}

/// The schedule implied by a circular order of keys at SMT level `y`
/// (swap-all discipline).
fn schedule_of(order: &[usize], y: usize) -> Schedule {
    let mut dense: Vec<usize> = order.to_vec();
    let mut sorted = dense.clone();
    sorted.sort_unstable();
    for v in dense.iter_mut() {
        *v = sorted.binary_search(v).expect("present");
    }
    let y = y.min(dense.len()).max(1);
    Schedule::new(dense, y, y)
}

/// Window of `y` keys starting at `slice·y` in the circular `order`,
/// restricted to keys still live.
fn window(order: &[usize], live: &[LiveJob], y: usize, slice: usize) -> Vec<usize> {
    // One O(live) set build instead of an O(order × live) scan per call —
    // this runs every timeslice, and production queue depths made it
    // quadratic. Filtering preserves `order`, so output is unchanged.
    let live_keys: std::collections::HashSet<usize> = live.iter().map(|j| j.key).collect();
    let alive: Vec<usize> = order
        .iter()
        .copied()
        .filter(|k| live_keys.contains(k))
        .collect();
    let n = alive.len();
    if n == 0 {
        return Vec::new();
    }
    let y = y.min(n);
    let start = (slice * y) % n;
    (0..y).map(|k| alive[(start + k) % n]).collect()
}

/// The tuple to run this timeslice (does not advance state).
fn current_tuple(state: &SchedulerState, cfg: &OnlineConfig, live: &[LiveJob]) -> Vec<usize> {
    let arrival_order: Vec<usize> = live.iter().map(|j| j.key).collect();
    match &state.mode {
        Mode::Rotate => window(&arrival_order, live, cfg.smt, state.slice),
        Mode::Sampling {
            candidates,
            current,
            slice_in_rotation,
            ..
        } => window(&candidates[*current], live, cfg.smt, *slice_in_rotation),
        Mode::Symbios { order, .. } => window(order, live, cfg.smt, state.slice),
    }
}

/// The display name of a scheduler mode (used as a trace attribute).
fn mode_name(mode: &Mode) -> &'static str {
    match mode {
        Mode::Rotate => "rotate",
        Mode::Sampling { .. } => "sampling",
        Mode::Symbios { .. } => "symbios",
    }
}

/// The telemetry track carrying one job's hierarchical spans.
fn job_track(key: usize) -> String {
    format!("job/{key}")
}

/// Books the finished slice and advances the scheduler state machine.
fn advance_after_slice(
    state: &mut SchedulerState,
    cfg: &OnlineConfig,
    stats: &TimesliceStats,
    now: u64,
    metrics: Option<&EngineMetrics>,
    mut hooks: LearnHooks<'_>,
) {
    state.slice += 1;
    // Accumulate the running symbios phase's realized IPC toward the
    // outstanding bandit pull (settled at the next replan).
    if matches!(state.mode, Mode::Symbios { .. }) {
        if let Some(p) = hooks.pending.as_mut() {
            p.ipc_sum += stats.total_ipc();
            p.slices += 1;
        }
    }
    // Drift detection (§9 extension): if the running schedule stops behaving
    // like its sample, force an early resample by expiring the timer.
    if let (
        Mode::Symbios {
            until,
            predicted_ipc,
            drift_streak,
            ..
        },
        Some(threshold),
    ) = (&mut state.mode, cfg.drift_threshold)
    {
        if *predicted_ipc > 0.0 {
            let observed = stats.total_ipc();
            let deviation = (observed - *predicted_ipc).abs() / *predicted_ipc;
            if deviation > threshold {
                *drift_streak += 1;
                if *drift_streak >= 3 {
                    *until = now; // resample at the next scheduling point
                    state.last_pick = None; // do not back off after a drift
                }
            } else {
                *drift_streak = 0;
            }
        }
    }
    let timer_triggered = state.timer_triggered;
    let prev_pick = state.last_pick.clone();
    let interval = state.interval;
    if let Mode::Sampling {
        candidates,
        current,
        slice_in_rotation,
        collected,
    } = &mut state.mode
    {
        collected[*current].push(stats.clone());
        *slice_in_rotation += 1;
        // One *full* rotation: the schedule's complete tuple set ("the
        // minimum time required to evaluate the schedule", §5.2). Sampling
        // fewer windows would leave most of the symbios-phase tuples unseen.
        let x = candidates[*current].len();
        let y = cfg.smt.min(x).max(1);
        let slices_per_rotation = slices_for(x, y);
        if *slice_in_rotation >= slices_per_rotation {
            *slice_in_rotation = 0;
            *current += 1;
            if *current >= candidates.len() {
                // Predict and enter symbios.
                let samples: Vec<ScheduleSample> = candidates
                    .iter()
                    .zip(collected.iter())
                    .filter(|(_, sl)| !sl.is_empty())
                    .map(|(ord, slices)| condense(ord, cfg.smt, slices))
                    .collect();
                let pick = if samples.is_empty() {
                    0
                } else if let Some(l) = hooks.learner.as_deref_mut() {
                    // Prequential: pick with the model as-is, then train on
                    // this sample phase. Targets are per-candidate sampled
                    // IPC — the engine has no solo rates, so realized WS is
                    // not observable online (DESIGN.md §13 documents the
                    // proxy).
                    let chosen = match cfg.predictor {
                        PredictorKind::Learned => l.choose_learned(&samples),
                        PredictorKind::Bandit => {
                            let (arm, p) = l.choose_bandit(&samples, hooks.context);
                            let n = samples.len() as f64;
                            let baseline = samples.iter().map(|s| s.ipc).sum::<f64>() / n;
                            let best_proxy = samples
                                .iter()
                                .map(|s| s.ipc)
                                .fold(f64::NEG_INFINITY, f64::max);
                            *hooks.pending = Some(PendingLearn {
                                arm,
                                context: hooks.context.to_string(),
                                baseline,
                                best_proxy,
                                ipc_sum: 0.0,
                                slices: 0,
                            });
                            p
                        }
                        // Fixed predictor with a learner attached: shadow
                        // training only.
                        _ => cfg.predictor.choose(&samples),
                    };
                    let targets: Vec<f64> = samples.iter().map(|s| s.ipc).collect();
                    l.train(&samples, &targets);
                    if let Some(m) = hooks.metrics {
                        m.sync(&l.summary());
                    }
                    chosen
                } else {
                    cfg.predictor.choose(&samples)
                };
                let order = candidates.get(pick).cloned().unwrap_or_default();
                if let Some(m) = metrics {
                    m.predictor_picks.inc();
                    if prev_pick.as_deref() == Some(&order[..]) {
                        m.repeat_picks.inc();
                    }
                }
                // Exponential backoff: if a timer-triggered resample repeats
                // the previous prediction, double the symbiosis interval.
                let new_interval = if timer_triggered && prev_pick.as_deref() == Some(&order[..]) {
                    let doubled = interval.saturating_mul(2);
                    telemetry::instant(
                        "opensys",
                        "opensys.backoff",
                        vec![Attr::num("interval", doubled as f64)],
                    );
                    telemetry::counter_add("opensys.backoffs", 1);
                    doubled
                } else {
                    cfg.base_interval
                };
                let predicted_ipc = samples.get(pick).map(|s| s.ipc).unwrap_or(0.0);
                state.interval = new_interval;
                state.last_pick = Some(order.clone());
                state.slice = 0;
                state.mode = Mode::Symbios {
                    order,
                    until: now + new_interval,
                    predicted_ipc,
                    drift_streak: 0,
                };
            }
        }
    }
}

/// Timeslices in one full rotation of `x` jobs through windows of `y`
/// advancing by `y` (the swap-all discipline): `x / gcd(x, y)`.
fn slices_for(x: usize, y: usize) -> usize {
    if x <= y || y == 0 {
        1
    } else {
        x / gcd(x, y)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Condenses raw sample slices into a `ScheduleSample` for prediction.
fn condense(order: &[usize], y: usize, slices: &[TimesliceStats]) -> ScheduleSample {
    let schedule = schedule_of(order, y);
    let rotation = crate::runner::RotationStats {
        tuples: slices
            .iter()
            .map(|_| crate::schedule::Coschedule::new([0]))
            .collect(),
        slices: slices.to_vec(),
    };
    let mut s = ScheduleSample::from_rotations(&schedule, &[rotation]);
    s.notation = format!("order{order:?}");
    s
}

/// Runs one tuple of live jobs (by position) for a timeslice.
fn run_tuple(
    cpu: &mut Processor,
    live: &mut [LiveJob],
    positions: &[usize],
    cycles: u64,
) -> TimesliceStats {
    let mut sorted = positions.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut refs: Vec<&mut dyn InstructionSource> = live
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| sorted.binary_search(i).is_ok())
        .map(|(_, j)| &mut j.stream as &mut dyn InstructionSource)
        .collect();
    if refs.is_empty() {
        return TimesliceStats {
            cycles,
            ..Default::default()
        };
    }
    cpu.run_timeslice(&mut refs, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec::Benchmark;

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            smt: 2,
            timeslice: 2_000,
            sample_schedules: 3,
            predictor: PredictorKind::Score,
            drift_threshold: None,
            base_interval: 30_000,
            seed: 77,
            fastsim: None,
            learn: None,
        }
    }

    fn job(arrival: u64, instructions: u64) -> JobArrival {
        JobArrival {
            arrival,
            benchmark: Benchmark::Gcc,
            instructions,
            phased: false,
        }
    }

    #[test]
    fn empty_step_is_a_noop() {
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        assert!(e.step().is_empty());
        assert_eq!(e.now(), 0);
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        e.submit(job(0, 5_000));
        let mut done = Vec::new();
        for _ in 0..1_000 {
            done.extend(e.step());
            if e.live_count() == 0 {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(e.completed(), 1);
        assert!(done[0].response() >= e.config().timeslice);
        assert!(e.mean_population() > 0.0);
    }

    #[test]
    fn sos_engine_resamples_when_oversubscribed() {
        let mut e = OnlineEngine::new(SchedulerKind::Sos, &cfg());
        for i in 0..4 {
            e.submit(job(0, 40_000 + i * 1_000));
        }
        for _ in 0..2_000 {
            e.step();
            if e.live_count() == 0 {
                break;
            }
        }
        assert_eq!(e.completed(), 4);
        assert!(e.resamples() > 0, "4 jobs on SMT 2 must trigger sampling");
    }

    #[test]
    fn naive_engine_never_resamples() {
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        for i in 0..4 {
            e.submit(job(0, 20_000 + i * 1_000));
        }
        for _ in 0..2_000 {
            e.step();
            if e.live_count() == 0 {
                break;
            }
        }
        assert_eq!(e.resamples(), 0);
    }

    #[test]
    fn jump_to_never_rewinds() {
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        e.jump_to(10_000);
        assert_eq!(e.now(), 10_000);
        e.jump_to(5_000);
        assert_eq!(e.now(), 10_000);
    }

    #[test]
    fn live_arrivals_reflect_inflight_jobs() {
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        e.submit(job(0, 1_000_000));
        e.submit(job(0, 1_000_000));
        e.step();
        let inflight = e.live_arrivals();
        assert_eq!(inflight.len(), 2);
        assert!(inflight.iter().all(|a| a.instructions == 1_000_000));
    }

    #[test]
    fn submission_keys_above_u32_keep_distinct_stream_ids() {
        // Regression: `StreamId(key as u32)` truncated the submission index,
        // so the 2^32-th job replayed job 0's instruction stream.
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        let big = (1usize << 32) + 5;
        e.next_key = big;
        let key = e.submit(job(0, 1_000));
        assert_eq!(key, big);
        assert_eq!(e.live[0].stream.id(), StreamId(big as u64));
        assert_ne!(e.live[0].stream.id(), StreamId(5));
    }

    #[test]
    fn reclaim_takes_only_unstarted_jobs_newest_first() {
        let mut e = OnlineEngine::new(SchedulerKind::Naive, &cfg());
        e.submit(job(0, 1_000_000));
        e.submit(job(0, 1_000_000));
        e.step(); // job 0 (and with SMT 2, job 1) may have started
        e.submit(job(e.now(), 500_000));
        e.submit(job(e.now(), 500_000));
        let before = e.live_count();
        let taken = e.reclaim_unstarted(10);
        // Jobs 2 and 3 never ran a slice; jobs 0/1 are in the current tuple.
        assert_eq!(taken.len(), 2);
        assert!(taken.iter().all(|a| a.instructions == 500_000));
        assert_eq!(e.live_count(), before - 2);
        assert_eq!(e.reclaimed(), 2);
        // Arrival order preserved for deterministic resubmission.
        assert!(taken[0].arrival <= taken[1].arrival);
        // Bounded reclaim takes at most `max`.
        e.submit(job(e.now(), 500_000));
        e.submit(job(e.now(), 500_000));
        assert_eq!(e.reclaim_unstarted(1).len(), 1);
    }

    #[test]
    fn engine_without_learn_config_has_no_learner() {
        let e = OnlineEngine::new(SchedulerKind::Sos, &cfg());
        assert!(e.learner().is_none());
        assert!(e.learn_summary().is_none());
    }

    fn run_learned(predictor: PredictorKind) -> (u64, String) {
        let mut c = cfg();
        c.predictor = predictor;
        let mut e = OnlineEngine::new(SchedulerKind::Sos, &c);
        for i in 0..5 {
            e.submit(job(0, 60_000 + i * 2_000));
        }
        for _ in 0..3_000 {
            e.step();
            if e.live_count() == 0 {
                break;
            }
        }
        let l = e.learner().expect("learned predictor implies a learner");
        (e.completed(), serde_json::to_string(l).unwrap())
    }

    #[test]
    fn learned_predictor_trains_online_and_is_deterministic() {
        let (done_a, learner_a) = run_learned(PredictorKind::Learned);
        let (done_b, learner_b) = run_learned(PredictorKind::Learned);
        assert_eq!(done_a, 5);
        assert_eq!(done_a, done_b);
        assert_eq!(learner_a, learner_b, "learner state must replay exactly");
        let l: Learner = serde_json::from_str(&learner_a).unwrap();
        assert!(l.train_updates() > 0, "sample phases must train the model");
    }

    #[test]
    fn bandit_predictor_pulls_arms_and_settles_rewards() {
        let (done_a, learner_a) = run_learned(PredictorKind::Bandit);
        let (_, learner_b) = run_learned(PredictorKind::Bandit);
        assert_eq!(done_a, 5);
        assert_eq!(learner_a, learner_b);
        let l: Learner = serde_json::from_str(&learner_a).unwrap();
        assert!(l.bandit().total_pulls() > 0, "bandit pulls must settle");
        assert!(l.train_updates() > 0);
    }

    #[test]
    fn restored_learner_continues_from_snapshot_state() {
        let mut c = cfg();
        c.predictor = PredictorKind::Bandit;
        let mut e = OnlineEngine::new(SchedulerKind::Sos, &c);
        for i in 0..5 {
            e.submit(job(0, 60_000 + i * 2_000));
        }
        for _ in 0..3_000 {
            e.step();
            if e.live_count() == 0 {
                break;
            }
        }
        let saved = serde_json::to_string(e.learner().unwrap()).unwrap();
        let mut fresh = OnlineEngine::new(SchedulerKind::Sos, &c);
        fresh.restore_learner(serde_json::from_str(&saved).unwrap());
        assert_eq!(
            serde_json::to_string(fresh.learner().unwrap()).unwrap(),
            saved
        );
    }

    #[test]
    fn scheduler_kind_parses_both_policies() {
        assert_eq!(SchedulerKind::parse("sos"), Some(SchedulerKind::Sos));
        assert_eq!(SchedulerKind::parse("NAIVE"), Some(SchedulerKind::Naive));
        assert_eq!(SchedulerKind::parse("fifo"), None);
        assert_eq!(SchedulerKind::Sos.name(), "sos");
    }
}

//! The naive (random) baseline scheduler.
//!
//! The paper's control group "is a random, or naive, scheduler in the sense
//! that it simply coschedules jobs together in tuples equal to the SMT level
//! in the order in which they arrive." For closed jobmix experiments the
//! naive baseline's expected throughput is the mean over random schedules.

use crate::schedule::Schedule;

/// The schedule a naive scheduler produces: threads in arrival order, taken
/// `y` at a time, swapping `z` per timeslice.
///
/// # Panics
/// Panics under the same conditions as [`Schedule::new`].
pub fn fifo_schedule(arrival_order: &[usize], y: usize, z: usize) -> Schedule {
    Schedule::new(arrival_order.to_vec(), y.min(arrival_order.len()).max(1), z)
}

/// Expected weighted speedup of an oblivious scheduler: the mean over the
/// evaluated schedules.
///
/// # Panics
/// Panics if `ws` is empty.
pub fn expected_random_ws(ws: &[f64]) -> f64 {
    assert!(!ws.is_empty(), "need at least one schedule");
    ws.iter().sum::<f64>() / ws.len() as f64
}

/// Percentage improvement of `a` over `b`; NaN when either input is
/// non-finite or the baseline is zero (the same guard as
/// [`crate::report::pct_over`], so a degenerate baseline can't turn into a
/// spurious ±inf improvement).
pub fn pct_improvement(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() || b == 0.0 {
        f64::NAN
    } else {
        100.0 * (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_keeps_arrival_order() {
        let s = fifo_schedule(&[4, 2, 7, 1], 2, 2);
        assert_eq!(s.tuple_at(0).threads(), &[2, 4]);
        assert_eq!(s.tuple_at(1).threads(), &[1, 7]);
    }

    #[test]
    fn fifo_caps_tuple_size_at_pool() {
        let s = fifo_schedule(&[3, 1], 4, 1);
        assert_eq!(s.tuples().len(), 1);
        assert_eq!(s.tuple_at(0).threads(), &[1, 3]);
    }

    #[test]
    fn expectation_is_mean() {
        assert!((expected_random_ws(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_math() {
        assert!((pct_improvement(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!(pct_improvement(0.9, 1.0) < 0.0);
    }

    #[test]
    fn improvement_guards_degenerate_baselines() {
        // A zero or non-finite baseline used to yield ±inf/NaN arithmetic
        // downstream; now it is an explicit NaN.
        assert!(pct_improvement(1.0, 0.0).is_nan());
        assert!(pct_improvement(1.0, f64::NAN).is_nan());
        assert!(pct_improvement(f64::INFINITY, 1.0).is_nan());
    }

    #[test]
    #[should_panic(expected = "at least one schedule")]
    fn empty_ws_rejected() {
        let _ = expected_random_ws(&[]);
    }
}

//! Coschedules and covering schedules.
//!
//! Following §3 of the paper: "A schedule is a covering set of coschedules
//! such that every job appears in an equal number of coschedules", and "we
//! consider jobschedules to be identical if they coschedule the same tuples
//! regardless of the order in which the tuples are scheduled."
//!
//! A [`Schedule`] is represented by a circular order of the runnable threads
//! plus the machine's multithreading level `y` and swap count `z`. The
//! running set at slice `s` is the window of `y` consecutive threads starting
//! at offset `s·z` in the circular order — exactly the paper's FIFO swap
//! discipline. For `z == y` with `y` dividing the job count this reduces to a
//! fixed partition into tuples; for `z < y` it is warmstart scheduling (§8).

use serde::{Deserialize, Serialize};

/// One coschedule: the set of threads that run simultaneously during a
/// timeslice. Stored sorted.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coschedule(Vec<usize>);

impl Coschedule {
    /// Builds a coschedule from thread indices (deduplicated and sorted).
    ///
    /// # Panics
    /// Panics if `threads` is empty or contains duplicates.
    pub fn new(threads: impl IntoIterator<Item = usize>) -> Self {
        let mut v: Vec<usize> = threads.into_iter().collect();
        assert!(!v.is_empty(), "a coschedule needs at least one thread");
        v.sort_unstable();
        let before = v.len();
        v.dedup();
        assert_eq!(
            before,
            v.len(),
            "a coschedule cannot contain a thread twice"
        );
        Coschedule(v)
    }

    /// The threads in this coschedule, sorted ascending.
    pub fn threads(&self) -> &[usize] {
        &self.0
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the tuple is empty (never true; see [`Coschedule::new`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `thread` is in the tuple.
    pub fn contains(&self, thread: usize) -> bool {
        self.0.binary_search(&thread).is_ok()
    }
}

impl std::fmt::Display for Coschedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in &self.0 {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// A covering schedule over `x` threads: a circular thread order executed as
/// sliding windows of size `y` advancing by `z` threads per timeslice.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    order: Vec<usize>,
    y: usize,
    z: usize,
}

impl Schedule {
    /// Builds a schedule from a circular thread `order`, multithreading level
    /// `y`, and per-timeslice swap count `z`.
    ///
    /// ```
    /// use sos_core::schedule::Schedule;
    /// // The paper's 012_345: 6 jobs, 3 at a time, swap all 3 per slice.
    /// let s = Schedule::new(vec![0, 1, 2, 3, 4, 5], 3, 3);
    /// assert_eq!(s.paper_notation(), "012_345");
    /// ```
    ///
    /// # Panics
    /// Panics if `order` is empty or has duplicates, if `y == 0` or
    /// `z == 0`, or if `z > y`.
    pub fn new(order: Vec<usize>, y: usize, z: usize) -> Self {
        assert!(!order.is_empty(), "a schedule needs at least one thread");
        assert!(y >= 1 && z >= 1 && z <= y, "need 1 <= z <= y");
        assert!(
            Self::fair_shape(order.len(), y, z),
            "unfair shape: windows of {y} advancing by {z} over {} threads do not \
             cover every thread equally (gcd(x,z) must divide y)",
            order.len()
        );
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            order.len(),
            "schedule order cannot repeat a thread"
        );
        Schedule { order, y, z }
    }

    /// Whether the sliding-window discipline is a *fair* covering for this
    /// shape: every thread appears in the same number of coschedules. This
    /// holds exactly when everyone fits (`y >= x`) or `gcd(x, z)` divides
    /// `y`; the paper's swap-all (`z == y`) and swap-one (`z == 1`)
    /// disciplines always qualify.
    pub fn fair_shape(x: usize, y: usize, z: usize) -> bool {
        y >= x || y.is_multiple_of(gcd(x, z))
    }

    /// Number of runnable threads `x`.
    pub fn num_threads(&self) -> usize {
        self.order.len()
    }

    /// The multithreading level `y` (threads per coschedule, capped at `x`).
    pub fn tuple_size(&self) -> usize {
        self.y.min(self.order.len())
    }

    /// Threads swapped per timeslice `z`.
    pub fn swap_count(&self) -> usize {
        self.z
    }

    /// The circular thread order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of timeslices in one full rotation (after which the schedule
    /// repeats): `x / gcd(x, z)`.
    ///
    /// For `Jsb(6,3,3)` this is 2; for `Jsb(5,2,2)` it is 5; for swap-one
    /// schedules it is `x`.
    pub fn slices_per_rotation(&self) -> usize {
        let x = self.order.len();
        if self.y >= x {
            // Everyone fits: a single coschedule, no swapping.
            return 1;
        }
        x / gcd(x, self.z)
    }

    /// The coschedule run during slice `s` (slices count from 0 and wrap
    /// around the rotation).
    pub fn tuple_at(&self, s: usize) -> Coschedule {
        let x = self.order.len();
        let y = self.tuple_size();
        let start = (s % self.slices_per_rotation()) * self.z % x;
        Coschedule::new((0..y).map(|k| self.order[(start + k) % x]))
    }

    /// All coschedules of one rotation, in execution order.
    pub fn tuples(&self) -> Vec<Coschedule> {
        (0..self.slices_per_rotation())
            .map(|s| self.tuple_at(s))
            .collect()
    }

    /// The canonical identity of the schedule: the sorted multiset of its
    /// tuples. Two schedules with equal keys coschedule the same tuples and
    /// are considered identical (§3 of the paper).
    pub fn canonical_key(&self) -> Vec<Coschedule> {
        let mut t = self.tuples();
        t.sort();
        t
    }

    /// Whether every thread appears in the same number of coschedules (the
    /// paper's covering/fairness requirement). True by construction for the
    /// window representation; exposed for property tests.
    pub fn is_fair_covering(&self) -> bool {
        let mut counts = std::collections::HashMap::new();
        for t in self.tuples() {
            for &th in t.threads() {
                *counts.entry(th).or_insert(0usize) += 1;
            }
        }
        let mut vals = counts.values();
        let Some(&first) = vals.next() else {
            return false;
        };
        counts.len() == self.order.len() && vals.all(|&v| v == first)
    }

    /// Formats like the paper: `012_345` (tuples joined by underscores).
    pub fn paper_notation(&self) -> String {
        self.tuples()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("_")
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.paper_notation())
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_012_345() {
        // Jsb(6,3,3): order 0..6, windows of 3 advancing by 3.
        let s = Schedule::new(vec![0, 1, 2, 3, 4, 5], 3, 3);
        assert_eq!(s.slices_per_rotation(), 2);
        assert_eq!(s.paper_notation(), "012_345");
        assert!(s.is_fair_covering());
    }

    #[test]
    fn five_jobs_two_at_a_time_swap_two() {
        // Jsb(5,2,2): 5 slices, every job twice.
        let s = Schedule::new(vec![0, 1, 2, 3, 4], 2, 2);
        assert_eq!(s.slices_per_rotation(), 5);
        let tuples = s.tuples();
        assert_eq!(tuples.len(), 5);
        assert_eq!(s.paper_notation(), "01_23_04_12_34");
        assert!(s.is_fair_covering());
    }

    #[test]
    fn swap_one_windows() {
        // Jsb(6,3,1): 6 slices, consecutive windows.
        let s = Schedule::new(vec![0, 1, 2, 3, 4, 5], 3, 1);
        assert_eq!(s.slices_per_rotation(), 6);
        assert_eq!(s.tuple_at(0), Coschedule::new([0, 1, 2]));
        assert_eq!(s.tuple_at(1), Coschedule::new([1, 2, 3]));
        assert_eq!(s.tuple_at(5), Coschedule::new([5, 0, 1]));
        assert!(s.is_fair_covering());
    }

    #[test]
    fn everyone_fits_single_tuple() {
        let s = Schedule::new(vec![3, 1, 2], 4, 1);
        assert_eq!(s.slices_per_rotation(), 1);
        assert_eq!(s.tuples(), vec![Coschedule::new([1, 2, 3])]);
    }

    #[test]
    fn canonical_key_ignores_tuple_order() {
        // 012_345 and 345_012 are the same schedule.
        let a = Schedule::new(vec![0, 1, 2, 3, 4, 5], 3, 3);
        let b = Schedule::new(vec![3, 4, 5, 0, 1, 2], 3, 3);
        assert_eq!(a.canonical_key(), b.canonical_key());
        // ...and order within a tuple doesn't matter either.
        let c = Schedule::new(vec![2, 1, 0, 5, 4, 3], 3, 3);
        assert_eq!(a.canonical_key(), c.canonical_key());
        // But regrouping differs.
        let d = Schedule::new(vec![0, 1, 3, 2, 4, 5], 3, 3);
        assert_ne!(a.canonical_key(), d.canonical_key());
    }

    #[test]
    fn coschedule_sorts_and_finds() {
        let c = Coschedule::new([5, 1, 3]);
        assert_eq!(c.threads(), &[1, 3, 5]);
        assert!(c.contains(3));
        assert!(!c.contains(2));
        assert_eq!(c.to_string(), "135");
    }

    #[test]
    #[should_panic(expected = "cannot contain a thread twice")]
    fn duplicate_thread_rejected() {
        let _ = Coschedule::new([1, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot repeat a thread")]
    fn duplicate_in_order_rejected() {
        let _ = Schedule::new(vec![0, 1, 1], 2, 2);
    }

    #[test]
    #[should_panic(expected = "1 <= z <= y")]
    fn z_above_y_rejected() {
        let _ = Schedule::new(vec![0, 1, 2], 2, 3);
    }

    #[test]
    #[should_panic(expected = "unfair shape")]
    fn unfair_shape_rejected() {
        // Windows of 3 advancing by 2 over 4 threads cover threads unevenly.
        let _ = Schedule::new(vec![0, 1, 2, 3], 3, 2);
    }

    #[test]
    fn fair_shape_predicate() {
        assert!(Schedule::fair_shape(6, 3, 3));
        assert!(Schedule::fair_shape(6, 3, 1));
        assert!(Schedule::fair_shape(5, 2, 2));
        assert!(Schedule::fair_shape(8, 4, 2)); // gcd(8,2)=2 divides 4
        assert!(!Schedule::fair_shape(4, 3, 2)); // gcd(4,2)=2 does not divide 3
        assert!(Schedule::fair_shape(2, 5, 1)); // everyone fits
    }

    #[test]
    fn display_matches_notation() {
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        assert_eq!(s.to_string(), "01_23");
    }
}

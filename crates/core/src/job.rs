//! The pool of schedulable threads for one experiment.
//!
//! A [`JobPool`] expands a jobmix ([`workloads::JobSpec`]s) into schedulable
//! instruction streams. Single-threaded jobs contribute one stream; parallel
//! jobs contribute one stream per thread, and the pool remembers which
//! threads are siblings (needed for solo-IPC calibration and for hierarchical
//! symbiosis).

use smtsim::trace::{InstructionSource, StreamId};
use workloads::JobSpec;

/// A schedulable instruction stream.
pub type ThreadStream = Box<dyn InstructionSource + Send>;

/// The pool of schedulable threads built from a jobmix.
pub struct JobPool {
    threads: Vec<ThreadStream>,
    labels: Vec<String>,
    /// `groups[g]` lists the thread indices of job `g` (singleton for
    /// single-threaded jobs).
    groups: Vec<Vec<usize>>,
    specs: Vec<JobSpec>,
}

impl JobPool {
    /// Expands `specs` into streams. Thread `i` is tagged [`StreamId`]` (i)`;
    /// job seeds derive deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `specs` is empty.
    pub fn from_specs(specs: &[JobSpec], seed: u64) -> Self {
        assert!(!specs.is_empty(), "a job pool needs at least one job");
        let mut threads = Vec::new();
        let mut labels = Vec::new();
        let mut groups = Vec::new();
        for (j, spec) in specs.iter().enumerate() {
            let base = StreamId(threads.len() as u64);
            let job_seed = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((j as u64 + 1).wrapping_mul(0xd1b54a32d192ed03));
            let streams = spec.build(base, job_seed);
            let mut group = Vec::with_capacity(streams.len());
            for (k, s) in streams.into_iter().enumerate() {
                group.push(threads.len());
                labels.push(if spec.threads == 1 {
                    spec.label()
                } else {
                    format!("{}#{k}", spec.label())
                });
                threads.push(s);
            }
            groups.push(group);
        }
        JobPool {
            threads,
            labels,
            groups,
            specs: specs.to_vec(),
        }
    }

    /// Number of schedulable threads (the experiment's `X`).
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the pool is empty (never true; see [`JobPool::from_specs`]).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Number of jobs (parallel jobs count once).
    pub fn num_jobs(&self) -> usize {
        self.groups.len()
    }

    /// Display label of thread `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// Thread indices of job `g`.
    pub fn group(&self, g: usize) -> &[usize] {
        &self.groups[g]
    }

    /// All job groups.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The jobmix this pool was built from.
    pub fn specs(&self) -> &[JobSpec] {
        &self.specs
    }

    /// The job group containing thread `i`.
    pub fn group_of(&self, i: usize) -> &[usize] {
        self.groups
            .iter()
            .find(|g| g.contains(&i))
            .map(Vec::as_slice)
            .expect("every thread belongs to a group")
    }

    /// Mutable access to a set of distinct threads, in the order given, as
    /// the trait objects [`smtsim::Processor::run_timeslice`] consumes.
    ///
    /// This is the [`crate::runner::Runner`] hot path (one call per
    /// timeslice): it builds exactly one intermediate `Vec` and restores the
    /// caller's order with an in-place sort, where [`Self::select_mut`]
    /// allocates four (sorted copy, picked, placement slots, output).
    ///
    /// # Panics
    /// Panics if `indices` contains duplicates or out-of-range values.
    pub fn select_dyn(&mut self, indices: &[usize]) -> Vec<&mut dyn InstructionSource> {
        for (pos, &i) in indices.iter().enumerate() {
            assert!(i < self.threads.len(), "thread index out of range");
            assert!(!indices[..pos].contains(&i), "duplicate thread indices");
        }
        let mut picked: Vec<(usize, &mut dyn InstructionSource)> = self
            .threads
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| indices.contains(i))
            .map(|(i, b)| (i, b.as_mut() as &mut dyn InstructionSource))
            .collect();
        // Tuples are at most the SMT level, so the O(n²) position scan is
        // cheaper than building a lookup table.
        picked.sort_by_key(|p| indices.iter().position(|&x| x == p.0).expect("present"));
        picked.into_iter().map(|(_, r)| r).collect()
    }

    /// Mutable access to a set of distinct threads, in the order given.
    ///
    /// # Panics
    /// Panics if `indices` contains duplicates or out-of-range values.
    pub fn select_mut(&mut self, indices: &[usize]) -> Vec<&mut (dyn InstructionSource + Send)> {
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), indices.len(), "duplicate thread indices");
        // Walk the pool once, collecting mutable borrows of the selected
        // threads, then restore the caller's order.
        let mut picked: Vec<(usize, &mut (dyn InstructionSource + Send))> = self
            .threads
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| sorted.binary_search(i).is_ok())
            .map(|(i, b)| (i, b.as_mut()))
            .collect();
        assert_eq!(picked.len(), indices.len(), "thread index out of range");
        let mut out: Vec<Option<&mut (dyn InstructionSource + Send)>> =
            (0..indices.len()).map(|_| None).collect();
        for (i, r) in picked.drain(..) {
            let pos = indices.iter().position(|&x| x == i).expect("index present");
            out[pos] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("all positions filled"))
            .collect()
    }
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("threads", &self.labels)
            .field("groups", &self.groups)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim::trace::Fetch;
    use workloads::jobmix::SyncStyle;
    use workloads::Benchmark;

    fn pool() -> JobPool {
        JobPool::from_specs(
            &[
                JobSpec::single(Benchmark::Fp),
                JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight),
                JobSpec::single(Benchmark::Gcc),
            ],
            42,
        )
    }

    #[test]
    fn expansion_counts() {
        let p = pool();
        assert_eq!(p.len(), 4);
        assert_eq!(p.num_jobs(), 3);
        assert_eq!(p.group(1), &[1, 2]);
        assert_eq!(p.group_of(2), &[1, 2]);
        assert_eq!(p.label(0), "FP");
        assert_eq!(p.label(1), "mt_ARRAY(2)#0");
    }

    #[test]
    fn streams_are_tagged_by_index() {
        let mut p = pool();
        for i in 0..4 {
            let refs = p.select_mut(&[i]);
            assert_eq!(refs[0].id(), StreamId(i as u64));
        }
    }

    #[test]
    fn select_mut_preserves_order() {
        let mut p = pool();
        let refs = p.select_mut(&[3, 0]);
        assert_eq!(refs[0].id(), StreamId(3));
        assert_eq!(refs[1].id(), StreamId(0));
    }

    #[test]
    fn select_mut_streams_work() {
        let mut p = pool();
        let mut refs = p.select_mut(&[0, 3]);
        for r in refs.iter_mut() {
            assert!(matches!(r.next_instr(), Fetch::Instr(_)));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate thread indices")]
    fn select_mut_rejects_duplicates() {
        let mut p = pool();
        let _ = p.select_mut(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_mut_rejects_out_of_range() {
        let mut p = pool();
        let _ = p.select_mut(&[9]);
    }

    #[test]
    fn deterministic_across_builds() {
        let mut a = pool();
        let mut b = pool();
        let ia = a.select_mut(&[0])[0].next_instr();
        let ib = b.select_mut(&[0])[0].next_instr();
        assert_eq!(ia.instr(), ib.instr());
    }
}

//! The open system of §9: random job arrivals and departures, resampling,
//! and response time.
//!
//! Jobs enter with exponentially distributed interarrival times and have
//! exponentially distributed lengths (mean `T`, expressed as `cycles ×
//! solo-IPC` instructions of one of the Table 1 benchmarks — "a job is about
//! 2 billion cycles worth of instructions"). The arrival rate is chosen so
//! the system stays *stable*: the machine delivers roughly `WS ≈ 1.4–2`
//! solo-job-cycles per cycle, so the default interarrival time is set a
//! little above `T / WS` and the resident population hovers around the
//! paper's `N ≈ 2 × SMT-level` under queueing fluctuations.
//!
//! Two schedulers are compared on *identical* arrival traces:
//!
//! * the **naive** control, which "simply coschedules jobs together in
//!   tuples equal to the SMT level in the order in which they arrive", and
//! * **SOS**, which resamples on every arrival, departure, or expiry of the
//!   symbiosis timer (with exponential backoff when the prediction repeats),
//!   and runs the Score-predicted schedule in between.
//!
//! This module is the *batch* driver: it generates a seeded
//! [`crate::arrivals::ArrivalTrace`] and replays it through the event-driven
//! [`crate::online::OnlineEngine`], which holds the actual scheduler state
//! machine (the `sos-serve` daemon drives the same engine from live TCP
//! submissions).

use crate::online::{OnlineConfig, OnlineEngine};
use crate::telemetry::{self, Attr};
use serde::{Deserialize, Serialize};
use smtsim::trace::StreamId;
use smtsim::{MachineConfig, Processor};
use std::collections::HashMap;
use workloads::spec::Benchmark;

pub use crate::arrivals::{ArrivalTrace, ArrivalTraceSpec, JobArrival, JOB_KINDS};
pub use crate::online::{JobRecord, SchedulerKind};

/// Open-system configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpenSystemConfig {
    /// Hardware contexts (the SMT level).
    pub smt: usize,
    /// Mean job length in solo-execution cycles (the paper's `T`, scaled).
    pub mean_job_cycles: u64,
    /// Mean interarrival time in cycles (the paper's λ).
    pub mean_interarrival: u64,
    /// Scheduler clock in cycles.
    pub timeslice: u64,
    /// Measurement window (per benchmark, doubled for warm-up) used when
    /// calibrating solo IPCs for the cycles-to-instructions job-length
    /// conversion; see [`calibrate_benchmarks`].
    pub calibration_cycles: u64,
    /// Jobs to generate before closing the arrival process (the run
    /// continues until all of them complete).
    pub num_jobs: usize,
    /// Schedules sampled per SOS sample phase.
    pub sample_schedules: usize,
    /// Predictor SOS uses.
    pub predictor: crate::predictor::PredictorKind,
    /// Optional execution-drift trigger (§9: "if the jobmix is observed to
    /// be changing rapidly ... sampling frequency goes up"): when the
    /// symbios-phase IPC deviates from the sampled prediction by more than
    /// this relative fraction for several consecutive timeslices, SOS
    /// resamples immediately instead of waiting for the timer.
    pub drift_threshold: Option<f64>,
    /// Fraction of arriving jobs that are *strongly phased*
    /// ([`workloads::phased`]): they alternate between an FP-bound and an
    /// integer-bound personality, the workload class §9 says benefits most
    /// from periodic resampling. 0 reproduces the paper's SPEC/NPB-only mix.
    pub phased_fraction: f64,
    /// RNG seed; the arrival trace is a pure function of the seed, so both
    /// schedulers see identical workloads.
    pub seed: u64,
    /// Phase-aware fast-forward simulation ([`smtsim::fastsim`]); `None`
    /// (the default, and what configurations from before the field
    /// deserialize to) is full detail, byte-identical to pre-fast-sim runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fastsim: Option<smtsim::FastSimPolicy>,
}

impl OpenSystemConfig {
    /// Estimated machine throughput (weighted speedup) at an SMT level, used
    /// to place the default arrival rate in the stable region.
    pub fn estimated_ws(smt: usize) -> f64 {
        // Sustained open-system throughput in solo-job-cycles per cycle,
        // measured empirically with random Table 1 job mixes (lower than the
        // closed-system WS of the hand-diversified mixes: random draws are
        // less symbiotic and the rotation pays cold-start costs).
        match smt {
            0 | 1 => 1.0,
            2 => 1.35,
            3 => 1.55,
            4 => 1.65,
            _ => 1.75,
        }
    }

    /// A configuration at 1/1000 paper scale for the given SMT level, loaded
    /// to about 90% of estimated capacity so that the resident population
    /// hovers near the paper's `N ≈ 2 × SMT` and the scheduler has real
    /// choices to make.
    pub fn scaled(smt: usize) -> Self {
        let mean_job_cycles = 2_000_000; // 2B / 1000
        let capacity = Self::estimated_ws(smt);
        let mean_interarrival = (mean_job_cycles as f64 / (0.90 * capacity)) as u64;
        OpenSystemConfig {
            smt,
            mean_job_cycles,
            mean_interarrival,
            timeslice: 5_000,
            calibration_cycles: 60_000,
            num_jobs: 60,
            sample_schedules: 6,
            predictor: crate::predictor::PredictorKind::Score,
            drift_threshold: Some(0.35),
            phased_fraction: 0.0,
            seed: 0xA11CE,
            fastsim: None,
        }
    }

    /// The arrival-process subset of this configuration (what
    /// [`ArrivalTrace::generate`] consumes).
    pub fn trace_spec(&self) -> ArrivalTraceSpec {
        ArrivalTraceSpec {
            mean_interarrival: self.mean_interarrival,
            mean_job_cycles: self.mean_job_cycles,
            num_jobs: self.num_jobs,
            phased_fraction: self.phased_fraction,
            seed: self.seed,
        }
    }

    /// The scheduler-facing subset of this configuration (what
    /// [`OnlineEngine`] consumes). The symbiosis base interval is the mean
    /// interarrival time, as §9 prescribes.
    pub fn online(&self) -> OnlineConfig {
        OnlineConfig {
            smt: self.smt,
            timeslice: self.timeslice,
            sample_schedules: self.sample_schedules,
            predictor: self.predictor,
            drift_threshold: self.drift_threshold,
            base_interval: self.mean_interarrival,
            seed: self.seed,
            fastsim: self.fastsim.clone(),
            learn: None,
        }
    }
}

/// Result of one open-system run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpenSystemResult {
    /// Which scheduler ran.
    pub scheduler: SchedulerKind,
    /// Completed jobs.
    pub completed: Vec<JobRecord>,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Time-averaged number of jobs resident (Little's-law `N`).
    pub mean_population: f64,
    /// Sample phases entered (SOS only; 0 for the naive scheduler).
    pub resamples: u64,
}

impl OpenSystemResult {
    /// Mean response time in cycles.
    pub fn mean_response(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(|j| j.response() as f64)
            .sum::<f64>()
            / self.completed.len() as f64
    }

    /// The response times of the completed jobs, in completion order (for
    /// percentile reporting; see [`crate::report::percentiles`]).
    pub fn response_times(&self) -> Vec<f64> {
        self.completed.iter().map(|j| j.response() as f64).collect()
    }
}

/// Generates the arrival trace for a configuration: a pure function of the
/// seed, so SOS and the naive scheduler can be fed the same workload.
///
/// Job lengths are `Exp(T)` cycles converted to instructions at the
/// benchmark's solo IPC, which `solo` provides per benchmark. (Thin wrapper
/// over [`ArrivalTrace::generate`], kept for the original call sites.)
pub fn arrival_trace(cfg: &OpenSystemConfig, solo: &HashMap<Benchmark, f64>) -> Vec<JobArrival> {
    ArrivalTrace::generate(&cfg.trace_spec(), solo).jobs
}

/// Measures each benchmark's solo IPC on the given machine (used for the
/// cycles-to-instructions job-length conversion).
///
/// The measurement is a pure function of `(smt, cycles, seed)`, so it is
/// memoized through the process-wide [`crate::cache`] (keyed additionally by
/// the machine's stable hash) when that cache is enabled.
pub fn calibrate_benchmarks(smt: usize, cycles: u64, seed: u64) -> HashMap<Benchmark, f64> {
    let machine = MachineConfig::alpha21264_like(smt);
    let key = crate::cache::bench_ipc_key(machine.stable_hash(), cycles, seed);
    let rates = crate::cache::bench_rates(&key, || {
        let mut cpu = Processor::new(machine.clone());
        JOB_KINDS
            .iter()
            .map(|&b| {
                cpu.flush_memory_state();
                let mut s = b.stream(StreamId(0), seed ^ 0xCA11);
                let _ = cpu.run_timeslice(&mut [&mut *s], cycles);
                let stats = cpu.run_timeslice(&mut [&mut *s], cycles);
                crate::cache::BenchRate {
                    bench: b,
                    ipc: stats.total_ipc().max(1e-3),
                }
            })
            .collect()
    });
    rates.into_iter().map(|r| (r.bench, r.ipc)).collect()
}

/// Measures the machine's sustained open-system capacity for this
/// configuration: runs a saturated batch (every job present from cycle 0)
/// under the naive scheduler and returns delivered solo-work per cycle —
/// the weighted-speedup throughput the open system can actually sustain.
///
/// Use it to place arrival rates relative to true capacity:
/// `λ = T / (ρ · capacity)`.
pub fn measure_capacity(
    cfg: &OpenSystemConfig,
    solo: &HashMap<Benchmark, f64>,
    pilot_jobs: usize,
) -> f64 {
    let mut pilot = cfg.clone();
    pilot.num_jobs = pilot_jobs.max(4);
    let mut trace = arrival_trace(&pilot, solo);
    let mut solo_cycles = 0.0;
    for a in &mut trace {
        a.arrival = 0;
        let ipc = solo.get(&a.benchmark).copied().unwrap_or(1.0).max(1e-6);
        solo_cycles += a.instructions as f64 / ipc;
    }
    let res = run_open_system_on_trace(SchedulerKind::Naive, &pilot, &trace);
    (solo_cycles / res.cycles.max(1) as f64).max(0.1)
}

/// Runs the open system with the given scheduler.
///
/// # Panics
/// Panics if `cfg.smt == 0`, `cfg.timeslice == 0`, `cfg.num_jobs == 0`, or
/// `cfg.calibration_cycles == 0`.
pub fn run_open_system(kind: SchedulerKind, cfg: &OpenSystemConfig) -> OpenSystemResult {
    assert!(
        cfg.smt > 0 && cfg.timeslice > 0 && cfg.num_jobs > 0 && cfg.calibration_cycles > 0,
        "bad configuration"
    );
    let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
    let trace = arrival_trace(cfg, &solo);
    run_open_system_on_trace(kind, cfg, &trace)
}

/// Runs the open system on a pre-generated arrival trace (so both schedulers
/// can share one trace): replays the trace through an [`OnlineEngine`],
/// submitting each job when simulated time reaches its arrival stamp and
/// fast-forwarding across idle gaps.
pub fn run_open_system_on_trace(
    kind: SchedulerKind,
    cfg: &OpenSystemConfig,
    trace: &[JobArrival],
) -> OpenSystemResult {
    let mut engine = OnlineEngine::new(kind, &cfg.online());
    let _run_span = telemetry::span(
        "opensys",
        "opensys.run",
        vec![
            Attr::text("scheduler", format!("{kind:?}")),
            Attr::num("jobs", trace.len() as f64),
        ],
    );
    let mut next_arrival = 0usize;
    let mut completed = Vec::with_capacity(trace.len());
    while completed.len() < trace.len() {
        // The open system tracks global simulated time itself; keep the
        // telemetry clock in lockstep (also across idle fast-forwards).
        telemetry::set_clock(engine.now());
        // Admit arrivals.
        while next_arrival < trace.len() && trace[next_arrival].arrival <= engine.now() {
            engine.submit(trace[next_arrival].clone());
            next_arrival += 1;
        }
        if engine.live_count() == 0 {
            engine.jump_to(trace[next_arrival].arrival);
            continue;
        }
        completed.extend(engine.step());
    }

    OpenSystemResult {
        scheduler: kind,
        completed,
        cycles: engine.now(),
        mean_population: engine.mean_population(),
        resamples: engine.resamples(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> OpenSystemConfig {
        OpenSystemConfig {
            smt: 2,
            mean_job_cycles: 60_000,
            mean_interarrival: 30_000,
            timeslice: 2_000,
            calibration_cycles: 10_000,
            num_jobs: 8,
            sample_schedules: 3,
            predictor: crate::predictor::PredictorKind::Score,
            drift_threshold: None,
            phased_fraction: 0.0,
            seed: 77,
            fastsim: None,
        }
    }

    #[test]
    fn arrival_trace_is_deterministic_and_sorted() {
        let solo: HashMap<Benchmark, f64> = JOB_KINDS.iter().map(|&b| (b, 1.0)).collect();
        let a = arrival_trace(&tiny_cfg(), &solo);
        let b = arrival_trace(&tiny_cfg(), &solo);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn naive_system_completes_all_jobs() {
        let cfg = tiny_cfg();
        let res = run_open_system(SchedulerKind::Naive, &cfg);
        assert_eq!(res.completed.len(), cfg.num_jobs);
        assert!(res.mean_response() > 0.0);
        for j in &res.completed {
            assert!(j.departure >= j.arrival.arrival);
        }
        assert!(res.mean_population > 0.0);
    }

    #[test]
    fn sos_system_completes_all_jobs() {
        let cfg = tiny_cfg();
        let res = run_open_system(SchedulerKind::Sos, &cfg);
        assert_eq!(res.completed.len(), cfg.num_jobs);
        assert!(res.mean_response() > 0.0);
    }

    #[test]
    fn shared_trace_runs_identical_workload() {
        let cfg = tiny_cfg();
        let solo = calibrate_benchmarks(cfg.smt, 10_000, cfg.seed);
        let trace = arrival_trace(&cfg, &solo);
        let a = run_open_system_on_trace(SchedulerKind::Naive, &cfg, &trace);
        let b = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);
        let mut ka: Vec<u64> = a.completed.iter().map(|j| j.arrival.arrival).collect();
        let mut kb: Vec<u64> = b.completed.iter().map(|j| j.arrival.arrival).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
    }

    #[test]
    fn calibration_covers_all_benchmarks() {
        let solo = calibrate_benchmarks(2, 5_000, 1);
        assert_eq!(solo.len(), JOB_KINDS.len());
        assert!(solo.values().all(|&v| v > 0.0));
    }

    #[test]
    fn sos_counts_resamples_and_naive_does_not() {
        let cfg = tiny_cfg();
        let naive = run_open_system(SchedulerKind::Naive, &cfg);
        assert_eq!(naive.resamples, 0);
        let sos = run_open_system(SchedulerKind::Sos, &cfg);
        assert!(
            sos.resamples > 0,
            "SOS must enter at least one sample phase"
        );
    }

    #[test]
    fn drift_trigger_increases_sampling_frequency() {
        let mut base = tiny_cfg();
        base.num_jobs = 10;
        let without = run_open_system(SchedulerKind::Sos, &base);
        let mut twitchy = base.clone();
        twitchy.drift_threshold = Some(0.01); // hair trigger
        let with = run_open_system(SchedulerKind::Sos, &twitchy);
        assert!(
            with.resamples >= without.resamples,
            "a hair-trigger drift threshold cannot reduce resampling: {} vs {}",
            with.resamples,
            without.resamples
        );
    }

    #[test]
    fn phased_jobs_flow_through_the_system() {
        let mut cfg = tiny_cfg();
        cfg.phased_fraction = 1.0;
        let res = run_open_system(SchedulerKind::Sos, &cfg);
        assert_eq!(res.completed.len(), cfg.num_jobs);
        assert!(res.completed.iter().all(|j| j.arrival.phased));
    }

    #[test]
    fn default_config_is_stable_by_construction() {
        for smt in [2usize, 3, 4, 6] {
            let cfg = OpenSystemConfig::scaled(smt);
            // Arrival of solo-work per cycle must be below estimated capacity.
            let load = cfg.mean_job_cycles as f64 / cfg.mean_interarrival as f64;
            assert!(
                load < OpenSystemConfig::estimated_ws(smt),
                "SMT {smt}: offered load {load} exceeds capacity"
            );
        }
    }

    #[test]
    fn online_view_mirrors_config() {
        let cfg = tiny_cfg();
        let online = cfg.online();
        assert_eq!(online.smt, cfg.smt);
        assert_eq!(online.timeslice, cfg.timeslice);
        assert_eq!(online.base_interval, cfg.mean_interarrival);
        assert_eq!(online.seed, cfg.seed);
        let spec = cfg.trace_spec();
        assert_eq!(spec.num_jobs, cfg.num_jobs);
        assert_eq!(spec.mean_job_cycles, cfg.mean_job_cycles);
    }
}

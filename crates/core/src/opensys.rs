//! The open system of §9: random job arrivals and departures, resampling,
//! and response time.
//!
//! Jobs enter with exponentially distributed interarrival times and have
//! exponentially distributed lengths (mean `T`, expressed as `cycles ×
//! solo-IPC` instructions of one of the Table 1 benchmarks — "a job is about
//! 2 billion cycles worth of instructions"). The arrival rate is chosen so
//! the system stays *stable*: the machine delivers roughly `WS ≈ 1.4–2`
//! solo-job-cycles per cycle, so the default interarrival time is set a
//! little above `T / WS` and the resident population hovers around the
//! paper's `N ≈ 2 × SMT-level` under queueing fluctuations.
//!
//! Two schedulers are compared on *identical* arrival traces:
//!
//! * the **naive** control, which "simply coschedules jobs together in
//!   tuples equal to the SMT level in the order in which they arrive", and
//! * **SOS**, which resamples on every arrival, departure, or expiry of the
//!   symbiosis timer (with exponential backoff when the prediction repeats),
//!   and runs the Score-predicted schedule in between.

use crate::dist::Exponential;
use crate::predictor::PredictorKind;
use crate::sample::ScheduleSample;
use crate::schedule::Schedule;
use crate::telemetry::{self, Attr, TelemetryObserver};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smtsim::trace::{InstructionSource, StreamId};
use smtsim::{MachineConfig, Processor, TimesliceStats};
use std::collections::HashMap;
use workloads::phased::{fp_int_alternator, PhasedStream};
use workloads::spec::Benchmark;
use workloads::synth::SyntheticStream;

/// The benchmarks open-system jobs are drawn from (the single-threaded jobs
/// of Table 1).
pub const JOB_KINDS: [Benchmark; 12] = [
    Benchmark::Fp,
    Benchmark::Mg,
    Benchmark::Wave,
    Benchmark::Swim,
    Benchmark::Su2cor,
    Benchmark::Turb3d,
    Benchmark::Gcc,
    Benchmark::Go,
    Benchmark::Is,
    Benchmark::Cg,
    Benchmark::Ep,
    Benchmark::Ft,
];

/// Which scheduler drives the open system.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Coschedule in arrival order ("random, or naive").
    Naive,
    /// Sample-Optimize-Symbios.
    Sos,
}

/// Open-system configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpenSystemConfig {
    /// Hardware contexts (the SMT level).
    pub smt: usize,
    /// Mean job length in solo-execution cycles (the paper's `T`, scaled).
    pub mean_job_cycles: u64,
    /// Mean interarrival time in cycles (the paper's λ).
    pub mean_interarrival: u64,
    /// Scheduler clock in cycles.
    pub timeslice: u64,
    /// Measurement window (per benchmark, doubled for warm-up) used when
    /// calibrating solo IPCs for the cycles-to-instructions job-length
    /// conversion; see [`calibrate_benchmarks`].
    pub calibration_cycles: u64,
    /// Jobs to generate before closing the arrival process (the run
    /// continues until all of them complete).
    pub num_jobs: usize,
    /// Schedules sampled per SOS sample phase.
    pub sample_schedules: usize,
    /// Predictor SOS uses.
    pub predictor: PredictorKind,
    /// Optional execution-drift trigger (§9: "if the jobmix is observed to
    /// be changing rapidly ... sampling frequency goes up"): when the
    /// symbios-phase IPC deviates from the sampled prediction by more than
    /// this relative fraction for several consecutive timeslices, SOS
    /// resamples immediately instead of waiting for the timer.
    pub drift_threshold: Option<f64>,
    /// Fraction of arriving jobs that are *strongly phased*
    /// ([`workloads::phased`]): they alternate between an FP-bound and an
    /// integer-bound personality, the workload class §9 says benefits most
    /// from periodic resampling. 0 reproduces the paper's SPEC/NPB-only mix.
    pub phased_fraction: f64,
    /// RNG seed; the arrival trace is a pure function of the seed, so both
    /// schedulers see identical workloads.
    pub seed: u64,
}

impl OpenSystemConfig {
    /// Estimated machine throughput (weighted speedup) at an SMT level, used
    /// to place the default arrival rate in the stable region.
    pub fn estimated_ws(smt: usize) -> f64 {
        // Sustained open-system throughput in solo-job-cycles per cycle,
        // measured empirically with random Table 1 job mixes (lower than the
        // closed-system WS of the hand-diversified mixes: random draws are
        // less symbiotic and the rotation pays cold-start costs).
        match smt {
            0 | 1 => 1.0,
            2 => 1.35,
            3 => 1.55,
            4 => 1.65,
            _ => 1.75,
        }
    }

    /// A configuration at 1/1000 paper scale for the given SMT level, loaded
    /// to about 90% of estimated capacity so that the resident population
    /// hovers near the paper's `N ≈ 2 × SMT` and the scheduler has real
    /// choices to make.
    pub fn scaled(smt: usize) -> Self {
        let mean_job_cycles = 2_000_000; // 2B / 1000
        let capacity = Self::estimated_ws(smt);
        let mean_interarrival = (mean_job_cycles as f64 / (0.90 * capacity)) as u64;
        OpenSystemConfig {
            smt,
            mean_job_cycles,
            mean_interarrival,
            timeslice: 5_000,
            calibration_cycles: 60_000,
            num_jobs: 60,
            sample_schedules: 6,
            predictor: PredictorKind::Score,
            drift_threshold: Some(0.35),
            phased_fraction: 0.0,
            seed: 0xA11CE,
        }
    }
}

/// One generated job (before execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobArrival {
    /// Arrival time in cycles.
    pub arrival: u64,
    /// Which benchmark the job runs.
    pub benchmark: Benchmark,
    /// Job length in instructions.
    pub instructions: u64,
    /// Whether the job is strongly phased (see
    /// [`OpenSystemConfig::phased_fraction`]).
    #[serde(default)]
    pub phased: bool,
}

/// One completed job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The arrival it came from.
    pub arrival: JobArrival,
    /// Completion time in cycles.
    pub departure: u64,
}

impl JobRecord {
    /// Response time (arrival to departure).
    pub fn response(&self) -> u64 {
        self.departure - self.arrival.arrival
    }
}

/// Result of one open-system run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpenSystemResult {
    /// Which scheduler ran.
    pub scheduler: SchedulerKind,
    /// Completed jobs.
    pub completed: Vec<JobRecord>,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Time-averaged number of jobs resident (Little's-law `N`).
    pub mean_population: f64,
    /// Sample phases entered (SOS only; 0 for the naive scheduler).
    pub resamples: u64,
}

impl OpenSystemResult {
    /// Mean response time in cycles.
    pub fn mean_response(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed
            .iter()
            .map(|j| j.response() as f64)
            .sum::<f64>()
            / self.completed.len() as f64
    }
}

/// Generates the arrival trace for a configuration: a pure function of the
/// seed, so SOS and the naive scheduler can be fed the same workload.
///
/// Job lengths are `Exp(T)` cycles converted to instructions at the
/// benchmark's solo IPC, which `solo` provides per benchmark.
pub fn arrival_trace(cfg: &OpenSystemConfig, solo: &HashMap<Benchmark, f64>) -> Vec<JobArrival> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let inter = Exponential::with_mean(cfg.mean_interarrival as f64);
    let length = Exponential::with_mean(cfg.mean_job_cycles as f64);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(cfg.num_jobs);
    for _ in 0..cfg.num_jobs {
        t += inter.sample_cycles(&mut rng);
        let benchmark = JOB_KINDS[rng.gen_range(0..JOB_KINDS.len())];
        let cycles = length.sample_cycles(&mut rng);
        let ipc = solo.get(&benchmark).copied().unwrap_or(1.0);
        let instructions = ((cycles as f64 * ipc) as u64).max(1_000);
        let phased = cfg.phased_fraction > 0.0 && rng.gen_bool(cfg.phased_fraction.min(1.0));
        out.push(JobArrival {
            arrival: t,
            benchmark,
            instructions,
            phased,
        });
    }
    out
}

/// Measures each benchmark's solo IPC on the given machine (used for the
/// cycles-to-instructions job-length conversion).
///
/// The measurement is a pure function of `(smt, cycles, seed)`, so it is
/// memoized through the process-wide [`crate::cache`] (keyed additionally by
/// the machine's stable hash) when that cache is enabled.
pub fn calibrate_benchmarks(smt: usize, cycles: u64, seed: u64) -> HashMap<Benchmark, f64> {
    let machine = MachineConfig::alpha21264_like(smt);
    let key = crate::cache::bench_ipc_key(machine.stable_hash(), cycles, seed);
    let rates = crate::cache::bench_rates(&key, || {
        let mut cpu = Processor::new(machine.clone());
        JOB_KINDS
            .iter()
            .map(|&b| {
                cpu.flush_memory_state();
                let mut s = b.stream(StreamId(0), seed ^ 0xCA11);
                let _ = cpu.run_timeslice(&mut [&mut *s], cycles);
                let stats = cpu.run_timeslice(&mut [&mut *s], cycles);
                crate::cache::BenchRate {
                    bench: b,
                    ipc: stats.total_ipc().max(1e-3),
                }
            })
            .collect()
    });
    rates.into_iter().map(|r| (r.bench, r.ipc)).collect()
}

/// The instruction stream of a live job.
#[allow(clippy::large_enum_variant)] // a handful of live jobs at a time
enum JobStream {
    Steady(SyntheticStream),
    Phased(PhasedStream),
}

impl JobStream {
    fn is_finished(&self) -> bool {
        match self {
            JobStream::Steady(s) => s.is_finished(),
            JobStream::Phased(s) => s.is_finished(),
        }
    }
}

impl InstructionSource for JobStream {
    fn next_instr(&mut self) -> smtsim::trace::Fetch {
        match self {
            JobStream::Steady(s) => s.next_instr(),
            JobStream::Phased(s) => s.next_instr(),
        }
    }
    fn id(&self) -> StreamId {
        match self {
            JobStream::Steady(s) => s.id(),
            JobStream::Phased(s) => s.id(),
        }
    }
}

/// Measures the machine's sustained open-system capacity for this
/// configuration: runs a saturated batch (every job present from cycle 0)
/// under the naive scheduler and returns delivered solo-work per cycle —
/// the weighted-speedup throughput the open system can actually sustain.
///
/// Use it to place arrival rates relative to true capacity:
/// `λ = T / (ρ · capacity)`.
pub fn measure_capacity(
    cfg: &OpenSystemConfig,
    solo: &HashMap<Benchmark, f64>,
    pilot_jobs: usize,
) -> f64 {
    let mut pilot = cfg.clone();
    pilot.num_jobs = pilot_jobs.max(4);
    let mut trace = arrival_trace(&pilot, solo);
    let mut solo_cycles = 0.0;
    for a in &mut trace {
        a.arrival = 0;
        let ipc = solo.get(&a.benchmark).copied().unwrap_or(1.0).max(1e-6);
        solo_cycles += a.instructions as f64 / ipc;
    }
    let res = run_open_system_on_trace(SchedulerKind::Naive, &pilot, &trace);
    (solo_cycles / res.cycles.max(1) as f64).max(0.1)
}

/// A live job in the system.
struct LiveJob {
    key: usize, // index into the arrival trace
    stream: JobStream,
}

impl LiveJob {
    fn finished(&self) -> bool {
        self.stream.is_finished()
    }
}

/// The scheduler's mode.
#[allow(clippy::large_enum_variant)] // one Mode per run; size is irrelevant
enum Mode {
    /// Rotate over arrival order (the naive control, and SOS when all jobs
    /// fit on the machine).
    Rotate,
    /// SOS sample phase: profiling candidate orders one rotation each.
    Sampling {
        candidates: Vec<Vec<usize>>, // circular orders of live-job keys
        current: usize,
        slice_in_rotation: usize,
        collected: Vec<Vec<TimesliceStats>>,
    },
    /// SOS symbios phase: running the chosen order until the timer expires
    /// (or execution drifts from the sampled prediction).
    Symbios {
        order: Vec<usize>,
        until: u64,
        /// Aggregate IPC the chosen schedule showed in the sample phase.
        predicted_ipc: f64,
        /// Consecutive slices whose IPC deviated beyond the drift threshold.
        drift_streak: u32,
    },
}

/// Full scheduler state.
struct SchedulerState {
    kind: SchedulerKind,
    mode: Mode,
    slice: usize,
    /// Current symbiosis interval (doubles under backoff).
    interval: u64,
    /// The previous symbios pick, for backoff comparison.
    last_pick: Option<Vec<usize>>,
    /// Whether the current sample phase was triggered by a timer (a repeat
    /// prediction then doubles the interval) rather than a mix change.
    timer_triggered: bool,
}

impl SchedulerState {
    fn new(kind: SchedulerKind, interval: u64) -> Self {
        SchedulerState {
            kind,
            mode: Mode::Rotate,
            slice: 0,
            interval,
            last_pick: None,
            timer_triggered: false,
        }
    }
}

/// Runs the open system with the given scheduler.
///
/// # Panics
/// Panics if `cfg.smt == 0`, `cfg.timeslice == 0`, `cfg.num_jobs == 0`, or
/// `cfg.calibration_cycles == 0`.
pub fn run_open_system(kind: SchedulerKind, cfg: &OpenSystemConfig) -> OpenSystemResult {
    assert!(
        cfg.smt > 0 && cfg.timeslice > 0 && cfg.num_jobs > 0 && cfg.calibration_cycles > 0,
        "bad configuration"
    );
    let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
    let trace = arrival_trace(cfg, &solo);
    run_open_system_on_trace(kind, cfg, &trace)
}

/// Runs the open system on a pre-generated arrival trace (so both schedulers
/// can share one trace).
pub fn run_open_system_on_trace(
    kind: SchedulerKind,
    cfg: &OpenSystemConfig,
    trace: &[JobArrival],
) -> OpenSystemResult {
    let mut cpu = Processor::new(MachineConfig::alpha21264_like(cfg.smt));
    if telemetry::is_enabled() {
        cpu.set_observer(Box::new(TelemetryObserver::new()));
    }
    let _run_span = telemetry::span(
        "opensys",
        "opensys.run",
        vec![
            Attr::text("scheduler", format!("{kind:?}")),
            Attr::num("jobs", trace.len() as f64),
        ],
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5c4ed);
    let mut now = 0u64;
    let mut next_arrival = 0usize;
    let mut live: Vec<LiveJob> = Vec::new();
    let mut completed = Vec::new();
    let mut state = SchedulerState::new(kind, cfg.mean_interarrival);
    let mut population_cycles = 0u128;
    let mut resamples = 0u64;

    while completed.len() < trace.len() {
        // The open system tracks global simulated time itself; keep the
        // telemetry clock in lockstep (also across idle fast-forwards).
        telemetry::set_clock(now);
        // Admit arrivals.
        let mut mix_changed = false;
        while next_arrival < trace.len() && trace[next_arrival].arrival <= now {
            let a = &trace[next_arrival];
            telemetry::instant(
                "opensys",
                "opensys.arrival",
                vec![
                    Attr::num("job", next_arrival as f64),
                    Attr::text("benchmark", format!("{:?}", a.benchmark)),
                    Attr::text("phased", if a.phased { "true" } else { "false" }),
                ],
            );
            telemetry::counter_add("opensys.arrivals", 1);
            let id = StreamId(next_arrival as u32);
            let job_seed = cfg.seed ^ (next_arrival as u64).wrapping_mul(0x9e37);
            let stream = if a.phased {
                // Phase length ~ a handful of timeslices' worth of work, so
                // personalities shift at the granularity resampling can see.
                JobStream::Phased(
                    fp_int_alternator(cfg.timeslice * 8, id, job_seed).with_limit(a.instructions),
                )
            } else {
                JobStream::Steady(
                    SyntheticStream::new(a.benchmark.profile(), id, job_seed)
                        .with_limit(a.instructions),
                )
            };
            live.push(LiveJob {
                key: next_arrival,
                stream,
            });
            next_arrival += 1;
            mix_changed = true;
        }
        if live.is_empty() {
            now = trace[next_arrival].arrival;
            continue;
        }
        if mix_changed {
            telemetry::gauge_set("opensys.jobs_in_system", live.len() as f64);
            enter_after_mix_change(&mut state, cfg, &live, &mut rng, false);
            if matches!(state.mode, Mode::Sampling { .. }) {
                resamples += 1;
                telemetry::instant(
                    "opensys",
                    "opensys.resample",
                    vec![
                        Attr::text("trigger", "arrival"),
                        Attr::num("live", live.len() as f64),
                    ],
                );
                telemetry::counter_add("opensys.resamples", 1);
            }
        }
        // Symbios timer (or pending drift trigger)?
        if let Mode::Symbios { until, .. } = &state.mode {
            if now >= *until && live.len() > cfg.smt {
                enter_after_mix_change(&mut state, cfg, &live, &mut rng, true);
                if matches!(state.mode, Mode::Sampling { .. }) {
                    resamples += 1;
                    telemetry::instant(
                        "opensys",
                        "opensys.resample",
                        vec![
                            Attr::text("trigger", "timer"),
                            Attr::num("live", live.len() as f64),
                        ],
                    );
                    telemetry::counter_add("opensys.resamples", 1);
                }
            }
        }

        // Run one timeslice.
        let tuple_keys = current_tuple(&state, cfg, &live);
        let tuple_positions: Vec<usize> = tuple_keys
            .iter()
            .filter_map(|k| live.iter().position(|j| j.key == *k))
            .collect();
        let stats = run_tuple(&mut cpu, &mut live, &tuple_positions, cfg.timeslice);
        population_cycles += (live.len() as u128) * (cfg.timeslice as u128);
        now += cfg.timeslice;
        advance_after_slice(&mut state, cfg, &stats, now);

        // Departures.
        let mut departed = false;
        live.retain(|j| {
            if j.finished() {
                let response = now.saturating_sub(trace[j.key].arrival);
                telemetry::instant(
                    "opensys",
                    "opensys.departure",
                    vec![
                        Attr::num("job", j.key as f64),
                        Attr::num("response_cycles", response as f64),
                    ],
                );
                telemetry::counter_add("opensys.departures", 1);
                telemetry::histogram_record("opensys.response_cycles", response);
                completed.push(JobRecord {
                    arrival: trace[j.key].clone(),
                    departure: now,
                });
                departed = true;
                false
            } else {
                true
            }
        });
        if departed {
            telemetry::gauge_set("opensys.jobs_in_system", live.len() as f64);
            if !live.is_empty() {
                enter_after_mix_change(&mut state, cfg, &live, &mut rng, false);
                if matches!(state.mode, Mode::Sampling { .. }) {
                    telemetry::instant(
                        "opensys",
                        "opensys.resample",
                        vec![
                            Attr::text("trigger", "departure"),
                            Attr::num("live", live.len() as f64),
                        ],
                    );
                }
            }
        }
    }

    OpenSystemResult {
        scheduler: kind,
        completed,
        cycles: now,
        mean_population: population_cycles as f64 / now.max(1) as f64,
        resamples,
    }
}

/// Re-plans after an arrival, a departure, or a symbiosis-timer expiry.
fn enter_after_mix_change(
    state: &mut SchedulerState,
    cfg: &OpenSystemConfig,
    live: &[LiveJob],
    rng: &mut SmallRng,
    timer: bool,
) {
    state.slice = 0;
    state.timer_triggered = timer;
    if !timer {
        // "When a job arrives or departs ... the duration of the symbiosis
        // phase reverts to λ."
        state.interval = cfg.mean_interarrival;
        state.last_pick = None;
    }
    match state.kind {
        SchedulerKind::Naive => {
            state.mode = Mode::Rotate;
        }
        SchedulerKind::Sos => {
            let keys: Vec<usize> = live.iter().map(|j| j.key).collect();
            if keys.len() <= cfg.smt {
                state.mode = Mode::Rotate;
                return;
            }
            // Draw distinct candidate circular orders.
            let mut candidates: Vec<Vec<usize>> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            let budget = cfg.sample_schedules.max(1);
            let mut attempts = 0;
            while candidates.len() < budget && attempts < budget * 30 {
                attempts += 1;
                let mut order = keys.clone();
                order.shuffle(rng);
                if seen.insert(schedule_of(&order, cfg.smt).canonical_key()) {
                    candidates.push(order);
                }
            }
            let n = candidates.len();
            state.mode = Mode::Sampling {
                candidates,
                current: 0,
                slice_in_rotation: 0,
                collected: vec![Vec::new(); n],
            };
        }
    }
}

/// The schedule implied by a circular order of keys at SMT level `y`
/// (swap-all discipline).
fn schedule_of(order: &[usize], y: usize) -> Schedule {
    let mut dense: Vec<usize> = order.to_vec();
    let mut sorted = dense.clone();
    sorted.sort_unstable();
    for v in dense.iter_mut() {
        *v = sorted.binary_search(v).expect("present");
    }
    let y = y.min(dense.len()).max(1);
    Schedule::new(dense, y, y)
}

/// Window of `y` keys starting at `slice·y` in the circular `order`,
/// restricted to keys still live.
fn window(order: &[usize], live: &[LiveJob], y: usize, slice: usize) -> Vec<usize> {
    let alive: Vec<usize> = order
        .iter()
        .copied()
        .filter(|k| live.iter().any(|j| j.key == *k))
        .collect();
    let n = alive.len();
    if n == 0 {
        return Vec::new();
    }
    let y = y.min(n);
    let start = (slice * y) % n;
    (0..y).map(|k| alive[(start + k) % n]).collect()
}

/// The tuple to run this timeslice (does not advance state).
fn current_tuple(state: &SchedulerState, cfg: &OpenSystemConfig, live: &[LiveJob]) -> Vec<usize> {
    let arrival_order: Vec<usize> = live.iter().map(|j| j.key).collect();
    match &state.mode {
        Mode::Rotate => window(&arrival_order, live, cfg.smt, state.slice),
        Mode::Sampling {
            candidates,
            current,
            slice_in_rotation,
            ..
        } => window(&candidates[*current], live, cfg.smt, *slice_in_rotation),
        Mode::Symbios { order, .. } => window(order, live, cfg.smt, state.slice),
    }
}

/// Books the finished slice and advances the scheduler state machine.
fn advance_after_slice(
    state: &mut SchedulerState,
    cfg: &OpenSystemConfig,
    stats: &TimesliceStats,
    now: u64,
) {
    state.slice += 1;
    // Drift detection (§9 extension): if the running schedule stops behaving
    // like its sample, force an early resample by expiring the timer.
    if let (
        Mode::Symbios {
            until,
            predicted_ipc,
            drift_streak,
            ..
        },
        Some(threshold),
    ) = (&mut state.mode, cfg.drift_threshold)
    {
        if *predicted_ipc > 0.0 {
            let observed = stats.total_ipc();
            let deviation = (observed - *predicted_ipc).abs() / *predicted_ipc;
            if deviation > threshold {
                *drift_streak += 1;
                if *drift_streak >= 3 {
                    *until = now; // resample at the next scheduling point
                    state.last_pick = None; // do not back off after a drift
                }
            } else {
                *drift_streak = 0;
            }
        }
    }
    let timer_triggered = state.timer_triggered;
    let prev_pick = state.last_pick.clone();
    let interval = state.interval;
    if let Mode::Sampling {
        candidates,
        current,
        slice_in_rotation,
        collected,
    } = &mut state.mode
    {
        collected[*current].push(stats.clone());
        *slice_in_rotation += 1;
        // One *full* rotation: the schedule's complete tuple set ("the
        // minimum time required to evaluate the schedule", §5.2). Sampling
        // fewer windows would leave most of the symbios-phase tuples unseen.
        let x = candidates[*current].len();
        let y = cfg.smt.min(x).max(1);
        let slices_per_rotation = slices_for(x, y);
        if *slice_in_rotation >= slices_per_rotation {
            *slice_in_rotation = 0;
            *current += 1;
            if *current >= candidates.len() {
                // Predict and enter symbios.
                let samples: Vec<ScheduleSample> = candidates
                    .iter()
                    .zip(collected.iter())
                    .filter(|(_, sl)| !sl.is_empty())
                    .map(|(ord, slices)| condense(ord, cfg.smt, slices))
                    .collect();
                let pick = if samples.is_empty() {
                    0
                } else {
                    cfg.predictor.choose(&samples)
                };
                let order = candidates.get(pick).cloned().unwrap_or_default();
                // Exponential backoff: if a timer-triggered resample repeats
                // the previous prediction, double the symbiosis interval.
                let new_interval = if timer_triggered && prev_pick.as_deref() == Some(&order[..]) {
                    let doubled = interval.saturating_mul(2);
                    telemetry::instant(
                        "opensys",
                        "opensys.backoff",
                        vec![Attr::num("interval", doubled as f64)],
                    );
                    telemetry::counter_add("opensys.backoffs", 1);
                    doubled
                } else {
                    cfg.mean_interarrival
                };
                let predicted_ipc = samples.get(pick).map(|s| s.ipc).unwrap_or(0.0);
                state.interval = new_interval;
                state.last_pick = Some(order.clone());
                state.slice = 0;
                state.mode = Mode::Symbios {
                    order,
                    until: now + new_interval,
                    predicted_ipc,
                    drift_streak: 0,
                };
            }
        }
    }
}

/// Timeslices in one full rotation of `x` jobs through windows of `y`
/// advancing by `y` (the swap-all discipline): `x / gcd(x, y)`.
fn slices_for(x: usize, y: usize) -> usize {
    if x <= y || y == 0 {
        1
    } else {
        x / gcd(x, y)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Condenses raw sample slices into a `ScheduleSample` for prediction.
fn condense(order: &[usize], y: usize, slices: &[TimesliceStats]) -> ScheduleSample {
    let schedule = schedule_of(order, y);
    let rotation = crate::runner::RotationStats {
        tuples: slices
            .iter()
            .map(|_| crate::schedule::Coschedule::new([0]))
            .collect(),
        slices: slices.to_vec(),
    };
    let mut s = ScheduleSample::from_rotations(&schedule, &[rotation]);
    s.notation = format!("order{order:?}");
    s
}

/// Runs one tuple of live jobs (by position) for a timeslice.
fn run_tuple(
    cpu: &mut Processor,
    live: &mut [LiveJob],
    positions: &[usize],
    cycles: u64,
) -> TimesliceStats {
    let mut sorted = positions.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut refs: Vec<&mut dyn InstructionSource> = live
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| sorted.binary_search(i).is_ok())
        .map(|(_, j)| &mut j.stream as &mut dyn InstructionSource)
        .collect();
    if refs.is_empty() {
        return TimesliceStats {
            cycles,
            ..Default::default()
        };
    }
    cpu.run_timeslice(&mut refs, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> OpenSystemConfig {
        OpenSystemConfig {
            smt: 2,
            mean_job_cycles: 60_000,
            mean_interarrival: 30_000,
            timeslice: 2_000,
            calibration_cycles: 10_000,
            num_jobs: 8,
            sample_schedules: 3,
            predictor: PredictorKind::Score,
            drift_threshold: None,
            phased_fraction: 0.0,
            seed: 77,
        }
    }

    #[test]
    fn arrival_trace_is_deterministic_and_sorted() {
        let solo: HashMap<Benchmark, f64> = JOB_KINDS.iter().map(|&b| (b, 1.0)).collect();
        let a = arrival_trace(&tiny_cfg(), &solo);
        let b = arrival_trace(&tiny_cfg(), &solo);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn naive_system_completes_all_jobs() {
        let cfg = tiny_cfg();
        let res = run_open_system(SchedulerKind::Naive, &cfg);
        assert_eq!(res.completed.len(), cfg.num_jobs);
        assert!(res.mean_response() > 0.0);
        for j in &res.completed {
            assert!(j.departure >= j.arrival.arrival);
        }
        assert!(res.mean_population > 0.0);
    }

    #[test]
    fn sos_system_completes_all_jobs() {
        let cfg = tiny_cfg();
        let res = run_open_system(SchedulerKind::Sos, &cfg);
        assert_eq!(res.completed.len(), cfg.num_jobs);
        assert!(res.mean_response() > 0.0);
    }

    #[test]
    fn shared_trace_runs_identical_workload() {
        let cfg = tiny_cfg();
        let solo = calibrate_benchmarks(cfg.smt, 10_000, cfg.seed);
        let trace = arrival_trace(&cfg, &solo);
        let a = run_open_system_on_trace(SchedulerKind::Naive, &cfg, &trace);
        let b = run_open_system_on_trace(SchedulerKind::Sos, &cfg, &trace);
        let mut ka: Vec<u64> = a.completed.iter().map(|j| j.arrival.arrival).collect();
        let mut kb: Vec<u64> = b.completed.iter().map(|j| j.arrival.arrival).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
    }

    #[test]
    fn calibration_covers_all_benchmarks() {
        let solo = calibrate_benchmarks(2, 5_000, 1);
        assert_eq!(solo.len(), JOB_KINDS.len());
        assert!(solo.values().all(|&v| v > 0.0));
    }

    #[test]
    fn sos_counts_resamples_and_naive_does_not() {
        let cfg = tiny_cfg();
        let naive = run_open_system(SchedulerKind::Naive, &cfg);
        assert_eq!(naive.resamples, 0);
        let sos = run_open_system(SchedulerKind::Sos, &cfg);
        assert!(
            sos.resamples > 0,
            "SOS must enter at least one sample phase"
        );
    }

    #[test]
    fn drift_trigger_increases_sampling_frequency() {
        let mut base = tiny_cfg();
        base.num_jobs = 10;
        let without = run_open_system(SchedulerKind::Sos, &base);
        let mut twitchy = base.clone();
        twitchy.drift_threshold = Some(0.01); // hair trigger
        let with = run_open_system(SchedulerKind::Sos, &twitchy);
        assert!(
            with.resamples >= without.resamples,
            "a hair-trigger drift threshold cannot reduce resampling: {} vs {}",
            with.resamples,
            without.resamples
        );
    }

    #[test]
    fn phased_jobs_flow_through_the_system() {
        let mut cfg = tiny_cfg();
        cfg.phased_fraction = 1.0;
        let res = run_open_system(SchedulerKind::Sos, &cfg);
        assert_eq!(res.completed.len(), cfg.num_jobs);
        assert!(res.completed.iter().all(|j| j.arrival.phased));
    }

    #[test]
    fn default_config_is_stable_by_construction() {
        for smt in [2usize, 3, 4, 6] {
            let cfg = OpenSystemConfig::scaled(smt);
            // Arrival of solo-work per cycle must be below estimated capacity.
            let load = cfg.mean_job_cycles as f64 / cfg.mean_interarrival as f64;
            assert!(
                load < OpenSystemConfig::estimated_ws(smt),
                "SMT {smt}: offered load {load} exceeds capacity"
            );
        }
    }
}

//! # sos-core — the SOS symbiotic jobscheduler
//!
//! This crate implements the contribution of *Symbiotic Jobscheduling for a
//! Simultaneous Multithreading Processor* (Snavely & Tullsen, ASPLOS 2000):
//! the **SOS** scheduler (Sample, Optimize, Symbios) and everything it needs —
//! schedule representation and enumeration, the weighted-speedup metric, the
//! ten dynamic predictors, hierarchical symbiosis for multithreaded jobs, and
//! the open-system model with random job arrivals used for the response-time
//! study.
//!
//! The layering is:
//!
//! * [`job`] — a pool of schedulable threads built from
//!   [`workloads::JobSpec`]s.
//! * [`schedule`] / [`enumerate`] — coschedules, covering schedules, and
//!   counting/enumeration of the distinct schedules of an experiment
//!   (reproduces the paper's Table 2 exactly).
//! * [`experiment`] — the paper's `Jmn(X,Y,Z)` experiment notation.
//! * [`ws`] — the weighted-speedup metric `WS(t)`.
//! * [`runner`] — drives a [`smtsim::Processor`] through a schedule.
//! * [`sample`] / [`predictor`] — the sample phase and the dynamic
//!   predictors of §5 (IPC, AllConf, Dcache, FQ, FP, Sum2, Diversity,
//!   Balance, Composite, Score).
//! * [`sos`] — the two-phase SOS scheduler itself.
//! * [`learn`] — online learned symbiosis prediction: an incremental ridge
//!   regressor over the sample-phase counter condensates
//!   (`PredictorKind::Learned`) and a contextual bandit over the ten paper
//!   predictors plus the learned model (`PredictorKind::Bandit`), both
//!   deterministic and snapshot-serializable.
//! * [`cache`] — content-addressed memoization of deterministic evaluation
//!   results (calibrations, per-schedule sample/symbios measurements), with
//!   an optional on-disk JSONL store.
//! * [`metrics`] — live-service metrics: lock-cheap counters/gauges,
//!   sliding-window histograms with exact quantiles, SLO trackers, and a
//!   versioned snapshot with Prometheus-style exposition (what `sos-serve`'s
//!   `metrics` verb and `sos-top` speak).
//! * [`par`] — order-preserving parallel map used to evaluate independent
//!   candidates and experiments concurrently.
//! * [`report`] — aggregate reporting (the predictor league table).
//! * [`hier`] — hierarchical symbiosis (§7): allocating hardware contexts to
//!   multithreaded jobs.
//! * [`arrivals`] — seeded arrival-trace generation (exponential
//!   interarrivals, job-kind draws), shared by the batch open system and the
//!   serving-layer load generator.
//! * [`online`] — the event-driven online scheduling engine: job
//!   submissions, timeslice ticks, SOS-or-naive policy, response-time
//!   accounting. Drives both the batch §9 reproduction and `sos-serve`.
//! * [`opensys`] — the open system of §9: exponential arrivals/departures,
//!   resampling with exponential backoff, response-time accounting (batch
//!   replay of an arrival trace through the online engine).
//! * [`cluster`] — the two-level cluster scheduler: a dispatcher
//!   (round-robin, least-loaded, or symbiosis-aware routing, plus
//!   work-stealing rebalancing) over N per-core [`online`] shards running
//!   in lockstep on their own OS threads, byte-reproducible per seed and
//!   shard count.
//!
//! ## Quickstart
//!
//! ```
//! use sos_core::experiment::ExperimentSpec;
//!
//! let spec: ExperimentSpec = "Jsb(6,3,3)".parse()?;
//! assert_eq!(spec.distinct_schedules(), 10); // paper Table 2
//! # Ok::<(), sos_core::error::ParseExperimentError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod cache;
pub mod cluster;
pub mod dist;
pub mod enumerate;
pub mod error;
pub mod experiment;
pub mod hier;
pub mod job;
pub mod learn;
pub mod metrics;
pub mod naive;
pub mod online;
pub mod opensys;
pub mod par;
pub mod predictor;
pub mod report;
pub mod runner;
pub mod sample;
pub mod schedule;
pub mod sos;
pub mod telemetry;
pub mod ws;

pub use error::ParseExperimentError;
pub use experiment::ExperimentSpec;
pub use job::JobPool;
pub use predictor::PredictorKind;
pub use sample::ScheduleSample;
pub use schedule::{Coschedule, Schedule};
pub use sos::{SosConfig, SosScheduler};
